//! Offline stand-in for the subset of `serde` used by this workspace.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a value-model serialization framework with the same
//! *user-facing* surface the workspace consumes: `Serialize` /
//! `Deserialize` traits plus `#[derive(Serialize, Deserialize)]` (from
//! the sibling `serde_derive` proc-macro crate), consumed by the
//! vendored `serde_json`.
//!
//! Differences from upstream, by design:
//!
//! * serialization goes through an owned [`Value`] tree instead of the
//!   upstream visitor architecture;
//! * enums use the upstream *externally tagged* representation (unit
//!   variants as strings, payload variants as single-key objects), so
//!   the JSON produced is byte-compatible with upstream for the types
//!   in this workspace;
//! * a **missing** field is always an error (the derive cannot see
//!   field types, so `Option` fields are not implicitly defaulted —
//!   this crate always writes every field, so round-trips are safe);
//! * non-finite floats serialize to `null` (like `serde_json`) and
//!   `null` deserializes to `f64::NEG_INFINITY` (the one non-finite
//!   value this workspace produces, for zero-error MSE in dB).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always `< 0`; non-negative integers use
    /// [`Value::UInt`]).
    Int(i128),
    /// Non-negative integer.
    UInt(u128),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for any other variant.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None` for any other variant.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, or `None` for any other variant.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up `key` in a derived struct's object and deserializes it.
/// Used by generated `Deserialize` impls.
///
/// # Errors
/// Returns [`Error`] if the key is missing or its value mismatches.
pub fn from_field<T: Deserialize>(
    fields: &[(String, Value)],
    key: &str,
    type_name: &str,
) -> Result<T, Error> {
    let (_, v) = fields
        .iter()
        .find(|(k, _)| k == key)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` for `{type_name}`")))?;
    T::from_value(v)
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if wide < 0 {
                    Value::Int(wide)
                } else {
                    Value::UInt(wide as u128)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let err = || {
                    Error::custom(format!(
                        "expected {}, found {}", stringify!($t), value.kind()
                    ))
                };
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| err()),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| err()),
                    _ => Err(err()),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::UInt(*self)
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::UInt(u) => Ok(*u),
            Value::Int(i) => u128::try_from(*i)
                .map_err(|_| Error::custom("expected u128, found negative integer")),
            other => Err(Error::custom(format!(
                "expected u128, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if *self < 0 {
            Value::Int(*self)
        } else {
            Value::UInt(*self as u128)
        }
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) => Ok(*i),
            Value::UInt(u) => {
                i128::try_from(*u).map_err(|_| Error::custom("integer out of range for i128"))
            }
            other => Err(Error::custom(format!(
                "expected i128, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // `serde_json` writes non-finite floats as null; the
                    // only non-finite value this workspace produces is
                    // -inf (MSE of an exact operator, in dB).
                    Value::Null => Ok(<$t>::NEG_INFINITY),
                    other => Err(Error::custom(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, found {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string for char")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        // length checked above, so the conversion cannot fail
        Ok(<[T; N]>::try_from(parsed).expect("length checked"))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected tuple array, found {}", value.kind()))
                })?;
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of length {expected}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Converts a serialized map key into the JSON object-key string.
/// Mirrors `serde_json`: string keys pass through, integer keys are
/// stringified, anything else is rejected.
fn key_to_string(key: &Value) -> Result<String, Error> {
    match key {
        Value::String(s) => Ok(s.clone()),
        Value::UInt(u) => Ok(u.to_string()),
        Value::Int(i) => Ok(i.to_string()),
        other => Err(Error::custom(format!(
            "map key must serialize to a string or integer, found {}",
            other.kind()
        ))),
    }
}

/// Converts a JSON object-key string back into a [`Value`] the key type
/// can deserialize from: tries the plain string first, then an integer
/// reparse (for integer-keyed maps).
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::String(key.to_owned())) {
        return Ok(k);
    }
    if let Some(stripped) = key.strip_prefix('-') {
        if let Ok(i) = stripped.parse::<u128>() {
            return K::from_value(&Value::Int(-(i as i128)));
        }
    } else if let Ok(u) = key.parse::<u128>() {
        return K::from_value(&Value::UInt(u));
    }
    Err(Error::custom(format!("cannot deserialize map key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .expect("BTreeMap key must serialize to a string or integer");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_to_string(&k.to_value())
                        .expect("HashMap key must serialize to a string or integer");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
