//! Offline stand-in for the subset of the `rand` crate used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API surface the workspace consumes: the
//! [`RngCore`] / [`SeedableRng`] / [`RngExt`] traits, the
//! [`rngs::StdRng`] generator, uniform sampling of `u64` / `f64` /
//! `bool`, and [`RngExt::random_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a distinct
//! algorithm from upstream `StdRng` (ChaCha12), so streams differ from
//! upstream for the same seed, but every draw is deterministic per seed,
//! which is what the reproduction relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core trait of every generator: an infinite stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator.
pub trait StandardUniform: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl StandardUniform for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
///
/// This mirrors the method names the workspace uses from upstream `rand`
/// (`random`, `random_range`).
pub trait RngExt: RngCore {
    /// Draws one uniform value of type `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias matching upstream's extension-trait name.
pub use self::RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean should be ~0.5");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.random_range(-12i32..=12);
            assert!((-12..=12).contains(&v));
            seen_lo |= v == -12;
            seen_hi |= v == 12;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
        for _ in 0..100 {
            let v = rng.random_range(0usize..3);
            assert!(v < 3);
        }
    }
}
