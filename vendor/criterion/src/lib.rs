//! Offline stand-in for the subset of `criterion` used by the workspace
//! benches: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (for bench targets
//! with `harness = false`).
//!
//! Measurement is deliberately simple — a warm-up pass, then an adaptive
//! iteration count targeting ~100 ms of wall time per benchmark, with
//! the mean ns/iter printed to stdout. There is no statistical analysis,
//! HTML report, or baseline comparison; the value of this crate is that
//! `cargo bench` compiles, runs, and produces stable, comparable numbers
//! without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are batched in [`Bencher::iter_batched`].
/// The shim runs every batch size the same way; the variants exist for
/// upstream source compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; upstream amortizes over large batches.
    SmallInput,
    /// Large setup output; upstream uses small batches.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    target: Duration,
    /// Measured mean time per iteration, filled by `iter*`.
    elapsed_per_iter: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            target,
            elapsed_per_iter: None,
            iters: 0,
        }
    }

    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate over a geometric ramp.
        let mut probe_iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..probe_iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || probe_iters >= 1 << 20 {
                break elapsed / u32::try_from(probe_iters).unwrap_or(u32::MAX);
            }
            probe_iters *= 4;
        };
        let total = if per_iter.is_zero() {
            1 << 22
        } else {
            (self.target.as_nanos() / per_iter.as_nanos().max(1)).clamp(10, 1 << 22) as u64
        };
        let start = Instant::now();
        for _ in 0..total {
            black_box(routine());
        }
        self.elapsed_per_iter = Some(start.elapsed() / u32::try_from(total).unwrap_or(u32::MAX));
        self.iters = total;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Probe once to estimate the routine cost.
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed();
        let total = if per_iter.is_zero() {
            10_000
        } else {
            (self.target.as_nanos() / per_iter.as_nanos().max(1)).clamp(10, 100_000) as u64
        };
        let inputs: Vec<I> = (0..total).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed_per_iter = Some(start.elapsed() / u32::try_from(total).unwrap_or(u32::MAX));
        self.iters = total;
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark registry/driver.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor the benchmark-name filter cargo bench forwards, ignore
        // harness flags like --bench.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            target: Duration::from_millis(100),
            filter,
        }
    }
}

impl Criterion {
    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(id) {
            return;
        }
        let mut bencher = Bencher::new(self.target);
        f(&mut bencher);
        match bencher.elapsed_per_iter {
            Some(t) => println!(
                "{id:<40} time: {:>12}/iter  ({} iterations)",
                format_duration(t),
                bencher.iters
            ),
            None => println!("{id:<40} (no measurement collected)"),
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group; member benchmarks print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group of benchmarks (IDs are prefixed with the group name).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for source compatibility).
    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
