//! `#[derive(Serialize, Deserialize)]` for the vendored `serde`
//! stand-in.
//!
//! The build environment has no access to crates.io, so this macro is
//! written against `proc_macro` alone — no `syn`/`quote`. It parses the
//! item declaration by hand (attributes, visibility, generics are
//! rejected, named/tuple/unit structs, enums with unit/tuple/named
//! variants) and emits impls of the vendored `serde::Serialize` /
//! `serde::Deserialize` value-model traits, using upstream's externally
//! tagged enum representation so the resulting JSON matches upstream
//! `serde_json` for the types in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a field-bearing position looks like after parsing.
enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Input {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_group(tt: &TokenTree, delim: Delimiter) -> bool {
    matches!(tt, TokenTree::Group(g) if g.delimiter() == delim)
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len()
        && is_punct(&tokens[*i], '#')
        && is_group(&tokens[*i + 1], Delimiter::Bracket)
    {
        *i += 2;
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len() && is_group(&tokens[*i], Delimiter::Parenthesis) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize, what: &str) -> String {
    match &tokens[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected {what}, found `{other}`"),
    }
}

/// Advances past a type (or discriminant expression), stopping after the
/// top-level `,` that terminates it. Angle brackets are tracked by depth;
/// `()`/`[]`/`{}` arrive as atomic groups.
fn skip_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i, "field name");
        assert!(
            i < tokens.len() && is_punct(&tokens[i], ':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        i += 1;
        skip_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut angle_depth = 0i32;
    let mut pending = false;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if pending {
                    arity += 1;
                    pending = false;
                }
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i, "variant name");
        let shape = if i < tokens.len() && is_group(&tokens[i], Delimiter::Parenthesis) {
            let TokenTree::Group(g) = &tokens[i] else {
                unreachable!()
            };
            i += 1;
            Shape::Tuple(count_tuple_fields(g.stream()))
        } else if i < tokens.len() && is_group(&tokens[i], Delimiter::Brace) {
            let TokenTree::Group(g) = &tokens[i] else {
                unreachable!()
            };
            i += 1;
            Shape::Named(parse_named_fields(g.stream()))
        } else {
            Shape::Unit
        };
        // skip an explicit discriminant, if any, through the separating `,`
        skip_until_comma(&tokens, &mut i);
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i, "`struct` or `enum`");
    let name = expect_ident(&tokens, &mut i, "type name");
    assert!(
        !(i < tokens.len() && is_punct(&tokens[i], '<')),
        "serde_derive: generic type `{name}` is not supported by the vendored derive"
    );
    match keyword.as_str() {
        "struct" => {
            let shape = if i < tokens.len() && is_group(&tokens[i], Delimiter::Brace) {
                let TokenTree::Group(g) = &tokens[i] else {
                    unreachable!()
                };
                Shape::Named(parse_named_fields(g.stream()))
            } else if i < tokens.len() && is_group(&tokens[i], Delimiter::Parenthesis) {
                let TokenTree::Group(g) = &tokens[i] else {
                    unreachable!()
                };
                Shape::Tuple(count_tuple_fields(g.stream()))
            } else {
                Shape::Unit
            };
            Input::Struct { name, shape }
        }
        "enum" => {
            assert!(
                i < tokens.len() && is_group(&tokens[i], Delimiter::Brace),
                "serde_derive: expected enum body for `{name}`"
            );
            let TokenTree::Group(g) = &tokens[i] else {
                unreachable!()
            };
            Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other} {name}`"),
    }
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .expect("serde_derive: generated code failed to parse")
}

fn string_lit(s: &str) -> String {
    format!("::std::string::String::from(\"{s}\")")
}

fn serialize_named_body(fields: &[String], accessor: &str) -> String {
    let pairs: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({}, ::serde::Serialize::to_value({accessor}{f})),",
                string_lit(f)
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.concat())
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_input(input) {
        Input::Struct { name, shape } => {
            let expr = match shape {
                Shape::Unit => "::serde::Value::Null".to_owned(),
                Shape::Named(fields) => serialize_named_body(&fields, "&self."),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.concat())
                }
            };
            format!(
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ {expr} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vname = &v.name;
                let tag = string_lit(vname);
                match &v.shape {
                    Shape::Unit => {
                        arms += &format!("{name}::{vname} => ::serde::Value::String({tag}),");
                    }
                    Shape::Tuple(1) => {
                        arms += &format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![\
                               ({tag}, ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        arms += &format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                               ({tag}, ::serde::Value::Array(::std::vec![{}]))]),",
                            binders.join(", "),
                            items.concat()
                        );
                    }
                    Shape::Named(fields) => {
                        let payload = serialize_named_body(fields, "");
                        arms += &format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                               ({tag}, {payload})]),",
                            fields.join(", ")
                        );
                    }
                }
            }
            format!(
                "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                   fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} \
                 }}"
            )
        }
    };
    emit(body)
}

fn deserialize_named_fields(type_label: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::from_field({source}, \"{f}\", \"{type_label}\")?,"))
        .collect();
    inits.concat()
}

fn deserialize_tuple_items(n: usize, source: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|k| format!("::serde::Deserialize::from_value(&{source}[{k}])?,"))
        .collect();
    items.concat()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_input(input) {
        Input::Struct { name, shape } => {
            let expr = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Named(fields) => format!(
                    "let __fields = __value.as_object().ok_or_else(|| \
                       ::serde::Error::custom(\"expected object for `{name}`\"))?; \
                     ::std::result::Result::Ok({name} {{ {} }})",
                    deserialize_named_fields(&name, &fields, "__fields")
                ),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                ),
                Shape::Tuple(n) => format!(
                    "let __items = __value.as_array().ok_or_else(|| \
                       ::serde::Error::custom(\"expected array for `{name}`\"))?; \
                     if __items.len() != {n} {{ return ::std::result::Result::Err(\
                       ::serde::Error::custom(\"wrong tuple length for `{name}`\")); }} \
                     ::std::result::Result::Ok({name}({}))",
                    deserialize_tuple_items(n, "__items")
                ),
            };
            format!(
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__value: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ {expr} }} \
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in &variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms +=
                            &format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),");
                    }
                    Shape::Tuple(1) => {
                        payload_arms += &format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                               ::serde::Deserialize::from_value(__payload)?)),"
                        );
                    }
                    Shape::Tuple(n) => {
                        payload_arms += &format!(
                            "\"{vname}\" => {{ \
                               let __items = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected array for `{name}::{vname}`\"))?; \
                               if __items.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong tuple length for `{name}::{vname}`\")); }} \
                               ::std::result::Result::Ok({name}::{vname}({})) }},",
                            deserialize_tuple_items(*n, "__items")
                        );
                    }
                    Shape::Named(fields) => {
                        let label = format!("{name}::{vname}");
                        payload_arms += &format!(
                            "\"{vname}\" => {{ \
                               let __fields = __payload.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for `{label}`\"))?; \
                               ::std::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                            deserialize_named_fields(&label, fields, "__fields")
                        );
                    }
                }
            }
            format!(
                "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                   fn from_value(__value: &::serde::Value) -> \
                       ::std::result::Result<Self, ::serde::Error> {{ \
                     match __value {{ \
                       ::serde::Value::String(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                           ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))), \
                       }}, \
                       ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
                         let (__tag, __payload) = &__fields[0]; \
                         match __tag.as_str() {{ \
                           {payload_arms} \
                           __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))), \
                         }} \
                       }}, \
                       __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected `{name}` variant, found {{}}\", __other.kind()))), \
                     }} \
                   }} \
                 }}"
            )
        }
    };
    emit(body)
}
