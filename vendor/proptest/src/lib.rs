//! Offline stand-in for the subset of `proptest` used by this
//! workspace: the [`proptest!`] test macro, [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`Just`], [`any`], [`sample::select`], [`prop_oneof!`],
//! `prop_assert!` / `prop_assert_eq!`, and [`ProptestConfig`].
//!
//! Unlike upstream there is **no shrinking** and no persistence of
//! failing cases: each test runs a fixed number of cases drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce across runs and machines. Assertion macros lower to
//! `assert!`, which reports the failing values through the standard
//! panic message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator for test-case sampling (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stable seed derivation from a test name (FNV-1a), used by the
/// [`proptest!`] macro so every test has its own reproducible stream.
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Test-runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Feeds produced values into a strategy-producing `f` and samples
    /// the resulting strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[k].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait ArbitraryValue: Sized {
    /// Draws one value from the full domain of the type.
    fn arbitrary_sample(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary_sample(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary_sample(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The full-domain strategy for `T` (`any::<u64>()` etc.).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_sample(rng)
    }
}

/// Returns the full-domain strategy for `T`.
#[must_use]
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

pub mod sample {
    //! Strategies drawing from explicit collections.

    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let k = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[k].clone()
        }
    }

    /// Returns a strategy choosing uniformly from `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select(options)
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, sample, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice among heterogeneous strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (lowers to `assert!`; the shim
/// has no shrinking, so a failure reports the sampled values via the
/// panic message of the enclosing test).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (lowers to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...)`
/// becomes a `#[test]` running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; ) => {};
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for __case in 0..__config.cases {
                let ($($pat,)*) =
                    ($($crate::Strategy::sample(&($strategy), &mut __rng),)*);
                $body
            }
        }
        $crate::__proptest_impl! { $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_unions_sample_in_domain() {
        let mut rng = crate::TestRng::new(1);
        let strat = prop_oneof![(0u32..4).prop_map(|x| x * 10), Just(99u32)];
        for _ in 0..200 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!(v == 99 || (v % 10 == 0 && v < 40));
        }
    }

    #[test]
    fn flat_map_dependent_ranges() {
        let mut rng = crate::TestRng::new(2);
        let strat = (2u32..=10).prop_flat_map(|n| (Just(n), 1..=n));
        for _ in 0..200 {
            let (n, q) = crate::Strategy::sample(&strat, &mut rng);
            assert!((2..=10).contains(&n) && (1..=n).contains(&q));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, config, asserts.
        #[test]
        fn macro_smoke(a in 0u64..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b as u64 * 2 % 2, 0);
        }
    }
}
