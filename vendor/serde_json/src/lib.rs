//! Offline stand-in for the subset of `serde_json` used by this
//! workspace: [`to_string`], [`to_string_pretty`], [`from_str`] and the
//! [`Result`]/[`Error`] pair, over the vendored `serde` value model.
//!
//! Output format notes:
//!
//! * floats print through Rust's shortest-round-trip `Display`, so
//!   parsing the emitted text recovers the exact bit pattern;
//! * non-finite floats serialize as `null` (matching upstream);
//! * objects preserve insertion order; pretty output indents by two
//!   spaces (matching upstream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------- writing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // Rust's Display is shortest-round-trip and never uses exponent
        // notation, so this is always valid JSON that parses back exactly.
        out.push_str(&format!("{f}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (k, (key, val)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (k, (key, val)) in fields.iter().enumerate() {
                if k > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
/// Infallible for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the types in this workspace; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_whitespace();
        match self
            .peek()
            .ok_or_else(|| self.error("unexpected end of input"))?
        {
            b'n' => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b't' => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'f' => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::String),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(self.error(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_unicode_escape(&mut self) -> Result<char> {
        let high = self.parse_hex4()?;
        if (0xD800..=0xDBFF).contains(&high) {
            // surrogate pair: expect a following \uXXXX low surrogate
            if !self.consume_literal("\\u") {
                return Err(self.error("unpaired surrogate"));
            }
            let low = self.parse_hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(self.error("invalid low surrogate"));
            }
            let code = 0x10000 + ((u32::from(high) - 0xD800) << 10) + (u32::from(low) - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(u32::from(high)).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(u) = digits.parse::<u128>() {
                    if u == 0 {
                        return Ok(Value::Float(-0.0)); // preserve the sign of -0
                    }
                    if let Ok(i) = i128::try_from(u) {
                        return Ok(Value::Int(-i));
                    }
                }
            } else if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
            // fall through: magnitude beyond 128 bits, degrade to f64
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON, trailing input, or a shape
/// mismatch against `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let v: f64 = from_str(&to_string(&1.25f64).unwrap()).unwrap();
        assert_eq!(v, 1.25);
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let v: String = from_str("\"a\\n\\u0041\"").unwrap();
        assert_eq!(v, "a\nA");
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02e23, 5e-324, 1e300, -0.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn nonfinite_floats_are_null() {
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_infinite() && back < 0.0);
    }

    #[test]
    fn pretty_printing_shape() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }
}
