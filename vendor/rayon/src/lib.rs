//! Offline stand-in for the subset of the `rayon` crate used by this
//! workspace: a scoped, work-stealing thread pool.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API surface the workspace consumes —
//! [`ThreadPoolBuilder`], [`ThreadPool::scope`], [`Scope::spawn`],
//! [`current_num_threads`] and the free [`scope`]/[`join`] functions —
//! with a much simpler runtime than upstream:
//!
//! * Worker threads are spawned per parallel region through
//!   [`std::thread::scope`] instead of being parked persistently. Regions
//!   in this workspace process 10³–10⁷ samples, so region setup cost is
//!   noise; in exchange the implementation needs no `unsafe` at all.
//! * Tasks are distributed round-robin over per-worker queues; an idle
//!   worker first drains its own queue LIFO (cache-friendly for nested
//!   spawns), then steals FIFO from its siblings — the classic
//!   work-stealing discipline, with mutex-protected deques standing in
//!   for upstream's lock-free Chase-Lev deques.
//!
//! Scheduling order is therefore nondeterministic exactly like upstream:
//! callers must not rely on task execution order, only on the barrier at
//! the end of [`ThreadPool::scope`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of threads the free functions ([`scope`], [`join`]) use: the
/// machine's available parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error returned by [`ThreadPoolBuilder::build`]. The stand-in cannot
/// actually fail to build, but the upstream signature is preserved.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring upstream's API.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings (machine parallelism).
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the number of worker threads; `0` (the default) means the
    /// machine's available parallelism.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in; the `Result` matches upstream.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A scoped work-stealing thread pool.
///
/// Worker threads live for the duration of each [`ThreadPool::scope`]
/// call (see the crate docs for why), so the pool itself is a trivially
/// cloneable handle.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

/// A task queued inside one parallel region. The `'env` lifetime lets
/// tasks borrow everything that outlives the `scope` call, exactly like
/// upstream's `Scope<'scope>`.
type Task<'env> = Box<dyn FnOnce(&Scope<'_, 'env>) + Send + 'env>;

/// Counters shared by all workers of one region.
#[derive(Debug, Default)]
struct RegionState {
    /// Tasks pushed but not yet popped.
    queued: usize,
    /// Tasks spawned but not yet finished running (includes queued).
    unfinished: usize,
    /// No further spawns can come from outside a task (the scope closure
    /// has returned).
    closed: bool,
}

/// Everything shared by the workers of one parallel region.
struct Region<'env> {
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    state: Mutex<RegionState>,
    cv: Condvar,
    next: AtomicUsize,
    /// First panic payload caught from a task; resumed after the barrier
    /// (upstream's behavior: a panicking task poisons the scope but the
    /// remaining tasks still run to completion).
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Region<'env> {
    fn new(workers: usize) -> Self {
        Region {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(RegionState::default()),
            cv: Condvar::new(),
            next: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    /// Queues a task (round-robin placement over the worker deques).
    fn push(&self, task: Task<'env>) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[slot].lock().unwrap().push_back(task);
        let mut state = self.state.lock().unwrap();
        state.queued += 1;
        state.unfinished += 1;
        drop(state);
        self.cv.notify_one();
    }

    /// Takes one queued task: own queue from the back (LIFO), then steal
    /// from siblings from the front (FIFO). Only called after a slot was
    /// reserved by decrementing `queued`, so a task is guaranteed to be
    /// present; the retry loop covers the window in which another worker
    /// holds "our" task's queue lock.
    fn take(&self, me: usize) -> Task<'env> {
        loop {
            if let Some(task) = self.queues[me].lock().unwrap().pop_back() {
                return task;
            }
            for victim in self
                .queues
                .iter()
                .cycle()
                .skip(me + 1)
                .take(self.queues.len())
            {
                if let Some(task) = victim.lock().unwrap().pop_front() {
                    return task;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Marks one task finished; wakes everyone when the region drains.
    fn finish_one(&self) {
        let mut state = self.state.lock().unwrap();
        state.unfinished -= 1;
        if state.closed && state.unfinished == 0 {
            drop(state);
            self.cv.notify_all();
        }
    }

    /// Marks the region closed (the scope closure returned).
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// One worker: run tasks until the region is closed and drained.
    fn work(&self, me: usize) {
        let scope = Scope { region: self };
        loop {
            let mut state = self.state.lock().unwrap();
            loop {
                if state.queued > 0 {
                    state.queued -= 1;
                    drop(state);
                    let task = self.take(me);
                    // The guard marks the task finished even if it
                    // unwinds: a panicking task must not strand
                    // `unfinished` above zero, or every sibling (and the
                    // joining caller) would wait forever. The unwind is
                    // caught so this worker keeps draining the region;
                    // the first payload resurfaces after the barrier.
                    let guard = FinishGuard { region: self };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        task(&scope);
                    }));
                    drop(guard);
                    if let Err(payload) = result {
                        self.panic.lock().unwrap().get_or_insert(payload);
                    }
                    break;
                }
                if state.closed && state.unfinished == 0 {
                    return;
                }
                state = self.cv.wait(state).unwrap();
            }
        }
    }
}

/// Calls [`Region::finish_one`] on drop — including during unwinding.
struct FinishGuard<'region, 'env> {
    region: &'region Region<'env>,
}

impl Drop for FinishGuard<'_, '_> {
    fn drop(&mut self) {
        self.region.finish_one();
    }
}

/// Calls [`Region::close`] on drop — including during unwinding.
struct CloseGuard<'region, 'env> {
    region: &'region Region<'env>,
}

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.region.close();
    }
}

/// Handle for spawning tasks into a parallel region; the analogue of
/// upstream's `Scope<'scope>`.
pub struct Scope<'region, 'env> {
    region: &'region Region<'env>,
}

impl<'region, 'env> Scope<'region, 'env> {
    /// Queues `f` to run on one of the region's workers. Tasks may spawn
    /// further tasks through the `&Scope` they receive.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_, 'env>) + Send + 'env,
    {
        self.region.push(Box::new(f));
    }
}

impl fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Scope { .. }")
    }
}

impl ThreadPool {
    /// The number of worker threads each parallel region runs.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs a parallel region: `f` receives a [`Scope`] to spawn tasks
    /// on the pool's workers and every spawned task completes before
    /// `scope` returns (the fork-join barrier). A panic inside a task
    /// still drains the region, then resurfaces from the join (so
    /// `scope` panics rather than deadlocks).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let region = Region::new(self.threads.max(1));
        let result = std::thread::scope(|ts| {
            for me in 0..self.threads.max(1) {
                let region = &region;
                ts.spawn(move || region.work(me));
            }
            let scope = Scope { region: &region };
            // Close on drop, not on the success path only: if `f` itself
            // unwinds, the workers must still be released or the join
            // below would deadlock instead of re-raising the panic.
            let _close = CloseGuard { region: &region };
            f(&scope)
        });
        if let Some(payload) = region.panic.lock().unwrap().take() {
            std::panic::resume_unwind(payload);
        }
        result
    }
}

/// Runs a parallel region on a transient pool sized to the machine's
/// available parallelism (upstream's global-pool entry point).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    ThreadPool {
        threads: current_num_threads(),
    }
    .scope(f)
}

/// Runs both closures and returns their results. Upstream may run them
/// in parallel; the stand-in runs them sequentially, which satisfies the
/// same contract (no ordering guarantees between the two).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..1000u64 {
                let hits = &hits;
                s.spawn(move |_| {
                    hits.fetch_add(i + 1, Ordering::Relaxed);
                });
            }
        });
        // barrier: every task completed before scope returned
        assert_eq!(hits.load(Ordering::Relaxed), 1000 * 1001 / 2);
    }

    #[test]
    fn nested_spawns_complete_before_the_barrier() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                let hits = &hits;
                s.spawn(move |s| {
                    for _ in 0..8 {
                        s.spawn(move |_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn tasks_can_borrow_the_environment() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let data: Vec<u64> = (0..100).collect();
        let slots: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (k, slot) in slots.iter().enumerate() {
                let data = &data;
                s.spawn(move |_| {
                    *slot.lock().unwrap() = data.iter().skip(k).step_by(4).sum();
                });
            }
        });
        let total: u64 = slots.iter().map(|s| *s.lock().unwrap()).sum();
        assert_eq!(total, data.iter().sum());
    }

    #[test]
    fn single_thread_pool_still_drains() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let hits = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                let hits = &hits;
                s.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn scope_returns_the_closure_value_and_join_both() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = pool.scope(|_| 42);
        assert_eq!(r, 42);
        let (a, b) = join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn panicking_task_panics_the_scope_instead_of_deadlocking() {
        for threads in [1, 3] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let done = AtomicU64::new(0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.scope(|s| {
                    for i in 0..16u64 {
                        let done = &done;
                        s.spawn(move |_| {
                            assert!(i != 7, "boom");
                            done.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }));
            // the barrier still drained every non-panicking task, and the
            // panic surfaced instead of hanging the join
            assert!(result.is_err(), "threads={threads}");
            assert_eq!(done.load(Ordering::Relaxed), 15, "threads={threads}");
        }
    }

    #[test]
    fn panicking_scope_closure_panics_instead_of_deadlocking() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|_| panic!("closure boom"));
        }));
        assert!(result.is_err());
        // and the pool is still usable afterwards
        assert_eq!(pool.scope(|_| 5), 5);
    }

    #[test]
    fn builder_defaults_to_machine_parallelism() {
        let pool = ThreadPoolBuilder::new().build().unwrap();
        assert_eq!(pool.current_num_threads(), current_num_threads());
        assert!(pool.current_num_threads() >= 1);
    }
}
