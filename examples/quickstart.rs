//! Quickstart: characterize one sized fixed-point adder and one
//! approximate adder, compare them, and run both through the FFT
//! application — the whole APXPERF loop in ~40 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use apxperf::prelude::*;

fn main() {
    let lib = Library::fdsoi28();
    let mut chz = Characterizer::new(&lib);

    // 1. Operator-level characterization (error + hardware, verified).
    let sized = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 10 });
    let approx = chz.characterize(&OperatorConfig::Aca { n: 16, p: 12 });
    println!("{}", OperatorReport::csv_header());
    println!("{}", sized.to_csv_row());
    println!("{}", approx.to_csv_row());

    // 2. Application-level comparison: FFT-32 PSNR and data-path energy,
    //    with the partner multiplier sized per operator (eq. (1)).
    let fixture = FftFixture::radix2_32(7);
    for config in [
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::Aca { n: 16, p: 12 },
    ] {
        let model = appenergy::model_for_adder(&mut chz, &config);
        let mut ctx = apxperf::operators::OperatorCtx::with_adder(config.build());
        let result = fixture.run(&mut ctx);
        println!(
            "{}: PSNR {:.1} dB, FFT energy {:.3} pJ",
            config,
            result.score.value(),
            model.energy_pj(result.counts)
        );
    }
}
