//! K-means case study: reproduces the §V-D experiment interactively —
//! sweeps the truncated-adder width and shows where clustering collapses,
//! then demonstrates the ABM failure mode on the same data.
//!
//! Run with: `cargo run --release --example kmeans_study`

use apxperf::operators::OperatorCtx;
use apxperf::prelude::*;

fn main() {
    let fixture = KmeansFixture::synthetic(10, 500, 42);
    let exact = fixture.run_exact();
    println!(
        "exact baseline: {:.2}% success ({} distance ops)",
        exact.score.value() * 100.0,
        exact.counts.total()
    );

    println!("\ntruncated-adder width sweep:");
    for q in (4..=15).rev() {
        let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q }.build());
        let r = fixture.run(&mut ctx);
        let bar = "#".repeat((r.score.value() * 40.0) as usize);
        println!("  ADDt(16,{q:>2}): {:>6.2}% {bar}", r.score.value() * 100.0);
    }

    println!("\nmultiplier substitution:");
    for config in [
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Aam { n: 16 },
        OperatorConfig::Abm { n: 16 },
        OperatorConfig::AbmUncorrected { n: 16 },
        OperatorConfig::MulTrunc { n: 16, q: 4 },
    ] {
        let mut ctx = OperatorCtx::with_multiplier(config.build());
        let r = fixture.run(&mut ctx);
        println!(
            "  {:<12} {:>6.2}%",
            config.to_string(),
            r.score.value() * 100.0
        );
    }
}
