//! Operator explorer: sweeps every 16-bit adder of the paper, prints the
//! MSE-vs-PDP Pareto front for the fixed-point and approximate families
//! separately, and shows the detailed metric suite (positional BER,
//! acceptance probability, error PDF) for one operator of each family.
//!
//! Run with: `cargo run --release --example operator_explorer`

use apxperf::prelude::*;

fn main() {
    let lib = Library::fdsoi28();
    let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
        error_samples: 50_000,
        power_vectors: 600,
        ..CharacterizerSettings::default()
    });

    let mut fxp_points = Vec::new();
    let mut apx_points = Vec::new();
    for config in sweeps::all_adders_16bit() {
        let r = chz.characterize(&config);
        let point = ParetoPoint {
            name: r.name.clone(),
            x: r.error.mse_db,
            y: r.hw.pdp_pj,
        };
        if config.is_fixed_point() {
            fxp_points.push(point);
        } else {
            apx_points.push(point);
        }
    }
    println!("fixed-point MSE/PDP Pareto front:");
    for p in sweeps::pareto_front(&fxp_points) {
        println!("  {:<14} {:>8.1} dB  {:>8.5} pJ", p.name, p.x, p.y);
    }
    println!("approximate MSE/PDP Pareto front:");
    for p in sweeps::pareto_front(&apx_points) {
        println!("  {:<16} {:>8.1} dB  {:>8.5} pJ", p.name, p.x, p.y);
    }

    // detailed metric suite for one operator of each family
    for config in [
        OperatorConfig::AddTrunc { n: 16, q: 12 },
        OperatorConfig::Aca { n: 16, p: 6 },
    ] {
        let op = config.build();
        let stats = chz.error_stats(op.as_ref());
        println!("\n{} details:", op.name());
        println!(
            "  bias {:.3}, MAE {:.3}, error rate {:.4}",
            stats.mean_error(),
            stats.mae(),
            stats.error_rate()
        );
        let pber: Vec<String> = (0..16)
            .map(|k| format!("{:.2}", stats.positional_ber(k)))
            .collect();
        println!("  positional BER (LSB..MSB): {}", pber.join(" "));
        let ap: Vec<String> = (0..8)
            .map(|k| format!("{:.3}", stats.acceptance_probability_pow2(k)))
            .collect();
        println!("  AP at MAA=2^k, k=0..7:     {}", ap.join(" "));
    }
}
