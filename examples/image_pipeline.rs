//! Image pipeline study: encodes the synthetic test image with the JPEG
//! encoder under several arithmetic regimes, reports MSSIM + stream size,
//! then runs the HEVC motion-compensation filter on the same image, and
//! writes the decoded images as PGM files for visual inspection.
//!
//! Run with: `cargo run --release --example image_pipeline`

use apxperf::operators::{FaType, OperatorCtx};
use apxperf::prelude::*;

fn main() {
    let jpeg = JpegFixture::synthetic(128, 90, 11);
    let contexts = [
        ("exact", None),
        (
            "ADDt(16,12)",
            Some(OperatorConfig::AddTrunc { n: 16, q: 12 }),
        ),
        ("ADDt(16,8)", Some(OperatorConfig::AddTrunc { n: 16, q: 8 })),
        (
            "RCAApx(16,4,3)",
            Some(OperatorConfig::RcaApx {
                n: 16,
                m: 4,
                fa_type: FaType::Three,
            }),
        ),
    ];
    println!("JPEG q90, 128x128 synthetic photo:");
    for (name, config) in contexts {
        let mut ctx = match config {
            Some(c) => OperatorCtx::with_adder(c.build()),
            None => OperatorCtx::exact(),
        };
        let (result, score) = jpeg.run(&mut ctx);
        let path = format!("target/jpeg_{}.pgm", name.replace(['(', ')', ','], "_"));
        std::fs::write(&path, result.decoded.to_pgm()).expect("write PGM");
        println!(
            "  {name:<16} MSSIM {:.4}  stream {} B  -> {path}",
            score.value(),
            result.bytes.len()
        );
    }

    let mc = McFixture::synthetic(128, 12);
    println!("\nHEVC quarter-pel motion compensation, 128x128:");
    for (name, config) in [
        ("exact", None),
        (
            "ADDt(16,10)",
            Some(OperatorConfig::AddTrunc { n: 16, q: 10 }),
        ),
        ("ETAIV(16,4)", Some(OperatorConfig::EtaIv { n: 16, x: 4 })),
    ] {
        let mut ctx = match config {
            Some(c) => OperatorCtx::with_adder(c.build()),
            None => OperatorCtx::exact(),
        };
        let (result, score) = mc.run(&mut ctx);
        println!(
            "  {name:<12} MSSIM {:.4}  ({} adds, {} muls)",
            score.value(),
            result.counts.adds,
            result.counts.muls
        );
    }
}
