//! Mean Structural Similarity (MSSIM) — Wang, Bovik, Sheikh, Simoncelli,
//! IEEE TIP 2004.
//!
//! The paper scores the JPEG and HEVC experiments with MSSIM because it
//! models perceived image degradation better than PSNR. We implement the
//! uniform-window variant (8×8 sliding windows with stride 4), a common
//! simplification of the 11×11 Gaussian original; the ranking behaviour —
//! all the experiments need — is identical.

/// Stabilizer `C1 = (K1·L)²` with `K1 = 0.01`, `L = 255`.
pub const SSIM_C1: f64 = 6.5025;
/// Stabilizer `C2 = (K2·L)²` with `K2 = 0.03`, `L = 255`.
pub const SSIM_C2: f64 = 58.5225;

/// MSSIM between two 8-bit grayscale images with the default 8×8 window
/// and stride 4.
///
/// Returns a score in `[-1, 1]` (1 = identical).
///
/// # Example
/// ```
/// let img: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
/// let score = apx_metrics::mssim(&img, &img, 64, 64);
/// assert!((score - 1.0).abs() < 1e-12);
/// ```
///
/// # Panics
/// Panics if the buffers don't match `width*height` or the image is
/// smaller than the window.
#[must_use]
pub fn mssim(reference: &[u8], test: &[u8], width: usize, height: usize) -> f64 {
    mssim_with_window(reference, test, width, height, 8, 4)
}

/// MSSIM with an explicit square `window` size and `stride`.
///
/// # Panics
/// Panics if the buffers don't match `width*height`, the window is zero,
/// or the image is smaller than the window.
#[must_use]
pub fn mssim_with_window(
    reference: &[u8],
    test: &[u8],
    width: usize,
    height: usize,
    window: usize,
    stride: usize,
) -> f64 {
    assert_eq!(reference.len(), width * height, "reference size mismatch");
    assert_eq!(test.len(), width * height, "test size mismatch");
    assert!(window > 0 && stride > 0, "window/stride must be positive");
    assert!(
        width >= window && height >= window,
        "image smaller than the SSIM window"
    );
    let mut total = 0.0f64;
    let mut count = 0u64;
    let mut y = 0;
    while y + window <= height {
        let mut x = 0;
        while x + window <= width {
            total += ssim_window(reference, test, width, x, y, window);
            count += 1;
            x += stride;
        }
        y += stride;
    }
    total / count as f64
}

fn ssim_window(a: &[u8], b: &[u8], width: usize, x0: usize, y0: usize, w: usize) -> f64 {
    let n = (w * w) as f64;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
    for y in y0..y0 + w {
        for x in x0..x0 + w {
            let va = f64::from(a[y * width + x]);
            let vb = f64::from(b[y * width + x]);
            sa += va;
            sb += vb;
            saa += va * va;
            sbb += vb * vb;
            sab += va * vb;
        }
    }
    let (mu_a, mu_b) = (sa / n, sb / n);
    let var_a = saa / n - mu_a * mu_a;
    let var_b = sbb / n - mu_b * mu_b;
    let cov = sab / n - mu_a * mu_b;
    ((2.0 * mu_a * mu_b + SSIM_C1) * (2.0 * cov + SSIM_C2))
        / ((mu_a * mu_a + mu_b * mu_b + SSIM_C1) * (var_a + var_b + SSIM_C2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(width: usize, height: usize) -> Vec<u8> {
        (0..width * height)
            .map(|i| {
                let (x, y) = (i % width, i / width);
                ((x * 3 + y * 5) % 256) as u8
            })
            .collect()
    }

    #[test]
    fn identical_images_score_one() {
        let img = gradient_image(32, 32);
        assert!((mssim(&img, &img, 32, 32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mssim_decreases_with_degradation() {
        let img = gradient_image(64, 64);
        let slightly: Vec<u8> = img.iter().map(|&p| p.saturating_add(2)).collect();
        let heavily: Vec<u8> = img.iter().map(|&p| (p / 16) * 16).collect();
        let s1 = mssim(&img, &slightly, 64, 64);
        let s2 = mssim(&img, &heavily, 64, 64);
        assert!(
            s1 > s2,
            "light degradation {s1} must score above heavy {s2}"
        );
        assert!(s1 < 1.0 && s2 > 0.0);
    }

    #[test]
    fn mssim_is_symmetric() {
        let a = gradient_image(40, 40);
        let b: Vec<u8> = a.iter().map(|&p| p ^ 3).collect();
        let ab = mssim(&a, &b, 40, 40);
        let ba = mssim(&b, &a, 40, 40);
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn constant_vs_noise_scores_low() {
        let flat = vec![128u8; 32 * 32];
        let noisy: Vec<u8> = (0..32 * 32).map(|i| ((i * 97) % 256) as u8).collect();
        assert!(mssim(&flat, &noisy, 32, 32) < 0.3);
    }

    #[test]
    #[should_panic(expected = "image smaller")]
    fn tiny_image_panics() {
        let img = vec![0u8; 16];
        let _ = mssim(&img, &img, 4, 4);
    }
}
