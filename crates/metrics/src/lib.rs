//! Error and quality metrics — the measurement half of APXPERF (§III of
//! the paper).
//!
//! * [`ErrorStats`] — the full operator-level metric suite: MSE (and its
//!   dB normalization), BER and per-position BER, mean error (bias), MAE,
//!   relative error, min/max error, error rate, a log₂ error-magnitude
//!   PDF, power-of-two acceptance probabilities (AP vs. MAA), and an error
//!   capture buffer from which the error PSD is computed.
//! * [`QualityScore`] — the unified application-quality score every
//!   workload reports, with constructors for each metric below (the one
//!   scoring entry point of the workload layer) and a kind-free
//!   exact-relative [`QualityScore::degradation`] accessor.
//! * [`QualityBudget`] — a parsed bound on a quality score (`>=30dB`,
//!   `<=1dB`, `>=95%`), with unit/metric checking — the constraint side
//!   of the `apxperf tune` search.
//! * [`psnr_db`] / [`snr_db`] — output quality for the FFT and FIR
//!   experiments (Fig. 5).
//! * [`mssim`] — Mean Structural Similarity (Wang et al., 2004) for the
//!   JPEG and HEVC experiments (Fig. 6, Tables III/IV).
//! * [`success_rate`] — classification success for the K-means
//!   experiment (Tables V/VI).
//! * [`spectrum`] — a small f64 radix-2 FFT used for the PSD metric (and
//!   as the golden reference for the fixed-point FFT application).
//!
//! # Example
//!
//! ```
//! use apx_metrics::ErrorStats;
//! use apx_operators::{AddTrunc, ApxOperator};
//!
//! let op = AddTrunc::new(16, 12);
//! let mut stats = ErrorStats::new(op.ref_bits(), op.fullscale_bits());
//! for a in (0..1u64 << 16).step_by(257) {
//!     for b in (0..1u64 << 16).step_by(509) {
//!         stats.record(op.reference_u(a, b), op.aligned_u(a, b));
//!     }
//! }
//! assert!(stats.mse_db() < -40.0);
//! assert!(stats.mean_error() > 0.0); // truncation bias
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod error;
mod mssim;
mod signal;
pub mod spectrum;

pub use budget::QualityBudget;
pub use error::{ErrorStats, PSD_CAPTURE_LEN};
pub use mssim::{mssim, mssim_with_window, SSIM_C1, SSIM_C2};
pub use signal::{psnr_db, psnr_db_from_mse, snr_db, success_rate, QualityScore};
