//! Signal-level quality scores: PSNR and the quality-score wrapper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Peak signal-to-noise ratio between a reference and a test signal:
/// `PSNR = 10·log10(max(x²) / MSE)`, exactly as defined for the FFT
/// experiment of the paper (Fig. 5).
///
/// Returns `f64::INFINITY` for identical signals.
///
/// # Example
/// ```
/// let reference = [100i64, -200, 300, -50];
/// assert_eq!(apx_metrics::psnr_db(&reference, &reference), f64::INFINITY);
/// let noisy = [101i64, -200, 300, -50];
/// assert!(apx_metrics::psnr_db(&reference, &noisy) > 40.0);
/// ```
///
/// # Panics
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn psnr_db(reference: &[i64], test: &[i64]) -> f64 {
    assert_eq!(reference.len(), test.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty signals");
    let mse = reference
        .iter()
        .zip(test)
        .map(|(&r, &t)| {
            let e = (r - t) as f64;
            e * e
        })
        .sum::<f64>()
        / reference.len() as f64;
    let peak = reference
        .iter()
        .map(|&r| (r as f64) * (r as f64))
        .fold(0.0f64, f64::max);
    psnr_db_from_mse(peak, mse)
}

/// PSNR from a precomputed peak power and MSE.
#[must_use]
pub fn psnr_db_from_mse(peak_power: f64, mse: f64) -> f64 {
    if mse <= 0.0 {
        return f64::INFINITY;
    }
    if peak_power <= 0.0 {
        return f64::NEG_INFINITY;
    }
    10.0 * (peak_power / mse).log10()
}

/// A tagged application-quality score, so reports can carry the metric
/// appropriate to each experiment (PSNR for FFT, MSSIM for JPEG/HEVC,
/// success rate for K-means).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityScore {
    /// Peak signal-to-noise ratio in dB.
    PsnrDb(f64),
    /// Mean structural similarity in `[0, 1]`.
    Mssim(f64),
    /// Classification success rate in `[0, 1]`.
    SuccessRate(f64),
}

impl QualityScore {
    /// The raw value regardless of the metric kind.
    #[must_use]
    pub fn value(&self) -> f64 {
        match *self {
            QualityScore::PsnrDb(v) | QualityScore::Mssim(v) | QualityScore::SuccessRate(v) => v,
        }
    }
}

impl fmt::Display for QualityScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityScore::PsnrDb(v) => write!(f, "PSNR {v:.2} dB"),
            QualityScore::Mssim(v) => write!(f, "MSSIM {v:.4}"),
            QualityScore::SuccessRate(v) => write!(f, "success {:.2}%", v * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_decreases_with_noise_amplitude() {
        let reference: Vec<i64> = (0..256).map(|t| ((t * 13) % 201) - 100).collect();
        let small: Vec<i64> = reference.iter().map(|&x| x + 1).collect();
        let large: Vec<i64> = reference.iter().map(|&x| x + 10).collect();
        assert!(psnr_db(&reference, &small) > psnr_db(&reference, &large));
    }

    #[test]
    fn psnr_known_value() {
        // peak 100^2, constant error 1 -> 10*log10(10000) = 40 dB
        let reference = [100i64; 64];
        let test = [99i64; 64];
        assert!((psnr_db(&reference, &test) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn quality_score_display() {
        assert_eq!(QualityScore::Mssim(0.9912).to_string(), "MSSIM 0.9912");
        assert_eq!(
            QualityScore::SuccessRate(0.8606).to_string(),
            "success 86.06%"
        );
    }
}
