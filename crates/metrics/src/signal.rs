//! Signal-level quality scores: PSNR, SNR, classification success and
//! the unified [`QualityScore`] the application workloads report.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Peak signal-to-noise ratio between a reference and a test signal:
/// `PSNR = 10·log10(max(x²) / MSE)`, exactly as defined for the FFT
/// experiment of the paper (Fig. 5).
///
/// Returns `f64::INFINITY` for identical signals.
///
/// # Example
/// ```
/// let reference = [100i64, -200, 300, -50];
/// assert_eq!(apx_metrics::psnr_db(&reference, &reference), f64::INFINITY);
/// let noisy = [101i64, -200, 300, -50];
/// assert!(apx_metrics::psnr_db(&reference, &noisy) > 40.0);
/// ```
///
/// # Panics
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn psnr_db(reference: &[i64], test: &[i64]) -> f64 {
    assert_eq!(reference.len(), test.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty signals");
    let mse = error_power(reference, test);
    let peak = reference
        .iter()
        .map(|&r| (r as f64) * (r as f64))
        .fold(0.0f64, f64::max);
    psnr_db_from_mse(peak, mse)
}

/// Signal-to-noise ratio between a reference and a test signal:
/// `SNR = 10·log10(Σx² / Σ(x − y)²)` — mean signal power over mean error
/// power (the filter-output metric of the FIR workload).
///
/// Returns `f64::INFINITY` for identical signals and `f64::NEG_INFINITY`
/// for an all-zero reference with a nonzero error.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn snr_db(reference: &[i64], test: &[i64]) -> f64 {
    assert_eq!(reference.len(), test.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty signals");
    let signal = reference
        .iter()
        .map(|&r| (r as f64) * (r as f64))
        .sum::<f64>()
        / reference.len() as f64;
    psnr_db_from_mse(signal, error_power(reference, test))
}

/// Mean error power `Σ(x − y)²/n` between two equal-length signals.
fn error_power(reference: &[i64], test: &[i64]) -> f64 {
    reference
        .iter()
        .zip(test)
        .map(|(&r, &t)| {
            let e = (r - t) as f64;
            e * e
        })
        .sum::<f64>()
        / reference.len() as f64
}

/// PSNR from a precomputed peak power and MSE.
#[must_use]
pub fn psnr_db_from_mse(peak_power: f64, mse: f64) -> f64 {
    if mse <= 0.0 {
        return f64::INFINITY;
    }
    if peak_power <= 0.0 {
        return f64::NEG_INFINITY;
    }
    10.0 * (peak_power / mse).log10()
}

/// Fraction of positions where two label sequences agree — the paper's
/// K-means classification success rate (§V-D).
///
/// Returns 0 for empty sequences.
///
/// # Panics
/// Panics if the sequences differ in length.
#[must_use]
pub fn success_rate(expected: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(expected.len(), actual.len(), "length mismatch");
    let correct = expected.iter().zip(actual).filter(|(a, b)| a == b).count();
    correct as f64 / expected.len().max(1) as f64
}

/// A tagged application-quality score — the one currency every workload
/// reports, so reports can carry the metric appropriate to each
/// experiment (PSNR for the FFT, SNR for the FIR filter, MSSIM for
/// JPEG/HEVC/Sobel, success rate for K-means) while staying comparable.
///
/// Scores of the same kind are ordered (`PartialOrd`, **higher is always
/// better** for every variant); scores of different kinds are not. The
/// kind-free [`QualityScore::degradation`] accessor maps any score onto
/// a common "distance from the exact-arithmetic run" scale.
///
/// Serialization is manual and **bit-exact**: the value is stored as its
/// IEEE-754 bit pattern, because exact-arithmetic runs legitimately score
/// `+inf` dB and the JSON float path collapses non-finite values to
/// `null` — a cached score must round-trip the app-sweep cache without
/// changing a single bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityScore {
    /// Peak signal-to-noise ratio in dB.
    PsnrDb(f64),
    /// Signal-to-noise ratio in dB.
    SnrDb(f64),
    /// Mean structural similarity in `[0, 1]`.
    Mssim(f64),
    /// Classification success rate in `[0, 1]`.
    SuccessRate(f64),
}

impl QualityScore {
    /// PSNR score of a test signal against its exact reference.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    #[must_use]
    pub fn psnr(reference: &[i64], test: &[i64]) -> Self {
        QualityScore::PsnrDb(psnr_db(reference, test))
    }

    /// SNR score of a test signal against its exact reference.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    #[must_use]
    pub fn snr(reference: &[i64], test: &[i64]) -> Self {
        QualityScore::SnrDb(snr_db(reference, test))
    }

    /// MSSIM score of a test image against its exact reference.
    ///
    /// # Panics
    /// Panics if the buffers don't match `width*height` or the image is
    /// smaller than the SSIM window.
    #[must_use]
    pub fn mssim(reference: &[u8], test: &[u8], width: usize, height: usize) -> Self {
        QualityScore::Mssim(crate::mssim(reference, test, width, height))
    }

    /// Classification-success score of predicted labels against the
    /// expected ones.
    ///
    /// # Panics
    /// Panics if the sequences differ in length.
    #[must_use]
    pub fn success(expected: &[usize], actual: &[usize]) -> Self {
        QualityScore::SuccessRate(success_rate(expected, actual))
    }

    /// The raw value regardless of the metric kind.
    #[must_use]
    pub fn value(&self) -> f64 {
        match *self {
            QualityScore::PsnrDb(v)
            | QualityScore::SnrDb(v)
            | QualityScore::Mssim(v)
            | QualityScore::SuccessRate(v) => v,
        }
    }

    /// Short column-header-style name of the metric kind.
    #[must_use]
    pub fn metric(&self) -> &'static str {
        match self {
            QualityScore::PsnrDb(_) => "PSNR_dB",
            QualityScore::SnrDb(_) => "SNR_dB",
            QualityScore::Mssim(_) => "MSSIM",
            QualityScore::SuccessRate(_) => "success",
        }
    }

    /// Exact-relative degradation: 0 for a run indistinguishable from the
    /// exact-arithmetic reference, growing as quality drops — one scale
    /// common to every metric kind, so workloads with different metrics
    /// can be ranked by how much approximation hurt them.
    ///
    /// * dB ratios (PSNR/SNR) map through the inverse decibel,
    ///   `10^(−dB/10)` — the relative error power (exact ⇒ ∞ dB ⇒ 0);
    /// * MSSIM and success rate map through `1 − v` (exact ⇒ 1 ⇒ 0).
    #[must_use]
    pub fn degradation(&self) -> f64 {
        match *self {
            QualityScore::PsnrDb(v) | QualityScore::SnrDb(v) => 10f64.powf(-v / 10.0),
            QualityScore::Mssim(v) | QualityScore::SuccessRate(v) => 1.0 - v,
        }
    }
}

impl Serialize for QualityScore {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "metric".to_owned(),
                serde::Value::String(self.metric().to_owned()),
            ),
            ("bits".to_owned(), self.value().to_bits().to_value()),
        ])
    }
}

impl Deserialize for QualityScore {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("QualityScore: expected an object"))?;
        let field = |name: &str| {
            fields
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::custom(format!("QualityScore: missing `{name}`")))
        };
        let metric = field("metric")?
            .as_str()
            .ok_or_else(|| serde::Error::custom("QualityScore: `metric` must be a string"))?;
        let value = f64::from_bits(u64::from_value(field("bits")?)?);
        match metric {
            "PSNR_dB" => Ok(QualityScore::PsnrDb(value)),
            "SNR_dB" => Ok(QualityScore::SnrDb(value)),
            "MSSIM" => Ok(QualityScore::Mssim(value)),
            "success" => Ok(QualityScore::SuccessRate(value)),
            other => Err(serde::Error::custom(format!(
                "QualityScore: unknown metric `{other}`"
            ))),
        }
    }
}

impl PartialOrd for QualityScore {
    /// Orders two scores of the **same** metric kind (higher is better
    /// for every variant); scores of different kinds are incomparable.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (QualityScore::PsnrDb(a), QualityScore::PsnrDb(b))
            | (QualityScore::SnrDb(a), QualityScore::SnrDb(b))
            | (QualityScore::Mssim(a), QualityScore::Mssim(b))
            | (QualityScore::SuccessRate(a), QualityScore::SuccessRate(b)) => a.partial_cmp(b),
            _ => None,
        }
    }
}

impl fmt::Display for QualityScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityScore::PsnrDb(v) => write!(f, "PSNR {v:.2} dB"),
            QualityScore::SnrDb(v) => write!(f, "SNR {v:.2} dB"),
            QualityScore::Mssim(v) => write!(f, "MSSIM {v:.4}"),
            QualityScore::SuccessRate(v) => write!(f, "success {:.2}%", v * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psnr_decreases_with_noise_amplitude() {
        let reference: Vec<i64> = (0..256).map(|t| ((t * 13) % 201) - 100).collect();
        let small: Vec<i64> = reference.iter().map(|&x| x + 1).collect();
        let large: Vec<i64> = reference.iter().map(|&x| x + 10).collect();
        assert!(psnr_db(&reference, &small) > psnr_db(&reference, &large));
    }

    #[test]
    fn psnr_known_value() {
        // peak 100^2, constant error 1 -> 10*log10(10000) = 40 dB
        let reference = [100i64; 64];
        let test = [99i64; 64];
        assert!((psnr_db(&reference, &test) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn snr_known_value_and_extremes() {
        // signal power 100^2, error power 1 -> 40 dB
        let reference = [100i64; 64];
        let test = [99i64; 64];
        assert!((snr_db(&reference, &test) - 40.0).abs() < 1e-9);
        assert_eq!(snr_db(&reference, &reference), f64::INFINITY);
        assert_eq!(snr_db(&[0i64; 4], &[1i64; 4]), f64::NEG_INFINITY);
        // SNR uses mean signal power, PSNR peak power: on a non-constant
        // signal PSNR reads higher
        let ramp: Vec<i64> = (0..64).collect();
        let off: Vec<i64> = ramp.iter().map(|&x| x + 1).collect();
        assert!(psnr_db(&ramp, &off) > snr_db(&ramp, &off));
    }

    #[test]
    fn success_rate_counts_agreements() {
        assert_eq!(success_rate(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        assert_eq!(success_rate(&[0, 1, 2, 3], &[0, 9, 2, 9]), 0.5);
        assert_eq!(success_rate(&[], &[]), 0.0);
    }

    #[test]
    fn quality_score_display() {
        assert_eq!(QualityScore::Mssim(0.9912).to_string(), "MSSIM 0.9912");
        assert_eq!(
            QualityScore::SuccessRate(0.8606).to_string(),
            "success 86.06%"
        );
        assert_eq!(QualityScore::SnrDb(31.5).to_string(), "SNR 31.50 dB");
    }

    #[test]
    fn same_kind_scores_order_higher_is_better() {
        assert!(QualityScore::PsnrDb(50.0) > QualityScore::PsnrDb(40.0));
        assert!(QualityScore::Mssim(0.99) > QualityScore::Mssim(0.5));
        assert!(QualityScore::SuccessRate(0.9) >= QualityScore::SuccessRate(0.9));
        // cross-kind scores are incomparable
        assert_eq!(
            QualityScore::PsnrDb(1.0).partial_cmp(&QualityScore::Mssim(1.0)),
            None
        );
    }

    #[test]
    fn degradation_is_zero_at_exact_and_grows_monotonically() {
        assert_eq!(QualityScore::PsnrDb(f64::INFINITY).degradation(), 0.0);
        assert_eq!(QualityScore::Mssim(1.0).degradation(), 0.0);
        assert_eq!(QualityScore::SuccessRate(1.0).degradation(), 0.0);
        assert!(
            QualityScore::PsnrDb(20.0).degradation() > QualityScore::PsnrDb(40.0).degradation()
        );
        assert!(QualityScore::Mssim(0.5).degradation() > QualityScore::Mssim(0.9).degradation());
        // 30 dB -> 1e-3 relative error power
        assert!((QualityScore::SnrDb(30.0).degradation() - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_is_bit_exact_including_non_finite_scores() {
        let scores = [
            QualityScore::PsnrDb(f64::INFINITY),
            QualityScore::SnrDb(f64::NEG_INFINITY),
            QualityScore::PsnrDb(53.884_217_321),
            QualityScore::Mssim(0.991_2),
            QualityScore::SuccessRate(0.860_6),
        ];
        for score in scores {
            let back = QualityScore::from_value(&score.to_value()).unwrap();
            assert_eq!(back, score, "{score:?}");
            assert_eq!(
                back.value().to_bits(),
                score.value().to_bits(),
                "{score:?} must survive bit-for-bit"
            );
        }
        assert!(QualityScore::from_value(&serde::Value::Null).is_err());
    }

    #[test]
    fn constructors_tag_the_right_kind() {
        let reference = [5i64, -3, 8, 0];
        assert_eq!(
            QualityScore::psnr(&reference, &reference),
            QualityScore::PsnrDb(f64::INFINITY)
        );
        assert_eq!(
            QualityScore::snr(&reference, &reference),
            QualityScore::SnrDb(f64::INFINITY)
        );
        assert_eq!(
            QualityScore::success(&[1, 2], &[1, 3]),
            QualityScore::SuccessRate(0.5)
        );
        let img: Vec<u8> = (0..64 * 64).map(|i| (i % 251) as u8).collect();
        let QualityScore::Mssim(v) = QualityScore::mssim(&img, &img, 64, 64) else {
            panic!("mssim constructor must tag Mssim");
        };
        assert!((v - 1.0).abs() < 1e-12);
    }
}
