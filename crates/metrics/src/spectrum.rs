//! Double-precision radix-2 FFT and periodogram.
//!
//! Small, allocation-light, and used in two roles: computing the error
//! power spectral density metric, and serving as the golden floating-point
//! reference against which the fixed-point FFT application is scored
//! (Fig. 5 of the paper).

use std::f64::consts::PI;

/// In-place radix-2 decimation-in-time FFT of a complex signal.
///
/// `re`/`im` hold the real and imaginary parts; the length must be a
/// power of two.
///
/// # Panics
/// Panics if the lengths differ or are not a power of two.
pub fn fft_complex(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "mismatched component lengths");
    assert!(n.is_power_of_two(), "length must be a power of two");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let i = start + k;
                let j = i + len / 2;
                let tr = re[j] * cr - im[j] * ci;
                let ti = re[j] * ci + im[j] * cr;
                re[j] = re[i] - tr;
                im[j] = im[i] - ti;
                re[i] += tr;
                im[i] += ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
        }
        len <<= 1;
    }
}

/// Inverse FFT (unnormalized by conjugation; output scaled by `1/n`).
///
/// # Panics
/// Panics under the same conditions as [`fft_complex`].
pub fn ifft_complex(re: &mut [f64], im: &mut [f64]) {
    for v in im.iter_mut() {
        *v = -*v;
    }
    fft_complex(re, im);
    let n = re.len() as f64;
    for (r, i) in re.iter_mut().zip(im.iter_mut()) {
        *r /= n;
        *i = -*i / n;
    }
}

/// One-sided periodogram (power per frequency bin) of a real signal whose
/// length is truncated to the largest power of two.
///
/// # Example
/// ```
/// // a pure tone concentrates its power in one bin
/// let signal: Vec<f64> = (0..256)
///     .map(|t| (2.0 * std::f64::consts::PI * 32.0 * t as f64 / 256.0).sin())
///     .collect();
/// let psd = apx_metrics::spectrum::periodogram(&signal);
/// let peak = psd
///     .iter()
///     .enumerate()
///     .max_by(|a, b| a.1.total_cmp(b.1))
///     .unwrap()
///     .0;
/// assert_eq!(peak, 32);
/// ```
#[must_use]
pub fn periodogram(signal: &[f64]) -> Vec<f64> {
    if signal.is_empty() {
        return Vec::new();
    }
    let n = if signal.len().is_power_of_two() {
        signal.len()
    } else {
        signal.len().next_power_of_two() / 2
    };
    let mut re: Vec<f64> = signal[..n].to_vec();
    let mut im = vec![0.0; n];
    fft_complex(&mut re, &mut im);
    (0..n / 2)
        .map(|k| (re[k] * re[k] + im[k] * im[k]) / n as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0; 16];
        let mut im = vec![0.0; 16];
        re[0] = 1.0;
        fft_complex(&mut re, &mut im);
        for k in 0..16 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let n = 32;
        let signal: Vec<f64> = (0..n).map(|t| ((t * t) % 7) as f64 - 3.0).collect();
        let mut re = signal.clone();
        let mut im = vec![0.0; n];
        fft_complex(&mut re, &mut im);
        for k in 0..n {
            let (mut dr, mut di) = (0.0, 0.0);
            for (t, &x) in signal.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                dr += x * ang.cos();
                di += x * ang.sin();
            }
            assert!((re[k] - dr).abs() < 1e-9, "k={k}");
            assert!((im[k] - di).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 64;
        let orig: Vec<f64> = (0..n).map(|t| (t as f64 * 0.37).sin() * 5.0).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0; n];
        fft_complex(&mut re, &mut im);
        ifft_complex(&mut re, &mut im);
        for (a, b) in re.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let n = 128;
        let signal: Vec<f64> = (0..n).map(|t| ((t * 31) % 17) as f64 - 8.0).collect();
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let mut re = signal.clone();
        let mut im = vec![0.0; n];
        fft_complex(&mut re, &mut im);
        let freq_energy: f64 =
            re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }
}
