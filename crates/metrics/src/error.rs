//! The operator-level error-metric accumulator.

use apx_operators::centered_diff;
use serde::{Deserialize, Serialize};

/// Number of error samples captured for PSD estimation.
pub const PSD_CAPTURE_LEN: usize = 4096;

/// Online accumulator of every §III error metric over a stream of
/// `(reference, approximate)` output pairs.
///
/// The error is the centered modular difference `e = x − x̂` (see
/// [`apx_operators::centered_diff`]); bit metrics compare the two output
/// patterns positionally over the full reference width, which is how the
/// paper penalizes truncated operators whose dropped LSBs are implicitly
/// forced to zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorStats {
    ref_bits: u32,
    fullscale_bits: u32,
    samples: u64,
    sum_e: i128,
    sum_e2: f64,
    sum_abs_e: u128,
    sum_rel: f64,
    rel_samples: u64,
    min_e: i64,
    max_e: i64,
    nonzero: u64,
    bit_flips: Vec<u64>,
    /// `magnitude_bins[k]` counts samples with `2^(k-1) <= |e| < 2^k`
    /// (`k = 0` counts exact results).
    magnitude_bins: Vec<u64>,
    psd_capture: Vec<f64>,
}

impl ErrorStats {
    /// Creates an accumulator for outputs of `ref_bits` width with the
    /// MSE-normalization full scale `2^fullscale_bits`.
    ///
    /// # Panics
    /// Panics unless `1 <= ref_bits <= 63`.
    #[must_use]
    pub fn new(ref_bits: u32, fullscale_bits: u32) -> Self {
        assert!((1..=63).contains(&ref_bits), "ref_bits out of range");
        ErrorStats {
            ref_bits,
            fullscale_bits,
            samples: 0,
            sum_e: 0,
            sum_e2: 0.0,
            sum_abs_e: 0,
            sum_rel: 0.0,
            rel_samples: 0,
            min_e: i64::MAX,
            max_e: i64::MIN,
            nonzero: 0,
            bit_flips: vec![0; ref_bits as usize],
            magnitude_bins: vec![0; ref_bits as usize + 2],
            psd_capture: Vec::new(),
        }
    }

    /// Records one `(reference, approximate)` output pair (both already
    /// aligned to the reference scale).
    pub fn record(&mut self, reference: u64, approx: u64) {
        let e = centered_diff(reference, approx, self.ref_bits);
        self.samples += 1;
        self.sum_e += i128::from(e);
        self.sum_e2 += (e as f64) * (e as f64);
        self.sum_abs_e += u128::from(e.unsigned_abs());
        self.min_e = self.min_e.min(e);
        self.max_e = self.max_e.max(e);
        if e != 0 {
            self.nonzero += 1;
        }
        // relative error (skip zero references, as APXPERF does)
        let signed_ref = apx_operators::sext(reference, self.ref_bits);
        if signed_ref != 0 {
            self.sum_rel += (e as f64 / signed_ref as f64).abs();
            self.rel_samples += 1;
        }
        let xor = reference ^ approx;
        for (k, flips) in self.bit_flips.iter_mut().enumerate() {
            *flips += (xor >> k) & 1;
        }
        let bin = if e == 0 {
            0
        } else {
            (64 - e.unsigned_abs().leading_zeros()) as usize
        };
        let last = self.magnitude_bins.len() - 1;
        self.magnitude_bins[bin.min(last)] += 1;
        if self.psd_capture.len() < PSD_CAPTURE_LEN {
            self.psd_capture.push(e as f64);
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean error (bias) `µe = E[e]` in reference LSBs.
    #[must_use]
    pub fn mean_error(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sum_e as f64 / self.samples as f64
    }

    /// Mean square error `E[e²]` in squared reference LSBs.
    #[must_use]
    pub fn mse(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sum_e2 / self.samples as f64
    }

    /// MSE in dB relative to the full scale:
    /// `10·log10(E[e²] / 2^(2·fullscale_bits))`.
    ///
    /// Exact operators (MSE = 0) report −∞ as `f64::NEG_INFINITY`.
    #[must_use]
    pub fn mse_db(&self) -> f64 {
        let mse = self.mse();
        if mse == 0.0 {
            return f64::NEG_INFINITY;
        }
        10.0 * mse.log10() - 20.0 * f64::from(self.fullscale_bits) * 2.0f64.log10()
    }

    /// Mean absolute error `E[|e|]`.
    #[must_use]
    pub fn mae(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sum_abs_e as f64 / self.samples as f64
    }

    /// Mean absolute relative error `E[|e / x|]` over nonzero references.
    #[must_use]
    pub fn relative_error(&self) -> f64 {
        if self.rel_samples == 0 {
            return 0.0;
        }
        self.sum_rel / self.rel_samples as f64
    }

    /// Smallest observed error (`min e`).
    #[must_use]
    pub fn min_error(&self) -> i64 {
        if self.samples == 0 {
            0
        } else {
            self.min_e
        }
    }

    /// Largest observed error (`max e`).
    #[must_use]
    pub fn max_error(&self) -> i64 {
        if self.samples == 0 {
            0
        } else {
            self.max_e
        }
    }

    /// Error rate `P[x ≠ x̂]`.
    #[must_use]
    pub fn error_rate(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.nonzero as f64 / self.samples as f64
    }

    /// Bit error rate: mean fraction of flipped bits over the reference
    /// width.
    #[must_use]
    pub fn ber(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let flips: u64 = self.bit_flips.iter().sum();
        flips as f64 / (self.samples as f64 * f64::from(self.ref_bits))
    }

    /// Positional BER `E[x_k ⊕ x̂_k]` for bit `k`.
    ///
    /// # Panics
    /// Panics if `k >= ref_bits`.
    #[must_use]
    pub fn positional_ber(&self, k: u32) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.bit_flips[k as usize] as f64 / self.samples as f64
    }

    /// Acceptance probability `P[|e| < 2^k]` — the AP-vs-MAA metric for
    /// power-of-two Minimum Acceptable Accuracy thresholds.
    #[must_use]
    pub fn acceptance_probability_pow2(&self, k: u32) -> f64 {
        if self.samples == 0 {
            return 1.0;
        }
        let upto = (k as usize + 1).min(self.magnitude_bins.len());
        let accepted: u64 = self.magnitude_bins[..upto].iter().sum();
        accepted as f64 / self.samples as f64
    }

    /// The log₂-binned PDF of `|e|`: `pdf()[0]` is the probability of an
    /// exact result, `pdf()[k]` of `2^(k-1) <= |e| < 2^k`.
    #[must_use]
    pub fn pdf(&self) -> Vec<f64> {
        if self.samples == 0 {
            return vec![0.0; self.magnitude_bins.len()];
        }
        self.magnitude_bins
            .iter()
            .map(|&c| c as f64 / self.samples as f64)
            .collect()
    }

    /// Power spectral density of the captured error sequence (periodogram
    /// of up to [`PSD_CAPTURE_LEN`] samples). Returns the one-sided
    /// spectrum; empty if fewer than 8 samples were recorded.
    #[must_use]
    pub fn psd(&self) -> Vec<f64> {
        if self.psd_capture.len() < 8 {
            return Vec::new();
        }
        let n = self.psd_capture.len().next_power_of_two() / 2;
        crate::spectrum::periodogram(&self.psd_capture[..n])
    }

    /// Merges another accumulator (same widths) into this one — the "Data
    /// Fusion" step when characterization is sharded.
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &ErrorStats) {
        assert_eq!(self.ref_bits, other.ref_bits, "width mismatch");
        assert_eq!(self.fullscale_bits, other.fullscale_bits);
        self.samples += other.samples;
        self.sum_e += other.sum_e;
        self.sum_e2 += other.sum_e2;
        self.sum_abs_e += other.sum_abs_e;
        self.sum_rel += other.sum_rel;
        self.rel_samples += other.rel_samples;
        self.min_e = self.min_e.min(other.min_e);
        self.max_e = self.max_e.max(other.max_e);
        self.nonzero += other.nonzero;
        for (a, b) in self.bit_flips.iter_mut().zip(&other.bit_flips) {
            *a += b;
        }
        for (a, b) in self.magnitude_bins.iter_mut().zip(&other.magnitude_bins) {
            *a += b;
        }
        for &e in &other.psd_capture {
            if self.psd_capture.len() < PSD_CAPTURE_LEN {
                self.psd_capture.push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_stream_has_all_zero_metrics() {
        let mut s = ErrorStats::new(16, 15);
        for v in 0..1000u64 {
            s.record(v, v);
        }
        assert_eq!(s.mse(), 0.0);
        assert_eq!(s.mse_db(), f64::NEG_INFINITY);
        assert_eq!(s.ber(), 0.0);
        assert_eq!(s.error_rate(), 0.0);
        assert_eq!(s.mean_error(), 0.0);
        assert_eq!(s.acceptance_probability_pow2(0), 1.0);
    }

    #[test]
    fn constant_error_of_one_lsb() {
        let mut s = ErrorStats::new(16, 15);
        for v in 0..1024u64 {
            s.record(v + 1, v);
        }
        assert!((s.mse() - 1.0).abs() < 1e-12);
        assert!((s.mean_error() - 1.0).abs() < 1e-12);
        assert!((s.mae() - 1.0).abs() < 1e-12);
        assert_eq!(s.error_rate(), 1.0);
        assert_eq!(s.min_error(), 1);
        assert_eq!(s.max_error(), 1);
        // MSE_dB = 10*log10(1 / 2^30) = -90.3 dB
        assert!((s.mse_db() + 90.3).abs() < 0.1, "{}", s.mse_db());
    }

    #[test]
    fn ber_counts_forced_zero_bits() {
        // emulate a truncated operator: low 8 of 16 bits zeroed
        let mut s = ErrorStats::new(16, 15);
        let mut x = 0x9E3779B9u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (x >> 20) & 0xFFFF;
            s.record(r, r & 0xFF00);
        }
        // each low bit flips with probability ~1/2 -> BER ~ 8*0.5/16 = 0.25
        assert!((s.ber() - 0.25).abs() < 0.02, "ber={}", s.ber());
        assert!(s.positional_ber(0) > 0.45);
        assert!(s.positional_ber(15) < 0.05);
    }

    #[test]
    fn acceptance_probability_is_monotone_in_the_threshold() {
        let mut s = ErrorStats::new(16, 15);
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let r = x & 0xFFFF;
            let e = (x >> 48) & 0x3F; // errors up to 63 LSBs
            s.record(r, r.wrapping_sub(e) & 0xFFFF);
        }
        let mut last = 0.0;
        for k in 0..10 {
            let ap = s.acceptance_probability_pow2(k);
            assert!(ap >= last, "AP must grow with MAA");
            last = ap;
        }
        assert!((s.acceptance_probability_pow2(16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut all = ErrorStats::new(12, 11);
        let mut a = ErrorStats::new(12, 11);
        let mut b = ErrorStats::new(12, 11);
        for v in 0..2000u64 {
            let r = (v * 37) & 0xFFF;
            let apx = (r.wrapping_sub(v % 5)) & 0xFFF;
            all.record(r, apx);
            if v % 2 == 0 {
                a.record(r, apx);
            } else {
                b.record(r, apx);
            }
        }
        a.merge(&b);
        assert_eq!(a.samples(), all.samples());
        assert!((a.mse() - all.mse()).abs() < 1e-9);
        assert!((a.ber() - all.ber()).abs() < 1e-12);
        assert_eq!(a.min_error(), all.min_error());
    }

    #[test]
    fn pdf_sums_to_one() {
        let mut s = ErrorStats::new(16, 15);
        for v in 0..5000u64 {
            s.record(v & 0xFFFF, (v.wrapping_add(v % 17)) & 0xFFFF);
        }
        let total: f64 = s.pdf().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn psd_of_white_error_is_flat_ish() {
        let mut s = ErrorStats::new(16, 15);
        let mut x = 777u64;
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (x >> 16) & 0xFFFF;
            let e = (x >> 40) & 0x7;
            s.record(r, r.wrapping_sub(e) & 0xFFFF);
        }
        let psd = s.psd();
        assert!(!psd.is_empty());
        // flatness away from DC (the truncation-style bias lands in bin 0):
        // no AC bin should dominate white-ish noise by a huge factor
        let ac = &psd[1..];
        let mean = ac.iter().sum::<f64>() / ac.len() as f64;
        let max = ac.iter().copied().fold(0.0f64, f64::max);
        assert!(max < 100.0 * mean, "PSD should not have huge AC peaks");
    }
}
