//! Quality budgets: the constraint side of the `tune` search.
//!
//! A [`QualityBudget`] is a parsed bound on a [`QualityScore`], written
//! the way a designer states a spec: `>=30dB` (an absolute floor on a
//! PSNR/SNR score), `<=1dB` (a loss allowance against the exact
//! reference), `>=95%` (a floor on a ratio metric like MSSIM or the
//! K-means success rate), `<=2%` (a loss allowance on a ratio metric).
//! Units are checked against the score's metric kind, so a dB budget on
//! a success-rate workload is a user-facing error, not a silent
//! mis-comparison.

use crate::QualityScore;
use std::fmt;
use std::str::FromStr;

/// A parsed bound on application quality, with explicit units.
///
/// The two dB forms apply to the logarithmic metrics (PSNR/SNR); the two
/// percent forms to the ratio metrics (MSSIM, success rate). Loss
/// budgets (`<=`) are relative to the exact reference, which has zero
/// loss by construction and therefore meets every loss budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QualityBudget {
    /// `>=X dB`: the score itself must reach at least `X` dB.
    MinDb(f64),
    /// `<=X dB`: approximation noise may inflate the output power by at
    /// most `X` dB, i.e. the noise-to-signal ratio
    /// [`QualityScore::degradation`] stays within `10^(X/10) − 1`.
    MaxLossDb(f64),
    /// `>=X %`: the ratio score must reach at least `X` percent.
    MinPercent(f64),
    /// `<=X %`: the ratio score may fall at most `X` percent short of
    /// the perfect 100 %.
    MaxLossPercent(f64),
}

impl QualityBudget {
    /// Whether `score` meets the budget, or an explanation of the
    /// unit/metric mismatch (e.g. a dB bound on a success-rate
    /// workload).
    pub fn admits(&self, score: &QualityScore) -> Result<bool, String> {
        let db_value = match score {
            QualityScore::PsnrDb(v) | QualityScore::SnrDb(v) => Some(*v),
            _ => None,
        };
        let ratio_value = match score {
            QualityScore::Mssim(v) | QualityScore::SuccessRate(v) => Some(*v),
            _ => None,
        };
        match self {
            QualityBudget::MinDb(floor) => db_value
                .map(|v| v >= *floor)
                .ok_or_else(|| self.mismatch(score)),
            QualityBudget::MaxLossDb(loss) => db_value
                .map(|_| score.degradation() <= 10f64.powf(loss / 10.0) - 1.0)
                .ok_or_else(|| self.mismatch(score)),
            QualityBudget::MinPercent(floor) => ratio_value
                .map(|v| v * 100.0 >= *floor)
                .ok_or_else(|| self.mismatch(score)),
            QualityBudget::MaxLossPercent(loss) => ratio_value
                .map(|v| (1.0 - v) * 100.0 <= *loss)
                .ok_or_else(|| self.mismatch(score)),
        }
    }

    /// Whether the budget is stated in dB (as opposed to percent).
    #[must_use]
    pub fn is_db(&self) -> bool {
        matches!(self, QualityBudget::MinDb(_) | QualityBudget::MaxLossDb(_))
    }

    fn mismatch(&self, score: &QualityScore) -> String {
        let unit = if self.is_db() { "dB" } else { "%" };
        format!(
            "budget `{self}` is in {unit} but the workload scores {}; \
             use a {} budget instead",
            score.metric(),
            if self.is_db() { "%" } else { "dB" }
        )
    }
}

impl fmt::Display for QualityBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QualityBudget::MinDb(v) => write!(f, ">={v}dB"),
            QualityBudget::MaxLossDb(v) => write!(f, "<={v}dB"),
            QualityBudget::MinPercent(v) => write!(f, ">={v}%"),
            QualityBudget::MaxLossPercent(v) => write!(f, "<={v}%"),
        }
    }
}

impl FromStr for QualityBudget {
    type Err = String;

    /// Parses `<=`/`>=` + number + `dB`/`%` (case-insensitive unit,
    /// whitespace tolerated around the number).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let text = s.trim();
        let err = || {
            format!(
                "invalid quality budget `{s}`: expected <= or >= followed by \
                 a number and a dB or % unit, e.g. `>=30dB`, `<=1dB`, `>=95%`"
            )
        };
        let (lower_is_loss, rest) = if let Some(rest) = text.strip_prefix("<=") {
            (true, rest)
        } else if let Some(rest) = text.strip_prefix(">=") {
            (false, rest)
        } else {
            return Err(err());
        };
        let rest = rest.trim();
        let (number, is_db) = if let Some(number) = rest
            .strip_suffix("dB")
            .or_else(|| rest.strip_suffix("db"))
            .or_else(|| rest.strip_suffix("DB"))
            .or_else(|| rest.strip_suffix("db"))
        {
            (number, true)
        } else if let Some(number) = rest.strip_suffix('%') {
            (number, false)
        } else {
            return Err(err());
        };
        let value: f64 = number.trim().parse().map_err(|_| err())?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!(
                "invalid quality budget `{s}`: the bound must be a finite \
                 non-negative number"
            ));
        }
        if !is_db && value > 100.0 {
            return Err(format!(
                "invalid quality budget `{s}`: a percent bound cannot exceed 100"
            ));
        }
        Ok(match (lower_is_loss, is_db) {
            (false, true) => QualityBudget::MinDb(value),
            (true, true) => QualityBudget::MaxLossDb(value),
            (false, false) => QualityBudget::MinPercent(value),
            (true, false) => QualityBudget::MaxLossPercent(value),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_four_forms_and_round_trips_through_display() {
        for (text, expected) in [
            (">=30dB", QualityBudget::MinDb(30.0)),
            ("<=1dB", QualityBudget::MaxLossDb(1.0)),
            (">=95%", QualityBudget::MinPercent(95.0)),
            ("<=2.5%", QualityBudget::MaxLossPercent(2.5)),
        ] {
            let parsed: QualityBudget = text.parse().expect(text);
            assert_eq!(parsed, expected, "{text}");
            let display = parsed.to_string();
            assert_eq!(display, text, "display form");
            let reparsed: QualityBudget = display.parse().expect("round-trip");
            assert_eq!(reparsed, parsed, "{text}: FromStr/Display round-trip");
        }
        // unit spelling is case-insensitive and whitespace is tolerated
        assert_eq!(
            " >= 30 db ".parse::<QualityBudget>().unwrap(),
            QualityBudget::MinDb(30.0)
        );
    }

    #[test]
    fn rejects_malformed_budgets_with_messages() {
        for bad in ["30dB", ">=dB", ">=30", "<=1 parsec", ">=-3dB", ">=120%", ""] {
            let err = bad.parse::<QualityBudget>().unwrap_err();
            assert!(err.contains("budget"), "{bad}: {err}");
        }
    }

    #[test]
    fn db_floor_admits_db_scores_only() {
        let budget = QualityBudget::MinDb(30.0);
        assert_eq!(budget.admits(&QualityScore::PsnrDb(35.0)), Ok(true));
        assert_eq!(budget.admits(&QualityScore::SnrDb(29.9)), Ok(false));
        assert_eq!(
            budget.admits(&QualityScore::PsnrDb(f64::INFINITY)),
            Ok(true),
            "the exact run meets every floor"
        );
        let err = budget.admits(&QualityScore::SuccessRate(0.99)).unwrap_err();
        assert!(err.contains("success"), "{err}");
        assert!(err.contains("%"), "{err}");
    }

    #[test]
    fn db_loss_budget_bounds_the_degradation() {
        let budget = QualityBudget::MaxLossDb(1.0);
        // 1 dB of output-power inflation ↔ degradation 10^0.1 − 1 ≈ 0.259,
        // i.e. a score of −10·log10(0.259) ≈ 5.9 dB still passes
        assert_eq!(budget.admits(&QualityScore::SnrDb(6.0)), Ok(true));
        assert_eq!(budget.admits(&QualityScore::SnrDb(5.0)), Ok(false));
        assert_eq!(
            budget.admits(&QualityScore::SnrDb(f64::INFINITY)),
            Ok(true),
            "exact arithmetic has zero loss"
        );
        assert!(budget.admits(&QualityScore::Mssim(0.99)).is_err());
    }

    #[test]
    fn percent_budgets_bound_ratio_scores() {
        assert_eq!(
            QualityBudget::MinPercent(95.0).admits(&QualityScore::SuccessRate(0.96)),
            Ok(true)
        );
        assert_eq!(
            QualityBudget::MinPercent(95.0).admits(&QualityScore::Mssim(0.90)),
            Ok(false)
        );
        assert_eq!(
            QualityBudget::MaxLossPercent(2.0).admits(&QualityScore::Mssim(0.985)),
            Ok(true)
        );
        assert_eq!(
            QualityBudget::MaxLossPercent(2.0).admits(&QualityScore::Mssim(0.97)),
            Ok(false)
        );
        assert!(QualityBudget::MinPercent(95.0)
            .admits(&QualityScore::PsnrDb(40.0))
            .unwrap_err()
            .contains("dB"));
    }
}
