//! The per-operator characterization pipeline.

use crate::report::{ErrorSummary, OperatorReport};
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::{plan_shards, shard_seed, Engine};
use apx_metrics::ErrorStats;
use apx_netlist::{verify, AnalysisSettings, HwAnalyzer};
use apx_operators::{mask_u, ApxOperator, OperatorConfig};
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Stream id mixed into [`shard_seed`] for the error-sampling draws.
const STREAM_ERROR: u64 = 0xE55_0E57;

/// Tunables of the characterization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CharacterizerSettings {
    /// Random samples for the error characterization (the paper uses >10⁷
    /// on a cluster; 10⁵–10⁶ converges for every scalar metric here and
    /// repro binaries expose a knob).
    pub error_samples: usize,
    /// Random vectors for equivalence checking when the operand space is
    /// too wide for an exhaustive sweep.
    pub verify_samples: usize,
    /// Input width (in total operand bits) up to which verification is
    /// exhaustive.
    pub exhaustive_up_to_bits: u32,
    /// Gate-level vectors for power estimation.
    pub power_vectors: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CharacterizerSettings {
    fn default() -> Self {
        CharacterizerSettings {
            error_samples: 100_000,
            verify_samples: 4_000,
            exhaustive_up_to_bits: 20,
            power_vectors: 1_500,
            seed: 0xDA7E_2017,
        }
    }
}

/// Runs the full APXPERF pipeline for operator configurations against one
/// technology library.
///
/// All three loops — error sampling, equivalence verification and power
/// vectors — are sharded into fixed-size chunks with per-chunk RNG
/// streams derived from the master seed, executed on the attached
/// [`Engine`] and merged in shard order. Reports are therefore
/// **bit-identical for any thread count**; `APXPERF_THREADS` (or
/// [`Characterizer::with_engine`]) only changes the wall-clock.
///
/// See the crate-level docs for the pipeline diagram and an example.
#[derive(Debug, Clone)]
pub struct Characterizer<'a> {
    lib: &'a Library,
    settings: CharacterizerSettings,
    engine: Engine,
    cache: Cache,
    batch: usize,
}

impl<'a> Characterizer<'a> {
    /// Creates a characterizer with default settings on the environment's
    /// engine (`APXPERF_THREADS`, defaulting to the machine parallelism).
    /// Caching starts disabled; attach a store with
    /// [`Characterizer::with_cache`].
    #[must_use]
    pub fn new(lib: &'a Library) -> Self {
        Characterizer {
            lib,
            settings: CharacterizerSettings::default(),
            engine: Engine::from_env(),
            cache: Cache::default(),
            batch: apx_engine::EVAL_BATCH,
        }
    }

    /// Replaces the settings.
    #[must_use]
    pub fn with_settings(mut self, settings: CharacterizerSettings) -> Self {
        self.settings = settings;
        self
    }

    /// Replaces the execution engine (thread count). Does not affect any
    /// reported number — only how fast it is produced.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the samples-per-`eval_batch`-call width inside one shard
    /// (default [`apx_engine::EVAL_BATCH`], clamped to ≥ 1). Like the
    /// thread count this is a **pure wall-clock knob**: each shard draws
    /// its operands sequentially regardless of how they are grouped into
    /// batches, so no reported number ever depends on it.
    #[must_use]
    pub fn with_eval_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Attaches a content-addressed report cache (see [`crate::cache`]):
    /// [`Characterizer::characterize`] then serves an already-keyed
    /// report from disk instead of re-running the sweep, and stores every
    /// freshly computed one. Determinism makes this transparent — a hit
    /// is bit-identical to the recompute it replaces.
    #[must_use]
    pub fn with_cache(mut self, cache: Cache) -> Self {
        self.cache = cache;
        self
    }

    /// The active settings.
    #[must_use]
    pub fn settings(&self) -> CharacterizerSettings {
        self.settings
    }

    /// The attached engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Characterizes one operator: cross-verification, functional error
    /// metrics, hardware metrics, fused into an [`OperatorReport`].
    ///
    /// With a cache attached ([`Characterizer::with_cache`]), the report
    /// is first looked up under [`crate::cache::report_cache_key`]; a hit
    /// skips all three sweeps and is bit-identical to the recompute it
    /// replaces. A fresh result is stored before being returned.
    pub fn characterize(&mut self, config: &OperatorConfig) -> OperatorReport {
        if !self.cache.is_enabled() {
            return self.characterize_uncached(config);
        }
        let key = crate::cache::report_cache_key(self.lib, &self.settings, config);
        if let Some(report) = self.cache.get::<OperatorReport>(&key) {
            // guard against hash collisions and foreign blobs: the record
            // must actually describe the requested configuration
            if report.config == *config {
                return report;
            }
        }
        let report = self.characterize_uncached(config);
        self.cache.put(&key, &report);
        report
    }

    /// [`Characterizer::characterize`] without the cache lookup: always
    /// runs the full pipeline.
    fn characterize_uncached(&mut self, config: &OperatorConfig) -> OperatorReport {
        let op = config.build();
        let verified = self.verify(op.as_ref());
        let error = self.error_stats(op.as_ref());
        let hw = self.hardware(op.as_ref());
        OperatorReport {
            config: *config,
            name: op.name(),
            verified,
            error: ErrorSummary::from_stats(&error, op.ref_bits()),
            hw,
        }
    }

    /// The verification box: netlist vs functional model.
    fn verify(&self, op: &dyn ApxOperator) -> bool {
        let nl = op.netlist();
        let total_bits = 2 * op.input_bits();
        let result = if total_bits <= self.settings.exhaustive_up_to_bits {
            verify::verify_exhaustive2_batch_with(&nl, &self.engine, |a, b, out| {
                op.eval_batch(a, b, out);
            })
        } else {
            verify::verify_random2_batch_with(
                &nl,
                self.settings.verify_samples,
                self.settings.seed,
                &self.engine,
                |a, b, out| op.eval_batch(a, b, out),
            )
        };
        result.is_ok()
    }

    /// One shard of the error characterization: its own RNG stream, its
    /// own accumulator, batched through [`ApxOperator::reference_batch`] /
    /// [`ApxOperator::aligned_batch`].
    fn error_stats_shard(&self, op: &dyn ApxOperator, index: usize, samples: usize) -> ErrorStats {
        let mut stats = ErrorStats::new(op.ref_bits(), op.fullscale_bits());
        let mask = mask_u(op.input_bits());
        let mut rng = rand::rngs::StdRng::seed_from_u64(shard_seed(
            self.settings.seed ^ 0x5EED,
            STREAM_ERROR,
            index as u64,
        ));
        let batch = self.batch;
        let mut av = vec![0u64; batch];
        let mut bv = vec![0u64; batch];
        let mut refs = vec![0u64; batch];
        let mut outs = vec![0u64; batch];
        let mut remaining = samples;
        while remaining > 0 {
            let len = remaining.min(batch);
            for (a, b) in av[..len].iter_mut().zip(&mut bv[..len]) {
                *a = rng.random::<u64>() & mask;
                *b = rng.random::<u64>() & mask;
            }
            op.reference_batch(&av[..len], &bv[..len], &mut refs[..len]);
            op.aligned_batch(&av[..len], &bv[..len], &mut outs[..len]);
            for (&r, &o) in refs[..len].iter().zip(&outs[..len]) {
                stats.record(r, o);
            }
            remaining -= len;
        }
        stats
    }

    /// Functional error characterization over uniform random operands.
    ///
    /// Exposed publicly (in addition to [`Characterizer::characterize`])
    /// so callers can access non-scalar metrics (PDF, PSD, AP curves).
    /// Sharded: per-shard accumulators are merged in shard order (the
    /// paper's "Data Fusion"), so the result never depends on the thread
    /// count.
    pub fn error_stats(&self, op: &dyn ApxOperator) -> ErrorStats {
        let shards = plan_shards(self.settings.error_samples);
        let partials = self.engine.map_indexed(shards.len(), |i| {
            self.error_stats_shard(op, i, shards[i].len)
        });
        let mut stats = ErrorStats::new(op.ref_bits(), op.fullscale_bits());
        for partial in &partials {
            stats.merge(partial);
        }
        stats
    }

    /// Hardware characterization of the operator netlist.
    pub fn hardware(&self, op: &dyn ApxOperator) -> apx_netlist::HwReport {
        HwAnalyzer::new(self.lib)
            .with_settings(AnalysisSettings {
                power_vectors: self.settings.power_vectors,
                seed: self.settings.seed ^ 0xCAFE,
            })
            .with_engine(self.engine.clone())
            .analyze(&op.netlist())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::FaType;

    fn quick(lib: &Library) -> Characterizer<'_> {
        Characterizer::new(lib).with_settings(CharacterizerSettings {
            error_samples: 20_000,
            verify_samples: 500,
            exhaustive_up_to_bits: 16,
            power_vectors: 200,
            seed: 3,
        })
    }

    #[test]
    fn exact_adder_characterizes_clean() {
        let lib = Library::fdsoi28();
        let report = quick(&lib).characterize(&OperatorConfig::AddExact { n: 8 });
        assert!(report.verified);
        assert_eq!(report.error.error_rate, 0.0);
        assert_eq!(report.error.mse_db, f64::NEG_INFINITY);
        assert!(report.hw.area_um2 > 0.0);
    }

    #[test]
    fn truncated_adder_mse_matches_theory() {
        // ADDt(16,12): each operand loses 4 bits; e = (a mod 16)+(b mod 16),
        // E[e²] = 2·Var(U(0..15)) + (2·7.5)² ≈ 267.5
        let lib = Library::fdsoi28();
        let report = quick(&lib).characterize(&OperatorConfig::AddTrunc { n: 16, q: 12 });
        assert!(report.verified);
        assert!(
            (report.error.mse - 267.5).abs() < 15.0,
            "measured {}",
            report.error.mse
        );
    }

    #[test]
    fn reports_are_deterministic_given_settings() {
        let lib = Library::fdsoi28();
        let a = quick(&lib).characterize(&OperatorConfig::Aca { n: 8, p: 3 });
        let b = quick(&lib).characterize(&OperatorConfig::Aca { n: 8, p: 3 });
        assert_eq!(a, b);
    }

    #[test]
    fn report_serializes_to_json_and_csv() {
        let lib = Library::fdsoi28();
        let report = quick(&lib).characterize(&OperatorConfig::RcaApx {
            n: 8,
            m: 4,
            fa_type: FaType::Two,
        });
        let json = report.to_json().unwrap();
        assert!(json.contains("RCAApx(8,4,2)"));
        let row = report.to_csv_row();
        // the name is quoted (it contains commas); 10 data commas follow it
        let after_name = row.rsplit('"').next().unwrap();
        assert_eq!(after_name.matches(',').count(), 10);
        assert!(row.starts_with("\"RCAApx(8,4,2)\""));
    }

    #[test]
    fn fixed_point_dominates_on_mse_at_similar_power() {
        // the §IV headline at small scale: a truncated adder reaches far
        // better MSE than a wire-type RCAApx of comparable cost
        let lib = Library::fdsoi28();
        let mut chz = quick(&lib);
        let trunc = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 12 });
        let rca = chz.characterize(&OperatorConfig::RcaApx {
            n: 16,
            m: 8,
            fa_type: FaType::Three,
        });
        assert!(trunc.error.mse_db < rca.error.mse_db - 10.0);
    }

    #[test]
    fn thread_count_never_changes_a_report() {
        let lib = Library::fdsoi28();
        let config = OperatorConfig::EtaIv { n: 16, x: 4 };
        let baseline = quick(&lib)
            .with_engine(Engine::new(1))
            .characterize(&config);
        for threads in [2, 8] {
            let report = quick(&lib)
                .with_engine(Engine::new(threads))
                .characterize(&config);
            assert_eq!(report, baseline, "threads={threads}");
        }
    }
}
