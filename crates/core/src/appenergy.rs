//! Application-level energy model — eq. (1) of the paper with
//! *partner-operator sizing*, the mechanism behind the "hidden cost":
//!
//! `E_app = Σ PDP_add + Σ PDP_mul`
//!
//! When the adder under test is a carefully sized fixed-point operator
//! keeping `q` bits, every exact multiplier downstream shrinks to `q×q`
//! ("the exact multipliers used alongside the modified adders are
//! optimally sized according to the adder bit-width"). An approximate
//! adder keeps the full 16-bit interface, so its partner multiplier stays
//! full width — that overhead is what Tables III–VI expose.

use crate::characterizer::{Characterizer, CharacterizerSettings};
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::Engine;
use apx_operators::{OpClass, OpCounts, OperatorConfig};
use serde::{Deserialize, Serialize};

/// Per-operation energies (PDP, in pJ) of an adder/multiplier pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppEnergyModel {
    /// Energy per addition in pJ.
    pub adder_pdp_pj: f64,
    /// Energy per multiplication in pJ.
    pub mult_pdp_pj: f64,
}

impl AppEnergyModel {
    /// Total energy of an operation mix, in pJ (eq. (1)).
    #[must_use]
    pub fn energy_pj(&self, counts: OpCounts) -> f64 {
        counts.adds as f64 * self.adder_pdp_pj + counts.muls as f64 * self.mult_pdp_pj
    }
}

/// The minimal exact multiplier that partners a given adder
/// configuration: sized to the adder's live output width for fixed-point
/// sizing, full width for approximate adders (their interface never
/// shrinks).
///
/// # Panics
/// Panics if `adder` is not an adder configuration.
#[must_use]
pub fn partner_multiplier(adder: &OperatorConfig) -> OperatorConfig {
    assert_eq!(adder.op_class(), OpClass::Adder, "adder expected");
    match *adder {
        OperatorConfig::AddTrunc { q, .. } | OperatorConfig::AddRound { q, .. } => {
            let n = q.max(2);
            OperatorConfig::MulTrunc { n, q: n }
        }
        OperatorConfig::AddExact { n } => OperatorConfig::MulTrunc { n, q: n },
        _ => {
            let n = adder.input_bits();
            OperatorConfig::MulTrunc { n, q: n }
        }
    }
}

/// The minimal exact adder that partners a given multiplier
/// configuration: sized to the multiplier's output width.
///
/// # Panics
/// Panics if `mult` is not a multiplier configuration.
#[must_use]
pub fn partner_adder(mult: &OperatorConfig) -> OperatorConfig {
    assert_eq!(mult.op_class(), OpClass::Multiplier, "multiplier expected");
    let width = match *mult {
        OperatorConfig::MulTrunc { q, .. } | OperatorConfig::MulRound { q, .. } => q.max(2),
        _ => mult.input_bits(),
    };
    OperatorConfig::AddExact { n: width.min(32) }
}

/// Builds the energy model for an **adder under test**: the adder's own
/// PDP plus its sized partner multiplier's PDP (Tables III/V, Figs. 5/6).
pub fn model_for_adder(chz: &mut Characterizer<'_>, adder: &OperatorConfig) -> AppEnergyModel {
    let adder_pdp_pj = chz.characterize(adder).hw.pdp_pj;
    let partner = partner_multiplier(adder);
    let mult_pdp_pj = chz.characterize(&partner).hw.pdp_pj;
    AppEnergyModel {
        adder_pdp_pj,
        mult_pdp_pj,
    }
}

/// Builds the energy model for a **multiplier under test**: the
/// multiplier's own PDP plus its sized partner adder's PDP
/// (Tables IV/VI, Table II).
pub fn model_for_multiplier(chz: &mut Characterizer<'_>, mult: &OperatorConfig) -> AppEnergyModel {
    let mult_pdp_pj = chz.characterize(mult).hw.pdp_pj;
    let partner = partner_adder(mult);
    let adder_pdp_pj = chz.characterize(&partner).hw.pdp_pj;
    AppEnergyModel {
        adder_pdp_pj,
        mult_pdp_pj,
    }
}

/// Parallel §IV driver over **adders under test**: one energy model per
/// configuration (operator + sized partner multiplier), computed across
/// configs on `engine` and returned in input order. Bit-identical to a
/// serial [`model_for_adder`] loop for any thread count.
#[must_use]
pub fn models_for_adders(
    lib: &Library,
    settings: CharacterizerSettings,
    adders: &[OperatorConfig],
    engine: &Engine,
) -> Vec<AppEnergyModel> {
    models_for_adders_cached(lib, settings, adders, engine, &Cache::disabled())
}

/// [`models_for_adders`] backed by a content-addressed report cache:
/// both characterizations of each task (operator and sized partner) are
/// served from the cache when already keyed. Partner operators recur
/// across configs (every approximate 16-bit adder shares the full-width
/// `MULt(16,16)` partner), so even a cold sweep hits after the first
/// task completes.
#[must_use]
pub fn models_for_adders_cached(
    lib: &Library,
    settings: CharacterizerSettings,
    adders: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<AppEnergyModel> {
    models_parallel(lib, settings, adders, engine, cache, model_for_adder)
}

/// Parallel §IV driver over **multipliers under test**
/// (see [`models_for_adders`]).
#[must_use]
pub fn models_for_multipliers(
    lib: &Library,
    settings: CharacterizerSettings,
    mults: &[OperatorConfig],
    engine: &Engine,
) -> Vec<AppEnergyModel> {
    models_for_multipliers_cached(lib, settings, mults, engine, &Cache::disabled())
}

/// [`models_for_multipliers`] backed by a content-addressed report cache
/// (see [`models_for_adders_cached`]).
#[must_use]
pub fn models_for_multipliers_cached(
    lib: &Library,
    settings: CharacterizerSettings,
    mults: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<AppEnergyModel> {
    models_parallel(lib, settings, mults, engine, cache, model_for_multiplier)
}

fn models_parallel(
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
    model: impl Fn(&mut Characterizer<'_>, &OperatorConfig) -> AppEnergyModel + Sync,
) -> Vec<AppEnergyModel> {
    // Each task characterizes two operators (the config and its sized
    // partner); config-level parallelism carries the sweep, and any
    // leftover workers (small config sets, as in the HEVC/K-means
    // tables) drop into the tasks' sharded loops. Determinism is
    // per-operator, so the split changes nothing in the output.
    let inner = crate::sweeps::inner_engine(engine, configs.len());
    engine.map_indexed(configs.len(), |i| {
        let mut chz = Characterizer::new(lib)
            .with_settings(settings)
            .with_engine(inner.clone())
            .with_cache(cache.clone());
        model(&mut chz, &configs[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CharacterizerSettings;
    use apx_cells::Library;
    use apx_operators::FaType;

    #[test]
    fn partner_multiplier_shrinks_with_fixed_point_sizing() {
        let sized = partner_multiplier(&OperatorConfig::AddTrunc { n: 16, q: 10 });
        assert_eq!(sized, OperatorConfig::MulTrunc { n: 10, q: 10 });
        let full = partner_multiplier(&OperatorConfig::Aca { n: 16, p: 12 });
        assert_eq!(full, OperatorConfig::MulTrunc { n: 16, q: 16 });
    }

    #[test]
    fn partner_adder_follows_multiplier_output() {
        assert_eq!(
            partner_adder(&OperatorConfig::MulTrunc { n: 16, q: 16 }),
            OperatorConfig::AddExact { n: 16 }
        );
        assert_eq!(
            partner_adder(&OperatorConfig::MulTrunc { n: 16, q: 4 }),
            OperatorConfig::AddExact { n: 4 }
        );
        assert_eq!(
            partner_adder(&OperatorConfig::Aam { n: 16 }),
            OperatorConfig::AddExact { n: 16 }
        );
    }

    #[test]
    fn sized_fixed_point_data_path_costs_less() {
        // The paper's core mechanism: at equal op counts, the truncated
        // adder's data-path (small partner multiplier) must be several
        // times cheaper than the approximate adder's (full multiplier).
        let lib = Library::fdsoi28();
        let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 200,
            exhaustive_up_to_bits: 12,
            power_vectors: 300,
            seed: 5,
        });
        let sized = model_for_adder(&mut chz, &OperatorConfig::AddTrunc { n: 16, q: 10 });
        let approx = model_for_adder(
            &mut chz,
            &OperatorConfig::RcaApx {
                n: 16,
                m: 6,
                fa_type: FaType::Three,
            },
        );
        let counts = OpCounts { adds: 14, muls: 16 }; // one HEVC 2-pass pixel
        let e_sized = sized.energy_pj(counts);
        let e_approx = approx.energy_pj(counts);
        assert!(
            e_approx > 2.0 * e_sized,
            "approx {e_approx} pJ should dwarf sized {e_sized} pJ"
        );
    }

    #[test]
    #[should_panic(expected = "adder expected")]
    fn wrong_class_is_rejected() {
        let _ = partner_multiplier(&OperatorConfig::Aam { n: 16 });
    }

    #[test]
    fn parallel_models_match_the_serial_loop() {
        let lib = Library::fdsoi28();
        let settings = CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 100,
            exhaustive_up_to_bits: 8,
            power_vectors: 50,
            seed: 21,
        };
        let adders = [
            OperatorConfig::AddTrunc { n: 16, q: 10 },
            OperatorConfig::EtaIv { n: 16, x: 4 },
        ];
        let mut serial = Characterizer::new(&lib)
            .with_settings(settings)
            .with_engine(Engine::single_threaded());
        let expected: Vec<_> = adders
            .iter()
            .map(|c| model_for_adder(&mut serial, c))
            .collect();
        for threads in [1, 4] {
            let models = models_for_adders(&lib, settings, &adders, &Engine::new(threads));
            assert_eq!(models, expected, "threads={threads}");
        }
    }
}
