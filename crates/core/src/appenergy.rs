//! Application-level energy model — eq. (1) of the paper with
//! *partner-operator sizing*, the mechanism behind the "hidden cost":
//!
//! `E_app = Σ PDP_add + Σ PDP_mul`
//!
//! When the adder under test is a carefully sized fixed-point operator
//! keeping `q` bits, every exact multiplier downstream shrinks to `q×q`
//! ("the exact multipliers used alongside the modified adders are
//! optimally sized according to the adder bit-width"). An approximate
//! adder keeps the full 16-bit interface, so its partner multiplier stays
//! full width — that overhead is what Tables III–VI expose.

use crate::characterizer::{Characterizer, CharacterizerSettings};
use apx_apps::{OperatorCtx, Workload, WorkloadRun};
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::Engine;
use apx_operators::{OpClass, OpCounts, OperatorConfig};
use serde::{Deserialize, Serialize};

/// Per-operation energies (PDP, in pJ) of an adder/multiplier pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppEnergyModel {
    /// Energy per addition in pJ.
    pub adder_pdp_pj: f64,
    /// Energy per multiplication in pJ.
    pub mult_pdp_pj: f64,
}

impl AppEnergyModel {
    /// Total energy of an operation mix, in pJ (eq. (1)).
    #[must_use]
    pub fn energy_pj(&self, counts: OpCounts) -> f64 {
        counts.adds as f64 * self.adder_pdp_pj + counts.muls as f64 * self.mult_pdp_pj
    }
}

/// The minimal exact multiplier that partners a given adder
/// configuration: sized to the adder's live output width for fixed-point
/// sizing, full width for approximate adders (their interface never
/// shrinks). The width is clamped into the multiplier family's valid
/// 2–24-bit range, so every adder the sweeps emit (including the 2–32-bit
/// width-scaling family) gets a buildable, printable partner.
///
/// # Panics
/// Panics if `adder` is not an adder configuration.
#[must_use]
pub fn partner_multiplier(adder: &OperatorConfig) -> OperatorConfig {
    assert_eq!(adder.op_class(), OpClass::Adder, "adder expected");
    let width = match *adder {
        OperatorConfig::AddTrunc { q, .. } | OperatorConfig::AddRound { q, .. } => q,
        OperatorConfig::AddSized { w, .. } => w,
        _ => adder.input_bits(),
    };
    let n = width.clamp(2, 24);
    OperatorConfig::MulTrunc { n, q: n }
}

/// The minimal exact adder that partners a given multiplier
/// configuration: sized to the multiplier's output width.
///
/// # Panics
/// Panics if `mult` is not a multiplier configuration.
#[must_use]
pub fn partner_adder(mult: &OperatorConfig) -> OperatorConfig {
    assert_eq!(mult.op_class(), OpClass::Multiplier, "multiplier expected");
    let width = match *mult {
        OperatorConfig::MulTrunc { q, .. } | OperatorConfig::MulRound { q, .. } => q.max(2),
        OperatorConfig::MulSized { w, .. } => 2 * w,
        _ => mult.input_bits(),
    };
    OperatorConfig::AddExact { n: width.min(32) }
}

/// Builds the energy model for an **adder under test**: the adder's own
/// PDP plus its sized partner multiplier's PDP (Tables III/V, Figs. 5/6).
pub fn model_for_adder(chz: &mut Characterizer<'_>, adder: &OperatorConfig) -> AppEnergyModel {
    let adder_pdp_pj = chz.characterize(adder).hw.pdp_pj;
    let partner = partner_multiplier(adder);
    let mult_pdp_pj = chz.characterize(&partner).hw.pdp_pj;
    AppEnergyModel {
        adder_pdp_pj,
        mult_pdp_pj,
    }
}

/// Builds the energy model for a **multiplier under test**: the
/// multiplier's own PDP plus its sized partner adder's PDP
/// (Tables IV/VI, Table II).
pub fn model_for_multiplier(chz: &mut Characterizer<'_>, mult: &OperatorConfig) -> AppEnergyModel {
    let mult_pdp_pj = chz.characterize(mult).hw.pdp_pj;
    let partner = partner_adder(mult);
    let adder_pdp_pj = chz.characterize(&partner).hw.pdp_pj;
    AppEnergyModel {
        adder_pdp_pj,
        mult_pdp_pj,
    }
}

/// Builds the energy model for any **operator under test**, dispatching
/// on its class: [`model_for_adder`] for adders, [`model_for_multiplier`]
/// for multipliers — the one entry point the workload sweep uses.
pub fn model_for(chz: &mut Characterizer<'_>, config: &OperatorConfig) -> AppEnergyModel {
    match config.op_class() {
        OpClass::Adder => model_for_adder(chz, config),
        OpClass::Multiplier => model_for_multiplier(chz, config),
    }
}

/// Parallel §IV driver over **adders under test**: one energy model per
/// configuration (operator + sized partner multiplier), computed across
/// configs on `engine` and returned in input order. Bit-identical to a
/// serial [`model_for_adder`] loop for any thread count.
#[must_use]
pub fn models_for_adders(
    lib: &Library,
    settings: CharacterizerSettings,
    adders: &[OperatorConfig],
    engine: &Engine,
) -> Vec<AppEnergyModel> {
    models_for_adders_cached(lib, settings, adders, engine, &Cache::default())
}

/// [`models_for_adders`] backed by a content-addressed report cache:
/// both characterizations of each task (operator and sized partner) are
/// served from the cache when already keyed. Partner operators recur
/// across configs (every approximate 16-bit adder shares the full-width
/// `MULt(16,16)` partner), so even a cold sweep hits after the first
/// task completes.
#[must_use]
pub fn models_for_adders_cached(
    lib: &Library,
    settings: CharacterizerSettings,
    adders: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<AppEnergyModel> {
    models_parallel(lib, settings, adders, engine, cache, model_for_adder)
}

/// Parallel §IV driver over **multipliers under test**
/// (see [`models_for_adders`]).
#[must_use]
pub fn models_for_multipliers(
    lib: &Library,
    settings: CharacterizerSettings,
    mults: &[OperatorConfig],
    engine: &Engine,
) -> Vec<AppEnergyModel> {
    models_for_multipliers_cached(lib, settings, mults, engine, &Cache::default())
}

/// [`models_for_multipliers`] backed by a content-addressed report cache
/// (see [`models_for_adders_cached`]).
#[must_use]
pub fn models_for_multipliers_cached(
    lib: &Library,
    settings: CharacterizerSettings,
    mults: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<AppEnergyModel> {
    models_parallel(lib, settings, mults, engine, cache, model_for_multiplier)
}

/// One cell of an application sweep: the operator configuration under
/// test, its partner-sized energy model (eq. (1)), and the scored
/// workload run. Serializable so whole cells are content-addressable —
/// see [`crate::cache::workload_cell_key`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCell {
    /// The configuration under test.
    pub config: OperatorConfig,
    /// Its application energy model (operator + sized partner).
    pub model: AppEnergyModel,
    /// The scored workload run with this configuration substituted in.
    pub run: WorkloadRun,
}

/// The single application-sweep driver behind every figure/table case
/// study and `apxperf app`: runs `workload` once per configuration —
/// adders fill the adder slot, multipliers the multiplier slot, the
/// partner operator is sized by the paper's rule — and characterizes
/// each (workload × config) cell in parallel on `engine`, returning
/// cells in input order.
///
/// Every cell is a pure function of `(workload fingerprint, seed,
/// library, settings, config)`: the workload generates its inputs from
/// `seed` alone, so the output is bit-identical for any thread count.
/// Each cell regenerates the seeded input and exact reference for
/// itself — a deliberate trade: cells stay stateless and independently
/// cacheable/parallelizable, and the regeneration cost is amortized by
/// config-level parallelism and by warm cells skipping the run
/// entirely.
#[must_use]
pub fn sweep_workload(
    workload: &dyn Workload,
    seed: u64,
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
) -> Vec<WorkloadCell> {
    sweep_workload_cached(
        workload,
        seed,
        lib,
        settings,
        configs,
        engine,
        &Cache::default(),
    )
}

/// [`sweep_workload`] backed by the content-addressed cache: a cell that
/// was already swept (same workload fingerprint, seed, settings, library
/// and config) costs one blob lookup instead of two characterizations
/// plus an application run — app sweeps warm up exactly like
/// characterization sweeps. On a miss the inner characterizations still
/// go through the report cache, so even a cold app sweep reuses operator
/// reports cached by earlier figure runs.
#[must_use]
pub fn sweep_workload_cached(
    workload: &dyn Workload,
    seed: u64,
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<WorkloadCell> {
    let inner = crate::sweeps::inner_engine(engine, configs.len());
    engine.map_indexed(configs.len(), |i| {
        let config = configs[i];
        let key = crate::cache::workload_cell_key(lib, &settings, workload, seed, &config);
        if let Some(cell) = cache.get::<WorkloadCell>(&key) {
            // collision guard: only serve a cell describing this config
            if cell.config == config {
                return cell;
            }
        }
        let mut chz = Characterizer::new(lib)
            .with_settings(settings)
            .with_engine(inner.clone())
            .with_cache(cache.clone());
        let model = model_for(&mut chz, &config);
        let mut ctx = OperatorCtx::for_config(&config);
        let run = workload.run(seed, &mut ctx);
        let cell = WorkloadCell { config, model, run };
        cache.put(&key, &cell);
        cell
    })
}

fn models_parallel(
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
    model: impl Fn(&mut Characterizer<'_>, &OperatorConfig) -> AppEnergyModel + Sync,
) -> Vec<AppEnergyModel> {
    // Each task characterizes two operators (the config and its sized
    // partner); config-level parallelism carries the sweep, and any
    // leftover workers (small config sets, as in the HEVC/K-means
    // tables) drop into the tasks' sharded loops. Determinism is
    // per-operator, so the split changes nothing in the output.
    let inner = crate::sweeps::inner_engine(engine, configs.len());
    engine.map_indexed(configs.len(), |i| {
        let mut chz = Characterizer::new(lib)
            .with_settings(settings)
            .with_engine(inner.clone())
            .with_cache(cache.clone());
        model(&mut chz, &configs[i])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CharacterizerSettings;
    use apx_cells::Library;
    use apx_operators::FaType;

    #[test]
    fn partner_multiplier_shrinks_with_fixed_point_sizing() {
        let sized = partner_multiplier(&OperatorConfig::AddTrunc { n: 16, q: 10 });
        assert_eq!(sized, OperatorConfig::MulTrunc { n: 10, q: 10 });
        let full = partner_multiplier(&OperatorConfig::Aca { n: 16, p: 12 });
        assert_eq!(full, OperatorConfig::MulTrunc { n: 16, q: 16 });
    }

    #[test]
    fn partner_adder_follows_multiplier_output() {
        assert_eq!(
            partner_adder(&OperatorConfig::MulTrunc { n: 16, q: 16 }),
            OperatorConfig::AddExact { n: 16 }
        );
        assert_eq!(
            partner_adder(&OperatorConfig::MulTrunc { n: 16, q: 4 }),
            OperatorConfig::AddExact { n: 4 }
        );
        assert_eq!(
            partner_adder(&OperatorConfig::Aam { n: 16 }),
            OperatorConfig::AddExact { n: 16 }
        );
    }

    #[test]
    fn sized_fixed_point_data_path_costs_less() {
        // The paper's core mechanism: at equal op counts, the truncated
        // adder's data-path (small partner multiplier) must be several
        // times cheaper than the approximate adder's (full multiplier).
        let lib = Library::fdsoi28();
        let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 200,
            exhaustive_up_to_bits: 12,
            power_vectors: 300,
            seed: 5,
        });
        let sized = model_for_adder(&mut chz, &OperatorConfig::AddTrunc { n: 16, q: 10 });
        let approx = model_for_adder(
            &mut chz,
            &OperatorConfig::RcaApx {
                n: 16,
                m: 6,
                fa_type: FaType::Three,
            },
        );
        let counts = OpCounts { adds: 14, muls: 16 }; // one HEVC 2-pass pixel
        let e_sized = sized.energy_pj(counts);
        let e_approx = approx.energy_pj(counts);
        assert!(
            e_approx > 2.0 * e_sized,
            "approx {e_approx} pJ should dwarf sized {e_sized} pJ"
        );
    }

    #[test]
    #[should_panic(expected = "adder expected")]
    fn wrong_class_is_rejected() {
        let _ = partner_multiplier(&OperatorConfig::Aam { n: 16 });
    }

    #[test]
    fn workload_sweep_matches_the_manual_loop_for_any_thread_count() {
        let lib = Library::fdsoi28();
        let settings = CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 100,
            exhaustive_up_to_bits: 8,
            power_vectors: 50,
            seed: 33,
        };
        let workload = apx_apps::fft::FftWorkload::default();
        let configs = [
            OperatorConfig::AddTrunc { n: 16, q: 10 },
            OperatorConfig::MulTrunc { n: 16, q: 16 },
        ];
        // the manual path: dispatch the model by class, substitute the
        // config into the right context slot, run, score
        let mut serial = Characterizer::new(&lib)
            .with_settings(settings)
            .with_engine(Engine::single_threaded());
        let expected: Vec<WorkloadCell> = configs
            .iter()
            .map(|config| {
                let model = model_for(&mut serial, config);
                let mut ctx = OperatorCtx::for_config(config);
                let run = workload.run(0xF17, &mut ctx);
                WorkloadCell {
                    config: *config,
                    model,
                    run,
                }
            })
            .collect();
        for threads in [1, 4] {
            let cells = sweep_workload(
                &workload,
                0xF17,
                &lib,
                settings,
                &configs,
                &Engine::new(threads),
            );
            assert_eq!(cells, expected, "threads={threads}");
        }
    }

    #[test]
    fn cached_workload_sweep_is_bit_identical_and_pure_hits_when_warm() {
        let dir = std::env::temp_dir().join(format!("apx_appsweep_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Cache::builder().dir(&dir).open();
        let lib = Library::fdsoi28();
        let settings = CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 100,
            exhaustive_up_to_bits: 8,
            power_vectors: 50,
            seed: 34,
        };
        let workload = apx_apps::fir::FirWorkload::default();
        // the exact adder scores +inf dB SNR: non-finite scores must
        // survive the cache blob bit-for-bit (QualityScore serializes
        // its IEEE-754 bits, not a JSON float)
        let configs = [
            OperatorConfig::AddTrunc { n: 16, q: 11 },
            OperatorConfig::EtaIv { n: 16, x: 4 },
            OperatorConfig::AddExact { n: 16 },
        ];
        let engine = Engine::new(2);
        let uncached = sweep_workload(&workload, 7, &lib, settings, &configs, &engine);
        let cold = sweep_workload_cached(&workload, 7, &lib, settings, &configs, &engine, &cache);
        let hits_before = cache.stats().hits;
        let warm = sweep_workload_cached(&workload, 7, &lib, settings, &configs, &engine, &cache);
        assert_eq!(uncached, cold, "cache must be transparent");
        assert_eq!(cold, warm, "hit must be bit-identical");
        assert_eq!(
            warm[2].run.score.value(),
            f64::INFINITY,
            "+inf score must round-trip the blob store"
        );
        assert_eq!(
            cache.stats().hits - hits_before,
            configs.len() as u64,
            "warm sweep must be pure cell hits"
        );
        // a different seed, and a different workload instance, both miss
        let reseeded =
            sweep_workload_cached(&workload, 8, &lib, settings, &configs, &engine, &cache);
        assert_ne!(
            cold, reseeded,
            "seed is part of the cell key and the inputs"
        );
        let other = apx_apps::sobel::SobelWorkload::new(16);
        let key_a = crate::cache::workload_cell_key(&lib, &settings, &workload, 7, &configs[0]);
        let key_b = crate::cache::workload_cell_key(&lib, &settings, &other, 7, &configs[0]);
        assert_ne!(key_a, key_b, "workload fingerprint must be keyed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_models_match_the_serial_loop() {
        let lib = Library::fdsoi28();
        let settings = CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 100,
            exhaustive_up_to_bits: 8,
            power_vectors: 50,
            seed: 21,
        };
        let adders = [
            OperatorConfig::AddTrunc { n: 16, q: 10 },
            OperatorConfig::EtaIv { n: 16, x: 4 },
        ];
        let mut serial = Characterizer::new(&lib)
            .with_settings(settings)
            .with_engine(Engine::single_threaded());
        let expected: Vec<_> = adders
            .iter()
            .map(|c| model_for_adder(&mut serial, c))
            .collect();
        for threads in [1, 4] {
            let models = models_for_adders(&lib, settings, &adders, &Engine::new(threads));
            assert_eq!(models, expected, "threads={threads}");
        }
    }
}
