//! Serving-grade query entry points — the report / family-sweep /
//! Pareto-overlay queries as pure `inputs -> rendered text` functions.
//!
//! The `apxperf` CLI and the `apx_serve` daemon are both thin clients of
//! this module: a subcommand prints the returned string to stdout, the
//! server sends the same string as an HTTP response body. Because both
//! go through the very same functions, a served response is
//! **byte-identical** to the corresponding CLI stdout by construction —
//! the property the serve e2e suite pins.
//!
//! [`QueryParams`] mirrors the shared CLI flags (`--samples`,
//! `--vectors`, `--seed`, `--size`, `--sets`, `--points`) with the same
//! defaults, and [`QueryParams::settings`] applies the repro preset
//! (2 000 verification vectors, exhaustive up to 16 operand bits) that
//! every CLI run uses.

use crate::appenergy::{self, WorkloadCell};
use crate::output::{family, fmt, render, Format};
use crate::pareto::{workload_pareto, ParetoEntry};
use crate::{cache as core_cache, sweeps, Characterizer, CharacterizerSettings, OperatorReport};
use apx_apps::{Workload, WorkloadParams};
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::Engine;
use apx_operators::OperatorConfig;

/// The master seed every run defaults to (the CLI's `--seed` default).
pub const DEFAULT_SEED: u64 = 0xDA7E_2017;

/// Verification vectors used by all CLI/server runs (the repro preset).
pub const VERIFY_SAMPLES: usize = 2_000;

/// Exhaustive-verification bound used by all CLI/server runs.
pub const EXHAUSTIVE_UP_TO_BITS: u32 = 16;

/// The shared query parameters: one struct mirroring the CLI flag
/// defaults, so the CLI and the server resolve identical inputs to
/// identical [`CharacterizerSettings`] (and therefore identical cache
/// keys and identical bytes out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryParams {
    /// Error-characterization samples per operator (`--samples`).
    pub samples: usize,
    /// Gate-level power-estimation vectors per operator (`--vectors`).
    pub vectors: usize,
    /// Master seed; `None` means "not explicitly set" — settings fall
    /// back to [`DEFAULT_SEED`] and workload runs fall back to the
    /// workload's own fixture seed, exactly like the CLI's `--seed`.
    pub seed: Option<u64>,
    /// Workload size where applicable (`--size`).
    pub size: usize,
    /// K-means data sets (`--sets`).
    pub sets: usize,
    /// K-means points per set (`--points`).
    pub points: usize,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            samples: 100_000,
            vectors: 1_500,
            seed: None,
            size: 128,
            sets: 5,
            points: 500,
        }
    }
}

impl QueryParams {
    /// The characterizer settings these parameters select (the repro
    /// preset the CLI has always used).
    #[must_use]
    pub fn settings(&self) -> CharacterizerSettings {
        CharacterizerSettings {
            error_samples: self.samples,
            verify_samples: VERIFY_SAMPLES,
            exhaustive_up_to_bits: EXHAUSTIVE_UP_TO_BITS,
            power_vectors: self.vectors,
            seed: self.seed.unwrap_or(DEFAULT_SEED),
        }
    }

    /// The workload-shaping parameters (`--size`/`--sets`/`--points`).
    #[must_use]
    pub fn workload_params(&self) -> WorkloadParams {
        WorkloadParams {
            size: self.size,
            sets: self.sets,
            points: self.points,
        }
    }
}

/// Resolves a workload name against the registry, builds the instance
/// from the shared parameters, and picks its legacy fixture seed unless
/// a seed was given explicitly — the common front half of every
/// workload-scoring query.
///
/// # Errors
/// An unknown name, or a constructor rejection (e.g. a size constraint),
/// as a user-facing message.
pub fn resolve_workload(
    params: &QueryParams,
    name: &str,
) -> Result<(Box<dyn Workload>, u64), String> {
    let entry = apx_apps::workload::find(name)
        .ok_or_else(|| format!("unknown workload `{name}` — see `apxperf list`"))?;
    let workload = (entry.build)(&params.workload_params())?;
    let seed = params.seed.unwrap_or_else(|| workload.default_seed());
    Ok((workload, seed))
}

/// One cached single-operator characterization: content-addressed lookup
/// ([`core_cache::report_cache_key`]) with the collision guard, falling
/// back to a full characterization plus write-back on a miss. Returns
/// the report and whether it was served from the cache — the signal the
/// server's `/stats` hit/miss counters are built on. Counter traffic on
/// the `cache` handle is identical to the CLI's historical
/// `Characterizer::with_cache` path.
#[must_use]
pub fn cached_report(
    lib: &Library,
    settings: CharacterizerSettings,
    config: &OperatorConfig,
    engine: &Engine,
    cache: &Cache,
) -> (OperatorReport, bool) {
    let key = core_cache::report_cache_key(lib, &settings, config);
    if let Some(report) = cache.get::<OperatorReport>(&key) {
        // collision guard: only serve a report describing this config
        if report.config == *config {
            return (report, true);
        }
    }
    let report = Characterizer::new(lib)
        .with_settings(settings)
        .with_engine(engine.clone())
        .characterize(config);
    cache.put(&key, &report);
    (report, false)
}

/// The `report <CONFIG>` query: parse the paper notation, characterize
/// (through the cache), and render the full fused report as pretty JSON
/// plus a trailing newline — exactly the bytes `apxperf report` prints.
/// The boolean is the [`cached_report`] hit flag.
///
/// # Errors
/// Invalid operator notation, or (never in practice) a serialization
/// failure.
pub fn report_text(
    lib: &Library,
    params: &QueryParams,
    spec: &str,
    engine: &Engine,
    cache: &Cache,
) -> Result<(String, bool), String> {
    let config: OperatorConfig = spec.parse().map_err(|e| format!("{e}"))?;
    let (report, hit) = cached_report(lib, params.settings(), &config, engine, cache);
    let json = report
        .to_json()
        .map_err(|e| format!("report serialization failed: {e}"))?;
    Ok((format!("{json}\n"), hit))
}

/// The uniform workload result table shared by `app`, `sweep --workload`
/// and the server's sweep jobs: the unified score with its metric kind,
/// the kind-free exact-relative degradation, and the eq. (1) energy
/// split.
#[must_use]
pub fn workload_table(format: Format, cells: &[WorkloadCell]) -> String {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                family(&cell.config).to_owned(),
                cell.run.score.metric().to_owned(),
                fmt(cell.run.score.value(), 4),
                fmt(cell.run.score.degradation(), 6),
                fmt(cell.model.adder_pdp_pj * 1e3, 3),
                fmt(cell.model.mult_pdp_pj * 1e3, 3),
                fmt(cell.model.energy_pj(cell.run.counts), 3),
            ]
        })
        .collect();
    render(
        format,
        &[
            "operator",
            "family",
            "metric",
            "score",
            "degradation",
            "E_add_fJ",
            "E_mul_fJ",
            "E_app_pJ",
        ],
        &rows,
    )
}

/// The `sweep` query: characterize one registered §IV family and render
/// the headline columns of every report; with `workload`, score the
/// named application workload over the same configurations instead
/// (including the `SWEEP …` header line). The returned string is exactly
/// the stdout of the corresponding `apxperf sweep` invocation.
///
/// # Errors
/// An unknown family or workload name, as a user-facing message.
#[allow(clippy::too_many_arguments)]
pub fn sweep_text(
    lib: &Library,
    params: &QueryParams,
    family_name: &str,
    workload_name: Option<&str>,
    format: Format,
    engine: &Engine,
    cache: &Cache,
) -> Result<String, String> {
    let Some(sweep_family) = sweeps::find_family(family_name) else {
        let names: Vec<&str> = sweeps::FAMILIES.iter().map(|f| f.name).collect();
        return Err(format!(
            "--family: `{family_name}` is not one of {}",
            names.join(", ")
        ));
    };
    let configs: Vec<OperatorConfig> = (sweep_family.configs)();
    if let Some(name) = workload_name {
        let (workload, seed) = resolve_workload(params, name)?;
        let cells = appenergy::sweep_workload_cached(
            workload.as_ref(),
            seed,
            lib,
            params.settings(),
            &configs,
            engine,
            cache,
        );
        let mut text = format!(
            "SWEEP {} over family `{}` ({} configs)\n",
            workload.fingerprint(),
            sweep_family.name,
            configs.len()
        );
        text.push_str(&workload_table(format, &cells));
        return Ok(text);
    }
    let reports = sweeps::characterize_all_cached(lib, params.settings(), &configs, engine, cache);
    // the headline columns of OperatorReport::to_csv_row, cell by cell
    // (not split from the CSV string — the operator name contains commas)
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                family(config).to_owned(),
                r.name.clone(),
                r.verified.to_string(),
                fmt(r.error.mse_db, 3),
                fmt(r.error.ber, 6),
                fmt(r.error.mae, 4),
                fmt(r.error.mean_error, 4),
                fmt(r.error.error_rate, 6),
                fmt(r.hw.area_um2, 2),
                fmt(r.hw.delay_ns, 4),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.pdp_pj, 6),
            ]
        })
        .collect();
    let mut headers = vec!["family"];
    let header_row = OperatorReport::csv_header();
    headers.extend(header_row.split(','));
    Ok(render(format, &headers, &rows))
}

/// Assembles the Pareto-overlay configuration list: the selected
/// approximate family (or everything under `all`) plus the full Sized
/// baseline, first occurrence winning on duplicates (the exact operators
/// belong to both sides).
fn overlay_configs(family_name: Option<&str>, all: bool) -> Result<Vec<OperatorConfig>, String> {
    if all && family_name.is_some() {
        return Err("--family and --all are mutually exclusive".to_owned());
    }
    let selected = if all {
        "all"
    } else {
        family_name.unwrap_or("points")
    };
    let sweep_family = sweeps::find_family(selected).ok_or_else(|| {
        format!("--family: `{selected}` is not a registered family — see `apxperf list`")
    })?;
    let mut configs = (sweep_family.configs)();
    configs.extend(sweeps::sized_baseline_16bit());
    let mut seen = Vec::with_capacity(configs.len());
    configs.retain(|config| {
        let fresh = !seen.contains(config);
        if fresh {
            seen.push(*config);
        }
        fresh
    });
    Ok(configs)
}

/// Renders the overlay table: one row per configuration with its role
/// (sized baseline vs approximation), quality/energy coordinates, front
/// membership and — for dominated rows — the dominating config's name.
fn render_overlay(format: Format, entries: &[ParetoEntry]) -> String {
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|entry| {
            let dominated_by = entry
                .verdict
                .dominated_by
                .map_or_else(|| "-".to_owned(), |i| entries[i].cell.config.to_string());
            vec![
                entry.cell.config.to_string(),
                family(&entry.cell.config).to_owned(),
                if entry.sized { "sized" } else { "approx" }.to_owned(),
                entry.cell.run.score.metric().to_owned(),
                fmt(entry.sample.quality, 4),
                fmt(entry.sample.energy, 3),
                if entry.verdict.on_front { "yes" } else { "no" }.to_owned(),
                dominated_by,
            ]
        })
        .collect();
    render(
        format,
        &[
            "operator",
            "family",
            "role",
            "metric",
            "score",
            "E_app_pJ",
            "front",
            "dominated_by",
        ],
        &rows,
    )
}

/// The `pareto` query: overlay the approximate families against the
/// sized-exact baseline on one quality–energy plot and report the
/// strict-dominance front, exactly as `apxperf pareto` prints it —
/// header line, overlay table, and the `front: …` summary counting the
/// paper's "hidden cost". `family_name` is the explicitly selected
/// family (`None` defaults to `points`), mutually exclusive with `all`.
///
/// # Errors
/// An unknown family or workload name, or `family` combined with `all`.
#[allow(clippy::too_many_arguments)]
pub fn pareto_text(
    lib: &Library,
    params: &QueryParams,
    workload_name: &str,
    family_name: Option<&str>,
    all: bool,
    format: Format,
    engine: &Engine,
    cache: &Cache,
) -> Result<String, String> {
    let configs = overlay_configs(family_name, all)?;
    let (workload, seed) = resolve_workload(params, workload_name)?;
    let entries = workload_pareto(
        workload.as_ref(),
        seed,
        lib,
        params.settings(),
        &configs,
        engine,
        cache,
    );
    let mut text = format!(
        "PARETO {} over {} + sized baseline ({} configs)\n",
        workload.fingerprint(),
        if all {
            "`all` families".to_owned()
        } else {
            format!("family `{}`", family_name.unwrap_or("points"))
        },
        entries.len()
    );
    text.push_str(&render_overlay(format, &entries));
    let front = entries.iter().filter(|e| e.verdict.on_front).count();
    let sized_dominated = entries
        .iter()
        .filter(|e| !e.sized && e.verdict.dominated_by.is_some_and(|i| entries[i].sized))
        .count();
    text.push_str(&format!(
        "front: {front} of {} configs; {sized_dominated} approximate configs dominated by the \
         sized baseline\n",
        entries.len()
    ));
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> QueryParams {
        QueryParams {
            samples: 400,
            vectors: 20,
            ..QueryParams::default()
        }
    }

    #[test]
    fn default_params_mirror_the_cli_defaults() {
        let params = QueryParams::default();
        assert_eq!(params.samples, 100_000);
        assert_eq!(params.vectors, 1_500);
        assert_eq!(params.seed, None);
        let settings = params.settings();
        assert_eq!(settings.seed, DEFAULT_SEED);
        assert_eq!(settings.verify_samples, VERIFY_SAMPLES);
        assert_eq!(settings.exhaustive_up_to_bits, EXHAUSTIVE_UP_TO_BITS);
    }

    #[test]
    fn report_text_is_deterministic_and_cache_transparent() {
        let lib = Library::fdsoi28();
        let engine = Engine::new(2);
        let params = small();
        let (cold, hit_cold) =
            report_text(&lib, &params, "ACA(8,2)", &engine, &Cache::default()).unwrap();
        assert!(!hit_cold);
        assert!(cold.ends_with('\n'));
        let (again, _) =
            report_text(&lib, &params, "ACA(8,2)", &engine, &Cache::default()).unwrap();
        assert_eq!(cold, again, "pure function of its inputs");
        let err = report_text(&lib, &params, "FROB(16)", &engine, &Cache::default()).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn cached_report_hits_on_the_second_lookup() {
        let dir = std::env::temp_dir().join(format!("apx_query_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Cache::builder().dir(&dir).open();
        let lib = Library::fdsoi28();
        let engine = Engine::new(2);
        let config: OperatorConfig = "ACA(8,2)".parse().unwrap();
        let (first, hit1) = cached_report(&lib, small().settings(), &config, &engine, &cache);
        let (second, hit2) = cached_report(&lib, small().settings(), &config, &engine, &cache);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(first.to_json().unwrap(), second.to_json().unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_names_are_user_facing_errors() {
        let lib = Library::fdsoi28();
        let engine = Engine::new(1);
        let params = small();
        let cache = Cache::default();
        let err =
            sweep_text(&lib, &params, "nope", None, Format::Tty, &engine, &cache).unwrap_err();
        assert!(err.contains("is not one of"), "{err}");
        let err = sweep_text(
            &lib,
            &params,
            "points",
            Some("nope"),
            Format::Tty,
            &engine,
            &cache,
        )
        .unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        let err = pareto_text(
            &lib,
            &params,
            "fir",
            Some("points"),
            true,
            Format::Tty,
            &engine,
            &cache,
        )
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = resolve_workload(&params, "nope").unwrap_err();
        assert!(err.contains("see `apxperf list`"), "{err}");
    }
}
