//! The §IV parameter sweeps ("all approximate operators … tested with all
//! possible combinations of parameters"), the parallel sweep driver, and
//! Pareto utilities.

use crate::characterizer::{Characterizer, CharacterizerSettings};
use crate::report::{OperatorReport, ParetoPoint};
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::Engine;
use apx_operators::{FaType, OperatorConfig, QuantMode};

pub use crate::report::ParetoPoint as Point;

/// Splits an engine's workers across `jobs` parallel tasks: when there
/// are at least as many jobs as workers, each task runs serially inside
/// (config-level parallelism saturates the pool); with fewer jobs the
/// leftover workers are pushed down into each task's sharded loops.
/// Either way the reports are bit-identical — this only balances load.
pub(crate) fn inner_engine(engine: &Engine, jobs: usize) -> Engine {
    let threads = engine.threads();
    if jobs == 0 || jobs >= threads {
        Engine::single_threaded()
    } else {
        Engine::new(threads.div_ceil(jobs))
    }
}

/// Characterizes every configuration in parallel across operator configs
/// (the §IV sweep driver): each config gets its own [`Characterizer`]
/// with the same settings, and the reports come back in input order.
///
/// The per-config work is seeded only by `settings.seed` and sharded by
/// fixed plans, so the output is bit-identical to a serial
/// `for config in configs { chz.characterize(config) }` loop for any
/// engine.
#[must_use]
pub fn characterize_all(
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
) -> Vec<OperatorReport> {
    characterize_all_cached(lib, settings, configs, engine, &Cache::default())
}

/// [`characterize_all`] backed by a content-addressed report cache:
/// every already-characterized configuration costs a blob lookup instead
/// of a full sweep, and fresh results are stored for the next run. The
/// returned reports are bit-identical with or without the cache (and for
/// any engine) — see [`crate::cache`].
#[must_use]
pub fn characterize_all_cached(
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<OperatorReport> {
    let inner = inner_engine(engine, configs.len());
    engine.map_indexed(configs.len(), |i| {
        Characterizer::new(lib)
            .with_settings(settings)
            .with_engine(inner.clone())
            .with_cache(cache.clone())
            .characterize(&configs[i])
    })
}

/// Re-exported Pareto-front extraction (see [`ParetoPoint`]).
#[must_use]
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    crate::report::pareto_front(points)
}

/// One named operator family — the registry mirror of the workload
/// registry in `apx_apps`, so `apxperf sweep --family`, `apxperf app`
/// and `apxperf list` are all driven by the same table.
pub struct SweepFamily {
    /// Family name as typed on the command line.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Produces the family's configurations, in sweep order.
    pub configs: fn() -> Vec<OperatorConfig>,
}

/// Every registered operator family, in `apxperf list` order.
pub const FAMILIES: &[SweepFamily] = &[
    SweepFamily {
        name: "adders",
        summary: "all 16-bit fixed-point and approximate adders of Figs. 3-6",
        configs: all_adders_16bit,
    },
    SweepFamily {
        name: "multipliers",
        summary: "the 16-bit fixed-width multiplier set of Table I",
        configs: multipliers_16bit,
    },
    SweepFamily {
        name: "widths",
        summary: "exact adders from 2 to 32 bits (scaling ablations)",
        configs: exact_adder_width_sweep,
    },
    SweepFamily {
        name: "points",
        summary: "the named adder operating points of Tables III/V",
        configs: table_adder_points,
    },
    SweepFamily {
        name: "sized",
        summary: "the 16-bit Sized data-sizing baseline (ADDst/ADDsr + MULst/MULsr)",
        configs: sized_baseline_16bit,
    },
    SweepFamily {
        name: "all",
        summary: "adders and multipliers combined",
        configs: || {
            let mut all = all_adders_16bit();
            all.extend(multipliers_16bit());
            all
        },
    },
];

/// Looks an operator family up by registry name.
#[must_use]
pub fn find_family(name: &str) -> Option<&'static SweepFamily> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// The 16-bit fixed-point adder family of Figs. 3/4: truncated and
/// rounded outputs from 15 down to 2 bits.
#[must_use]
pub fn fxp_adders_16bit() -> Vec<OperatorConfig> {
    let mut configs = vec![OperatorConfig::AddExact { n: 16 }];
    for q in 2..=15 {
        configs.push(OperatorConfig::AddTrunc { n: 16, q });
        configs.push(OperatorConfig::AddRound { n: 16, q });
    }
    configs
}

/// The 16-bit approximate adder family of Figs. 3/4: every parameter the
/// operators accept.
#[must_use]
pub fn approximate_adders_16bit() -> Vec<OperatorConfig> {
    let mut configs = Vec::new();
    for p in 1..=15 {
        configs.push(OperatorConfig::Aca { n: 16, p });
    }
    for x in [1, 2, 4, 8] {
        configs.push(OperatorConfig::EtaIv { n: 16, x });
        configs.push(OperatorConfig::EtaIi { n: 16, x });
    }
    for fa_type in [FaType::One, FaType::Two, FaType::Three] {
        for m in 1..=15 {
            configs.push(OperatorConfig::RcaApx { n: 16, m, fa_type });
        }
    }
    configs
}

/// Everything plotted in Figs. 3/4.
#[must_use]
pub fn all_adders_16bit() -> Vec<OperatorConfig> {
    let mut configs = fxp_adders_16bit();
    configs.extend(approximate_adders_16bit());
    configs
}

/// The Table I multiplier set: fixed-width truncated reference plus the
/// approximate multipliers (the sign-correct ABM and the paper-shape
/// uncorrected instance).
#[must_use]
pub fn multipliers_16bit() -> Vec<OperatorConfig> {
    vec![
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Aam { n: 16 },
        OperatorConfig::Abm { n: 16 },
        OperatorConfig::AbmUncorrected { n: 16 },
    ]
}

/// The 16-bit sized-exact **adder** baseline: the exact adder plus both
/// quantization modes at every useful effective width. These are the
/// data-sizing points the Pareto overlay holds approximate adders
/// against.
#[must_use]
pub fn sized_adders_16bit() -> Vec<OperatorConfig> {
    let mut configs = vec![OperatorConfig::AddExact { n: 16 }];
    for w in 4..=15 {
        configs.push(OperatorConfig::AddSized {
            n: 16,
            w,
            mode: QuantMode::Trunc,
        });
        configs.push(OperatorConfig::AddSized {
            n: 16,
            w,
            mode: QuantMode::Round,
        });
    }
    configs
}

/// The 16-bit sized-exact **multiplier** baseline: the exact multiplier
/// plus both quantization modes at every useful effective width. Unlike
/// `MULt`, every point here shrinks the whole partial-product array.
#[must_use]
pub fn sized_multipliers_16bit() -> Vec<OperatorConfig> {
    let mut configs = vec![OperatorConfig::MulExact { n: 16 }];
    for w in 4..=15 {
        configs.push(OperatorConfig::MulSized {
            n: 16,
            w,
            mode: QuantMode::Trunc,
        });
        configs.push(OperatorConfig::MulSized {
            n: 16,
            w,
            mode: QuantMode::Round,
        });
    }
    configs
}

/// The full 16-bit Sized baseline family (adders and multipliers).
#[must_use]
pub fn sized_baseline_16bit() -> Vec<OperatorConfig> {
    let mut configs = sized_adders_16bit();
    configs.extend(sized_multipliers_16bit());
    configs
}

/// The width sweep of §IV ("number of bits varying from 2 to 32") for
/// exact adders — used by scaling ablations.
#[must_use]
pub fn exact_adder_width_sweep() -> Vec<OperatorConfig> {
    (2..=32).map(|n| OperatorConfig::AddExact { n }).collect()
}

/// Truncated multiplier width sweep (partner-operator sizing grid for the
/// application energy model).
#[must_use]
pub fn mult_partner_sweep() -> Vec<OperatorConfig> {
    (2..=16)
        .map(|n| OperatorConfig::MulTrunc { n, q: n })
        .collect()
}

/// The named adder operating points of Tables III and V.
#[must_use]
pub fn table_adder_points() -> Vec<OperatorConfig> {
    vec![
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::AddTrunc { n: 16, q: 11 },
        OperatorConfig::AddTrunc { n: 16, q: 8 },
        OperatorConfig::Aca { n: 16, p: 12 },
        OperatorConfig::Aca { n: 16, p: 8 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::EtaIv { n: 16, x: 2 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Three,
        },
        OperatorConfig::RcaApx {
            n: 16,
            m: 10,
            fa_type: FaType::One,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_sweep_covers_both_families() {
        let all = all_adders_16bit();
        assert!(all.len() > 70, "got {}", all.len());
        let fxp = all.iter().filter(|c| c.is_fixed_point()).count();
        let approx = all.len() - fxp;
        assert!(fxp >= 29);
        assert!(approx >= 60);
    }

    #[test]
    fn every_sweep_config_builds() {
        for config in all_adders_16bit()
            .into_iter()
            .chain(multipliers_16bit())
            .chain(exact_adder_width_sweep())
            .chain(mult_partner_sweep())
            .chain(table_adder_points())
            .chain(sized_baseline_16bit())
        {
            let op = config.build();
            assert!(!op.name().is_empty());
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_characterization() {
        let lib = Library::fdsoi28();
        let settings = CharacterizerSettings {
            error_samples: 3_000,
            verify_samples: 200,
            exhaustive_up_to_bits: 8,
            power_vectors: 60,
            seed: 11,
        };
        let configs = [
            OperatorConfig::AddTrunc { n: 16, q: 10 },
            OperatorConfig::Aca { n: 16, p: 4 },
            OperatorConfig::EtaIi { n: 16, x: 4 },
        ];
        let mut serial = Characterizer::new(&lib)
            .with_settings(settings)
            .with_engine(Engine::single_threaded());
        let expected: Vec<_> = configs.iter().map(|c| serial.characterize(c)).collect();
        for threads in [1, 4] {
            let reports = characterize_all(&lib, settings, &configs, &Engine::new(threads));
            assert_eq!(reports, expected, "threads={threads}");
        }
    }

    #[test]
    fn family_registry_is_unique_findable_and_buildable() {
        for family in FAMILIES {
            assert!(find_family(family.name).is_some(), "{}", family.name);
            assert!(!family.summary.is_empty(), "{}", family.name);
            for config in (family.configs)() {
                assert!(config.validate().is_ok(), "{}: {config:?}", family.name);
            }
        }
        let mut names: Vec<&str> = FAMILIES.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FAMILIES.len(), "duplicate family name");
        assert!(find_family("frobnicators").is_none());
    }

    #[test]
    fn sweeps_have_no_duplicates() {
        let mut all = all_adders_16bit();
        let before = all.len();
        all.sort_by_key(|c| format!("{c:?}"));
        all.dedup();
        assert_eq!(all.len(), before);
    }
}
