//! Quality–energy Pareto analysis — the paper's headline comparison as
//! a library primitive.
//!
//! The central claim of the paper is that functional approximation must
//! be judged *against careful data sizing*: a bit-width-reduced exact
//! operator is often on (or beyond) the quality–energy Pareto front the
//! approximate operators trace out. This module computes that front for
//! any set of candidates:
//!
//! * [`ParetoSample`] — one candidate as a `(quality, energy)` pair
//!   (quality **higher** is better, energy **lower** is better), with
//!   adapters from characterization reports ([`report_sample`]) and
//!   workload sweep cells ([`cell_sample`]);
//! * [`analyze`] — strict-dominance verdicts for every candidate,
//!   engine-parallel over candidates and bit-identical for any thread
//!   count: who is on the front, and for each dropped candidate a
//!   dominating **front member** (preferring a flagged baseline member
//!   when one dominates);
//! * [`workload_pareto`] — the end-to-end driver behind
//!   `apxperf pareto`: sweep a workload over the configurations through
//!   the content-addressed app-sweep/report caches, then overlay the
//!   [`Sized`](apx_operators::SizedAdd) data-sizing baseline against the
//!   approximate families.
//!
//! # Dominance semantics
//!
//! `a` **strictly dominates** `b` iff `a` is at least as good on both
//! axes and strictly better on at least one:
//! `a.quality >= b.quality && a.energy <= b.energy` with one of the two
//! strict. Ties (identical points) dominate neither way, so duplicates
//! coexist on the front. Dominance is transitive, which guarantees every
//! dropped candidate is dominated by some *front member* — the invariant
//! the property tests pin.

use crate::appenergy::WorkloadCell;
use crate::characterizer::CharacterizerSettings;
use crate::report::OperatorReport;
use apx_apps::Workload;
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::Engine;
use apx_operators::OperatorConfig;
use serde::{Deserialize, Serialize};

/// One Pareto candidate: a quality coordinate (higher is better) and an
/// energy coordinate (lower is better).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoSample {
    /// Quality, higher is better (e.g. SNR dB, MSSIM, `-mse_db`).
    pub quality: f64,
    /// Energy/cost, lower is better (e.g. `E_app` pJ, PDP pJ).
    pub energy: f64,
}

/// Whether `a` strictly dominates `b` (see the [module docs](self)).
/// `NaN` on either axis never dominates and is never dominated.
#[must_use]
pub fn dominates(a: ParetoSample, b: ParetoSample) -> bool {
    a.quality >= b.quality && a.energy <= b.energy && (a.quality > b.quality || a.energy < b.energy)
}

/// The verdict on one candidate of an [`analyze`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParetoVerdict {
    /// Candidate is non-dominated (on the quality–energy front).
    pub on_front: bool,
    /// For a dominated candidate, the index of a dominating **front
    /// member**: the lowest-index preferred (baseline) front dominator
    /// when one exists, otherwise the lowest-index front dominator.
    pub dominated_by: Option<usize>,
}

/// Computes the strict-dominance verdict of every candidate,
/// engine-parallel over candidates.
///
/// `preferred[i]` flags baseline candidates (the Sized family in the
/// CLI overlay): a dominated candidate reports a preferred dominator
/// whenever one of the preferred front members dominates it. The result
/// is a pure function of the inputs — candidate order included, thread
/// count excluded — so verdicts are bit-identical for any engine.
///
/// # Panics
/// Panics unless `samples` and `preferred` have equal lengths.
#[must_use]
pub fn analyze(
    samples: &[ParetoSample],
    preferred: &[bool],
    engine: &Engine,
) -> Vec<ParetoVerdict> {
    assert_eq!(
        samples.len(),
        preferred.len(),
        "one preference flag per sample"
    );
    // pass 1: front membership (each candidate scans all others)
    let on_front: Vec<bool> = engine.map_indexed(samples.len(), |i| {
        samples
            .iter()
            .enumerate()
            .all(|(j, &other)| j == i || !dominates(other, samples[i]))
    });
    // pass 2: pick a dominating front member for every dropped candidate
    engine.map_indexed(samples.len(), |i| {
        if on_front[i] {
            return ParetoVerdict {
                on_front: true,
                dominated_by: None,
            };
        }
        let front_dominator = |want_preferred: bool| {
            (0..samples.len()).find(|&j| {
                on_front[j]
                    && (preferred[j] || !want_preferred)
                    && dominates(samples[j], samples[i])
            })
        };
        ParetoVerdict {
            on_front: false,
            dominated_by: front_dominator(true).or_else(|| front_dominator(false)),
        }
    })
}

/// Adapter: one characterized operator as a Pareto candidate — accuracy
/// (`-mse_db`, so exact operators sit at `+inf`) against energy per
/// operation (PDP in pJ). The standalone-operator view of Figs. 3/4.
#[must_use]
pub fn report_sample(report: &OperatorReport) -> ParetoSample {
    ParetoSample {
        quality: -report.error.mse_db,
        energy: report.hw.pdp_pj,
    }
}

/// Adapter: one workload sweep cell as a Pareto candidate — the unified
/// workload quality score against the eq. (1) application energy of the
/// run's operation mix. The application view of Figs. 5/6.
#[must_use]
pub fn cell_sample(cell: &WorkloadCell) -> ParetoSample {
    ParetoSample {
        quality: cell.run.score.value(),
        energy: cell.model.energy_pj(cell.run.counts),
    }
}

/// One row of a workload Pareto overlay: the swept cell, its coordinates,
/// whether it belongs to the sized fixed-point baseline, and its verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoEntry {
    /// The swept (workload × config) cell.
    pub cell: WorkloadCell,
    /// The quality/energy coordinates ([`cell_sample`]).
    pub sample: ParetoSample,
    /// Whether the configuration is a carefully-sized fixed-point
    /// operator (the baseline side of the overlay).
    pub sized: bool,
    /// Front membership and dominator.
    pub verdict: ParetoVerdict,
}

/// The end-to-end workload Pareto overlay: sweeps `workload` over
/// `configs` through the content-addressed report/app-sweep caches
/// ([`crate::appenergy::sweep_workload_cached`]), then computes
/// strict-dominance verdicts with the sized fixed-point configurations
/// as the preferred baseline. Entries come back in input-config order;
/// the whole result is bit-identical for any thread count, and a warm
/// cache turns the sweep into pure cell lookups.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn workload_pareto(
    workload: &dyn Workload,
    seed: u64,
    lib: &Library,
    settings: CharacterizerSettings,
    configs: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Vec<ParetoEntry> {
    let cells = crate::appenergy::sweep_workload_cached(
        workload, seed, lib, settings, configs, engine, cache,
    );
    let samples: Vec<ParetoSample> = cells.iter().map(cell_sample).collect();
    let preferred: Vec<bool> = cells.iter().map(|c| c.config.is_fixed_point()).collect();
    let verdicts = analyze(&samples, &preferred, engine);
    cells
        .into_iter()
        .zip(samples)
        .zip(preferred)
        .zip(verdicts)
        .map(|(((cell, sample), sized), verdict)| ParetoEntry {
            cell,
            sample,
            sized,
            verdict,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(quality: f64, energy: f64) -> ParetoSample {
        ParetoSample { quality, energy }
    }

    fn verdicts(points: &[(f64, f64)], preferred: &[bool]) -> Vec<ParetoVerdict> {
        let samples: Vec<ParetoSample> = points.iter().map(|&(q, e)| sample(q, e)).collect();
        analyze(&samples, preferred, &Engine::single_threaded())
    }

    #[test]
    fn dominance_is_strict() {
        let a = sample(2.0, 1.0);
        assert!(dominates(a, sample(1.0, 2.0)));
        assert!(dominates(a, sample(2.0, 2.0)));
        assert!(dominates(a, sample(1.0, 1.0)));
        assert!(!dominates(a, a), "identical points never dominate");
        assert!(!dominates(a, sample(3.0, 0.5)));
        // +inf quality dominates everything cheaper-or-equal
        assert!(dominates(sample(f64::INFINITY, 1.0), a));
        // NaN neither dominates nor is dominated
        let nan = sample(f64::NAN, 1.0);
        assert!(!dominates(nan, a));
        assert!(!dominates(a, nan));
    }

    #[test]
    fn front_and_dominators_are_consistent() {
        // b(2,2) and c(3,4) are mutually non-dominated (c buys quality
        // with energy): both on the front. a(1,5), d(0.5,9) and e(1.5,6)
        // are all strictly dominated by b.
        let v = verdicts(
            &[(1.0, 5.0), (2.0, 2.0), (3.0, 4.0), (0.5, 9.0), (1.5, 6.0)],
            &[false; 5],
        );
        assert!(!v[0].on_front);
        assert_eq!(v[0].dominated_by, Some(1));
        assert!(v[1].on_front);
        assert!(v[2].on_front, "top quality is never dominated");
        assert!(!v[3].on_front);
        assert_eq!(v[3].dominated_by, Some(1), "lowest-index front dominator");
        assert!(!v[4].on_front);
        assert_eq!(v[4].dominated_by, Some(1));
    }

    #[test]
    fn preferred_front_dominator_wins() {
        // both 0 and 1 dominate 2; only 1 is a preferred baseline member
        let v = verdicts(&[(5.0, 1.0), (4.0, 0.5), (3.0, 2.0)], &[false, true, false]);
        assert!(v[0].on_front && v[1].on_front);
        assert_eq!(
            v[2].dominated_by,
            Some(1),
            "preferred dominator beats the lower-index one"
        );
    }

    #[test]
    fn duplicates_share_the_front() {
        let v = verdicts(&[(1.0, 1.0), (1.0, 1.0)], &[false, false]);
        assert!(v[0].on_front && v[1].on_front, "ties dominate neither way");
    }

    #[test]
    fn verdicts_are_thread_count_invariant() {
        let points: Vec<ParetoSample> = (0..97)
            .map(|i| {
                let x = f64::from(i);
                sample((x * 37.0) % 11.0, (x * 53.0) % 13.0)
            })
            .collect();
        let preferred: Vec<bool> = (0..97).map(|i| i % 3 == 0).collect();
        let serial = analyze(&points, &preferred, &Engine::single_threaded());
        for threads in [2, 4, 8] {
            assert_eq!(
                analyze(&points, &preferred, &Engine::new(threads)),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn report_and_cell_samples_orient_the_axes() {
        // directly pin the orientation contract: better operator ==
        // higher quality, lower energy
        let better = sample(10.0, 1.0);
        let worse = sample(5.0, 2.0);
        assert!(dominates(better, worse));
    }
}
