//! APXPERF-RS core — the design-exploration framework of the paper
//! (Fig. 2): given an operator description, produce **both** a functional
//! error characterization and a hardware characterization under identical
//! operating conditions, after cross-verifying the two models of the
//! operator against each other.
//!
//! The pipeline mirrors the paper's block diagram:
//!
//! ```text
//!  OperatorConfig ──► netlist ──► RTL "synthesis" (structural) ─► STA / area
//!        │               │                │
//!        │               └── gate-level event sim ──► power estimation
//!        │
//!        ├──► functional model ──► error-metric extraction (random inputs)
//!        │
//!        └──► Verification: netlist ≡ functional model (exhaustive/random)
//!                     │
//!                     ▼
//!                Data fusion ──► OperatorReport (JSON/CSV)
//! ```
//!
//! On top of the per-operator flow, [`sweeps`] enumerates the paper's §IV
//! parameter grids (addressable by name through [`sweeps::FAMILIES`]) and
//! [`appenergy`] implements the application-level energy model of eq. (1),
//! including the *partner-operator sizing* that produces the paper's
//! headline result (sized fixed-point operators shrink the whole
//! data-path; approximate operators don't). The application case studies
//! themselves are `apx_apps` [`Workload`](apx_apps::Workload)s;
//! [`appenergy::sweep_workload`] runs any of them over any configuration
//! list — engine-parallel across (workload × config) cells and cacheable
//! per cell ([`cache::workload_cell_key`]). On top of the sweeps,
//! [`pareto`] computes strict-dominance quality–energy fronts, overlaying
//! the `Sized` data-sizing baseline against the approximate families —
//! the paper's headline comparison ([`pareto::workload_pareto`]). And
//! [`tune`] searches *heterogeneous* per-call-site assignments: the
//! minimum-energy [`SiteMap`](apx_operators::SiteMap) meeting a parsed
//! quality budget, seeded at the best uniform candidate
//! ([`tune::tune`]).
//!
//! Every sampling loop is sharded and runs on an [`Engine`]
//! (`APXPERF_THREADS`); per-shard RNG streams are derived from the master
//! seed and partials merge in shard order, so reports are bit-identical
//! for any thread count. [`sweeps::characterize_all`] and
//! [`appenergy::models_for_adders`]/[`appenergy::models_for_multipliers`]
//! additionally parallelize across operator configurations.
//!
//! Because reports are pure functions of their inputs, they are also
//! **cacheable**: attach an `apx_cache` store with
//! [`Characterizer::with_cache`] (or the `_cached` sweep drivers) and an
//! already-characterized configuration costs a content-addressed blob
//! lookup instead of a sweep — see the [`cache`] module for the key
//! ingredients and invalidation rules.
//!
//! # Example
//!
//! ```
//! use apx_core::{Characterizer, CharacterizerSettings};
//! use apx_cells::Library;
//! use apx_operators::OperatorConfig;
//!
//! let lib = Library::fdsoi28();
//! let mut chz = Characterizer::new(&lib).with_settings(CharacterizerSettings {
//!     error_samples: 20_000,
//!     ..CharacterizerSettings::default()
//! });
//! let report = chz.characterize(&OperatorConfig::Aca { n: 8, p: 2 });
//! assert!(report.verified);
//! assert!(report.error.error_rate > 0.0); // approximate
//! assert!(report.hw.delay_ns > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appenergy;
pub mod cache;
mod characterizer;
pub mod output;
pub mod pareto;
pub mod query;
mod report;
pub mod sweeps;
pub mod tune;

pub use apx_cache::Cache;
pub use apx_engine::Engine;
pub use characterizer::{Characterizer, CharacterizerSettings};
pub use report::{ErrorSummary, OperatorReport, ParetoPoint};
