//! Table rendering shared by every result consumer — the `apxperf` CLI
//! and the `apx_serve` daemon render through the same code, so a served
//! response is byte-identical to the corresponding CLI stdout by
//! construction: aligned TTY tables, CSV and JSON from one
//! (headers, rows) representation, plus the small formatting helpers the
//! old per-binary copies used to duplicate.

use apx_operators::OperatorConfig;

/// Table-output format selected by `--format` (or the `format` field of
/// a server request body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Aligned human-readable table (the CLI default).
    #[default]
    Tty,
    /// One JSON array of row objects.
    Json,
    /// Comma-separated values with a header row.
    Csv,
}

impl Format {
    /// Parses a `--format` value. The error text is shared by the CLI
    /// parser and the server's request validation.
    ///
    /// # Errors
    /// When `value` is not `json`, `csv` or `tty`.
    pub fn parse(value: &str) -> Result<Format, String> {
        match value {
            "tty" => Ok(Format::Tty),
            "json" => Ok(Format::Json),
            "csv" => Ok(Format::Csv),
            other => Err(format!("--format: `{other}` is not json, csv or tty")),
        }
    }
}

/// Formats a float compactly for table cells (`-inf`/`inf` spelled out).
#[must_use]
pub fn fmt(v: f64, decimals: usize) -> String {
    if v == f64::NEG_INFINITY {
        "-inf".to_owned()
    } else if v == f64::INFINITY {
        "inf".to_owned()
    } else {
        format!("{v:.decimals$}")
    }
}

/// Family tag of an operator configuration — matches the legend of
/// Figs. 3–6.
#[must_use]
pub fn family(config: &OperatorConfig) -> &'static str {
    match config {
        OperatorConfig::AddExact { .. } => "FxP-exact",
        OperatorConfig::AddTrunc { .. } => "FxP-trunc",
        OperatorConfig::AddRound { .. } => "FxP-round",
        OperatorConfig::Aca { .. } => "ACA",
        OperatorConfig::EtaIv { .. } => "ETAIV",
        OperatorConfig::EtaIi { .. } => "ETAII",
        OperatorConfig::RcaApx { fa_type, .. } => match fa_type {
            apx_operators::FaType::One => "RCAApx-1",
            apx_operators::FaType::Two => "RCAApx-2",
            apx_operators::FaType::Three => "RCAApx-3",
        },
        OperatorConfig::AddSized { .. } => "FxP-sized",
        OperatorConfig::MulSized { .. } => "MUL-sized",
        OperatorConfig::MulExact { .. } | OperatorConfig::MulBooth { .. } => "MUL-exact",
        OperatorConfig::MulTrunc { .. } => "MULt",
        OperatorConfig::MulRound { .. } => "MULr",
        OperatorConfig::Aam { .. } => "AAM",
        OperatorConfig::Abm { .. } => "ABM",
        OperatorConfig::AbmUncorrected { .. } => "ABMu",
    }
}

/// Renders one result table in the selected format:
///
/// * [`Format::Tty`] — right-aligned columns under a dashed header;
/// * [`Format::Csv`] — a header row plus comma-joined rows (cells
///   containing commas or quotes are quoted);
/// * [`Format::Json`] — an array of `{header: cell}` objects.
#[must_use]
pub fn render(format: Format, headers: &[&str], rows: &[Vec<String>]) -> String {
    match format {
        Format::Tty => render_tty(headers, rows),
        Format::Csv => render_csv(headers, rows),
        Format::Json => render_json(headers, rows),
    }
}

fn render_tty(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        padded.join("  ")
    };
    let mut out = String::new();
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    out.push_str(&line(&header_cells));
    out.push('\n');
    let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&line(&dashes));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

fn csv_cell(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| csv_cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| csv_cell(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

fn render_json(headers: &[&str], rows: &[Vec<String>]) -> String {
    // build a Vec of (header -> cell) maps through the serde value model
    // so escaping stays in one place (the vendored serde_json writer)
    let objects: Vec<Vec<(String, String)>> = rows
        .iter()
        .map(|row| {
            headers
                .iter()
                .zip(row)
                .map(|(h, c)| ((*h).to_owned(), c.clone()))
                .collect()
        })
        .collect();
    let value = serde::Value::Array(
        objects
            .into_iter()
            .map(|fields| {
                serde::Value::Object(
                    fields
                        .into_iter()
                        .map(|(k, v)| (k, serde::Value::String(v)))
                        .collect(),
                )
            })
            .collect(),
    );
    let mut text = serde_json::to_string_pretty(&value).expect("JSON rendering is infallible");
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<&'static str>, Vec<Vec<String>>) {
        (
            vec!["name", "x"],
            vec![
                vec!["a,b".to_owned(), "1".to_owned()],
                vec!["c".to_owned(), "2".to_owned()],
            ],
        )
    }

    #[test]
    fn tty_aligns_columns() {
        let (headers, rows) = sample();
        let text = render(Format::Tty, &headers, &rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
        // right-aligned: every line has the same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn csv_quotes_cells_with_commas() {
        let (headers, rows) = sample();
        let text = render(Format::Csv, &headers, &rows);
        assert_eq!(text.lines().next(), Some("name,x"));
        assert!(text.contains("\"a,b\",1"));
        assert!(text.contains("c,2"));
    }

    #[test]
    fn json_is_an_array_of_objects() {
        let (headers, rows) = sample();
        let text = render(Format::Json, &headers, &rows);
        let parsed: Vec<Vec<(String, String)>> = {
            // reuse the vendored parser through the Value model
            let value: serde::Value = serde_json::from_str(&text).unwrap();
            match value {
                serde::Value::Array(items) => items
                    .into_iter()
                    .map(|item| match item {
                        serde::Value::Object(fields) => fields
                            .into_iter()
                            .map(|(k, v)| (k, v.as_str().unwrap().to_owned()))
                            .collect(),
                        other => panic!("expected object, got {other:?}"),
                    })
                    .collect(),
                other => panic!("expected array, got {other:?}"),
            }
        };
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0][0], ("name".to_owned(), "a,b".to_owned()));
    }

    #[test]
    fn fmt_handles_infinities() {
        assert_eq!(fmt(f64::INFINITY, 2), "inf");
        assert_eq!(fmt(f64::NEG_INFINITY, 2), "-inf");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }

    #[test]
    fn format_parse_matches_the_cli_contract() {
        assert_eq!(Format::parse("tty"), Ok(Format::Tty));
        assert_eq!(Format::parse("json"), Ok(Format::Json));
        assert_eq!(Format::parse("csv"), Ok(Format::Csv));
        let err = Format::parse("xml").unwrap_err();
        assert!(err.contains("json, csv or tty"), "{err}");
    }

    #[test]
    fn family_tags_cover_the_sweeps() {
        for config in crate::sweeps::all_adders_16bit()
            .into_iter()
            .chain(crate::sweeps::multipliers_16bit())
        {
            assert!(!family(&config).is_empty());
        }
    }
}
