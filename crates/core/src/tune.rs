//! Budget-constrained heterogeneous operator assignment — the `apxperf
//! tune` search.
//!
//! The uniform application sweeps ([`crate::appenergy`]) substitute one
//! operator configuration into *every* arithmetic site of a workload.
//! This module relaxes that: each declared call-site
//! ([`Workload::sites`]) gets its own configuration, routed through a
//! [`HeteroCtx`], and a greedy per-site descent searches for the
//! minimum-energy assignment that still meets a parsed
//! [`QualityBudget`] (`>=30dB`, `<=1dB`, `>=95%`).
//!
//! The search is seeded at the best *uniform* candidate meeting the
//! budget and only ever accepts strictly-lower-energy feasible moves, so
//! the returned assignment's modeled energy is ≤ the best uniform
//! configuration by construction. Every candidate cell is a pure
//! function of `(workload fingerprint, seed, library, settings,
//! assignment)` — evaluated engine-parallel, bit-identical for any
//! thread count, and content-addressed under
//! [`crate::cache::hetero_cell_key`] so a warm rerun of the same search
//! is pure cache hits.

use crate::appenergy::{model_for, AppEnergyModel};
use crate::characterizer::{Characterizer, CharacterizerSettings};
use apx_apps::{ArithContext, Workload, WorkloadRun};
use apx_cache::Cache;
use apx_cells::Library;
use apx_engine::Engine;
use apx_metrics::{QualityBudget, QualityScore};
use apx_operators::{HeteroCtx, OperatorConfig, SiteCounts, SiteMap};
use serde::{Deserialize, Serialize};

/// The configuration an unassigned site is priced at: sites the
/// assignment leaves exact still burn exact-adder energy, they are not
/// free.
const EXACT_FALLBACK: OperatorConfig = OperatorConfig::AddExact { n: 16 };

/// One evaluated heterogeneous cell: a per-site assignment, the scored
/// workload run under it, the per-site operation ledger, and the
/// per-site-priced energy. Serializable so whole cells are
/// content-addressable — see [`crate::cache::hetero_cell_key`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroCell {
    /// The per-site assignment under test.
    pub assignment: SiteMap,
    /// The scored workload run with the assignment substituted in.
    pub run: WorkloadRun,
    /// Operations executed at each site over the run.
    pub site_counts: SiteCounts,
    /// Modeled energy in pJ: each site's traffic priced by its own
    /// configuration's partner-sized model (eq. (1), per site).
    pub energy_pj: f64,
}

/// The best uniform candidate meeting the budget — the baseline the
/// heterogeneous assignment is compared against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformBaseline {
    /// The uniform configuration.
    pub config: OperatorConfig,
    /// Its application quality score.
    pub score: QualityScore,
    /// Its per-site-priced energy in pJ (same pricing rule as the
    /// heterogeneous cells, so the comparison is apples-to-apples).
    pub energy_pj: f64,
}

/// Search statistics of one `tune` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuneStats {
    /// Declared call-sites of the workload.
    pub sites: usize,
    /// Candidate configurations after dedup.
    pub candidates: usize,
    /// Uniform candidates meeting the budget.
    pub feasible_uniform: usize,
    /// Heterogeneous cells evaluated (uniform seeds + every probed move).
    pub cells_evaluated: usize,
    /// Greedy descent rounds, including the final no-improvement round.
    pub rounds: usize,
    /// Single-site moves accepted.
    pub moves_accepted: usize,
}

/// The result of a `tune` search: the winning per-site assignment, its
/// quality and energy, the best uniform baseline, and search statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// Workload name (registry key).
    pub workload: String,
    /// The budget, in its display form (`>=30dB`).
    pub budget: String,
    /// The winning per-site assignment, in site-declaration order.
    pub assignment: SiteMap,
    /// Application quality under the winning assignment.
    pub score: QualityScore,
    /// Modeled energy of the winning assignment in pJ.
    pub energy_pj: f64,
    /// Per-site operation counts of the winning run.
    pub site_counts: SiteCounts,
    /// The best uniform candidate meeting the budget, if any exists.
    pub best_uniform: Option<UniformBaseline>,
    /// Search statistics.
    pub stats: TuneStats,
}

/// Prices a per-site ledger: each site's adds and muls cost its own
/// configuration's partner-sized PDPs. Sites outside the assignment are
/// exact and priced at the exact 16-bit adder's model. Summation runs in
/// ledger order, so the total is bit-identical for any thread count.
fn price_sites(
    site_counts: &SiteCounts,
    assignment: &SiteMap,
    model_of: &mut impl FnMut(&OperatorConfig) -> AppEnergyModel,
) -> f64 {
    let mut total = 0.0;
    for (site, counts) in site_counts.iter() {
        let config = assignment.get(site).copied().unwrap_or(EXACT_FALLBACK);
        total += model_of(&config).energy_pj(counts);
    }
    total
}

/// Evaluates one heterogeneous cell, through the cache when warm: run
/// the workload under a [`HeteroCtx`] built from `assignment`, then
/// price each site's traffic by its own configuration's model. Inner
/// characterizations go through the report cache, so distinct
/// assignments sharing configurations share the operator models.
fn evaluate_cell(
    workload: &dyn Workload,
    seed: u64,
    lib: &Library,
    settings: CharacterizerSettings,
    assignment: &SiteMap,
    inner: &Engine,
    cache: &Cache,
) -> HeteroCell {
    let key = crate::cache::hetero_cell_key(lib, &settings, workload, seed, assignment);
    if let Some(cell) = cache.get::<HeteroCell>(&key) {
        // collision guard: only serve a cell describing this assignment
        if cell.assignment == *assignment {
            return cell;
        }
    }
    let mut ctx = HeteroCtx::new(assignment);
    let run = workload.run(seed, &mut ctx);
    let site_counts = ctx.site_counts();
    let mut chz = Characterizer::new(lib)
        .with_settings(settings)
        .with_engine(inner.clone())
        .with_cache(cache.clone());
    let energy_pj = price_sites(&site_counts, assignment, &mut |config| {
        model_for(&mut chz, config)
    });
    let cell = HeteroCell {
        assignment: assignment.clone(),
        run,
        site_counts,
        energy_pj,
    };
    cache.put(&key, &cell);
    cell
}

/// Evaluates a batch of assignments engine-parallel, in input order.
fn evaluate_all(
    workload: &dyn Workload,
    seed: u64,
    lib: &Library,
    settings: CharacterizerSettings,
    assignments: &[SiteMap],
    engine: &Engine,
    cache: &Cache,
) -> Vec<HeteroCell> {
    let inner = crate::sweeps::inner_engine(engine, assignments.len());
    engine.map_indexed(assignments.len(), |i| {
        evaluate_cell(
            workload,
            seed,
            lib,
            settings,
            &assignments[i],
            &inner,
            cache,
        )
    })
}

/// Greedy budget-constrained search for the minimum-energy per-site
/// assignment.
///
/// 1. Every candidate configuration is evaluated as a *uniform*
///    assignment (all sites get it), engine-parallel. The cheapest
///    feasible uniform seeds the descent — so the result can never cost
///    more than the best uniform configuration meeting the budget.
/// 2. If no candidate is feasible, the descent starts from the
///    all-exact assignment (which has zero loss and meets every budget
///    by construction).
/// 3. Each round probes every single-site move `(site, config)` off the
///    current assignment, engine-parallel, and accepts the feasible
///    move with the strictly lowest energy; ties break on probe order
///    (site-declaration order, then candidate order). The search stops
///    at the first round with no improving feasible move.
///
/// Deterministic for any thread count: cells are bit-identical under
/// the engine contract and the accept rule is a fixed-order scan.
///
/// # Errors
/// Returns a user-facing message when `candidates` is empty, when the
/// workload declares no sites, or when the budget's unit does not match
/// the workload's quality metric (e.g. a dB bound on a success-rate
/// workload).
#[allow(clippy::too_many_arguments)]
pub fn tune(
    workload: &dyn Workload,
    seed: u64,
    lib: &Library,
    settings: CharacterizerSettings,
    budget: QualityBudget,
    candidates: &[OperatorConfig],
    engine: &Engine,
    cache: &Cache,
) -> Result<TuneOutcome, String> {
    let sites = workload.sites();
    if sites.is_empty() {
        return Err(format!(
            "workload `{}` declares no call-sites to tune",
            workload.name()
        ));
    }
    let mut configs: Vec<OperatorConfig> = Vec::new();
    for config in candidates {
        if !configs.contains(config) {
            configs.push(*config);
        }
    }
    if configs.is_empty() {
        return Err("no candidate configurations to assign".to_owned());
    }

    let mut stats = TuneStats {
        sites: sites.len(),
        candidates: configs.len(),
        feasible_uniform: 0,
        cells_evaluated: 0,
        rounds: 0,
        moves_accepted: 0,
    };

    // 1. uniform seeds
    let uniform_maps: Vec<SiteMap> = configs
        .iter()
        .map(|config| SiteMap::uniform(sites, *config))
        .collect();
    let uniform_cells = evaluate_all(workload, seed, lib, settings, &uniform_maps, engine, cache);
    stats.cells_evaluated += uniform_cells.len();

    let mut best_uniform: Option<(usize, HeteroCell)> = None;
    for (i, cell) in uniform_cells.iter().enumerate() {
        if !budget.admits(&cell.run.score)? {
            continue;
        }
        stats.feasible_uniform += 1;
        let better = match &best_uniform {
            None => true,
            Some((_, best)) => cell.energy_pj < best.energy_pj,
        };
        if better {
            best_uniform = Some((i, cell.clone()));
        }
    }

    let baseline = best_uniform.as_ref().map(|(i, cell)| UniformBaseline {
        config: configs[*i],
        score: cell.run.score,
        energy_pj: cell.energy_pj,
    });

    // 2. descent start
    let mut current = match best_uniform {
        Some((_, cell)) => cell,
        None => {
            let exact = SiteMap::uniform(sites, EXACT_FALLBACK);
            let cells = evaluate_all(
                workload,
                seed,
                lib,
                settings,
                std::slice::from_ref(&exact),
                engine,
                cache,
            );
            stats.cells_evaluated += 1;
            let cell = cells
                .into_iter()
                .next()
                .expect("one assignment in, one cell out");
            if !budget.admits(&cell.run.score)? {
                return Err(format!(
                    "budget `{budget}` is infeasible for workload `{}`: even exact \
                     arithmetic (score {}) does not meet it",
                    workload.name(),
                    cell.run.score.value(),
                ));
            }
            cell
        }
    };

    // 3. greedy single-site descent
    loop {
        stats.rounds += 1;
        let mut probes: Vec<SiteMap> = Vec::new();
        for spec in sites {
            for config in &configs {
                if current.assignment.get(spec.tag) == Some(config) {
                    continue;
                }
                let mut probe = current.assignment.clone();
                probe.set(spec.tag, *config);
                probes.push(probe);
            }
        }
        let cells = evaluate_all(workload, seed, lib, settings, &probes, engine, cache);
        stats.cells_evaluated += cells.len();
        let mut best_move: Option<HeteroCell> = None;
        for cell in cells {
            if !budget.admits(&cell.run.score)? {
                continue;
            }
            let bar = best_move
                .as_ref()
                .map_or(current.energy_pj, |b| b.energy_pj);
            if cell.energy_pj < bar {
                best_move = Some(cell);
            }
        }
        match best_move {
            Some(cell) => {
                stats.moves_accepted += 1;
                current = cell;
            }
            None => break,
        }
    }

    Ok(TuneOutcome {
        workload: workload.name().to_owned(),
        budget: budget.to_string(),
        assignment: current.assignment,
        score: current.run.score,
        energy_pj: current.energy_pj,
        site_counts: current.site_counts,
        best_uniform: baseline,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_apps::workload::{find, WorkloadParams};

    fn build(name: &str) -> Box<dyn Workload> {
        let params = WorkloadParams {
            size: 16,
            sets: 1,
            points: 20,
        };
        (find(name).expect("registered").build)(&params).expect("valid params")
    }

    fn quick_settings() -> CharacterizerSettings {
        CharacterizerSettings {
            error_samples: 1_000,
            verify_samples: 100,
            exhaustive_up_to_bits: 8,
            power_vectors: 50,
            seed: 11,
        }
    }

    fn small_candidates() -> Vec<OperatorConfig> {
        vec![
            OperatorConfig::AddExact { n: 16 },
            OperatorConfig::AddTrunc { n: 16, q: 12 },
            OperatorConfig::AddTrunc { n: 16, q: 10 },
        ]
    }

    #[test]
    fn uniform_hetero_cell_matches_the_uniform_context() {
        // one uniform SiteMap cell must score exactly like the classic
        // OperatorCtx sweep cell — the hetero machinery adds routing,
        // not arithmetic
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let workload = build("fir");
        let config = OperatorConfig::AddTrunc { n: 16, q: 12 };
        let uniform = SiteMap::uniform(workload.sites(), config);
        let cell = evaluate_cell(
            workload.as_ref(),
            7,
            &lib,
            settings,
            &uniform,
            &Engine::single_threaded(),
            &Cache::default(),
        );
        let mut classic = apx_apps::OperatorCtx::for_config(&config);
        let classic_run = workload.run(7, &mut classic);
        assert_eq!(cell.run, classic_run, "same score, counts and aux");
        assert_eq!(cell.site_counts.total(), classic_run.counts);
    }

    #[test]
    fn tune_result_never_costs_more_than_the_best_uniform() {
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let workload = build("fft");
        let outcome = tune(
            workload.as_ref(),
            7,
            &lib,
            settings,
            "<=1dB".parse().unwrap(),
            &small_candidates(),
            &Engine::new(2),
            &Cache::default(),
        )
        .expect("tune succeeds");
        let baseline = outcome.best_uniform.as_ref().expect("exact is feasible");
        assert!(
            outcome.energy_pj <= baseline.energy_pj,
            "hetero {} pJ must not exceed uniform {} pJ",
            outcome.energy_pj,
            baseline.energy_pj
        );
        assert_eq!(outcome.assignment.len(), workload.sites().len());
        assert!(
            outcome.stats.feasible_uniform >= 1,
            "exact meets any loss budget"
        );
    }

    #[test]
    fn tune_is_deterministic_across_thread_counts() {
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let workload = build("fir");
        let budget: QualityBudget = ">=30dB".parse().unwrap();
        let run = |threads: usize| {
            tune(
                workload.as_ref(),
                7,
                &lib,
                settings,
                budget,
                &small_candidates(),
                &Engine::new(threads),
                &Cache::default(),
            )
            .expect("tune succeeds")
        };
        let serial = run(1);
        let threaded = run(4);
        assert_eq!(
            serial, threaded,
            "bit-identical outcome for any thread count"
        );
    }

    #[test]
    fn mismatched_budget_unit_is_a_user_facing_error() {
        let lib = Library::fdsoi28();
        let workload = build("kmeans");
        let err = tune(
            workload.as_ref(),
            7,
            &lib,
            quick_settings(),
            ">=30dB".parse().unwrap(),
            &small_candidates(),
            &Engine::single_threaded(),
            &Cache::default(),
        )
        .unwrap_err();
        assert!(err.contains("dB"), "{err}");
        assert!(err.contains("success"), "{err}");
    }

    #[test]
    fn warm_rerun_is_pure_cache_hits_and_bit_identical() {
        let dir = std::env::temp_dir().join(format!("apx_tune_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Cache::builder().dir(&dir).open();
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let workload = build("fir");
        let budget: QualityBudget = ">=30dB".parse().unwrap();
        let run = |cache: &Cache| {
            tune(
                workload.as_ref(),
                7,
                &lib,
                settings,
                budget,
                &small_candidates(),
                &Engine::new(2),
                cache,
            )
            .expect("tune succeeds")
        };
        let cold = run(&cache);
        let writes_after_cold = cache.stats().writes;
        let hits_before = cache.stats().hits;
        let warm = run(&cache);
        assert_eq!(cold, warm, "cache must be transparent");
        assert_eq!(
            cache.stats().writes,
            writes_after_cold,
            "warm rerun writes nothing"
        );
        assert_eq!(
            cache.stats().hits - hits_before,
            cold.stats.cells_evaluated as u64,
            "every cell of the warm search is a hetero-cell hit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
