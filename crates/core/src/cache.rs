//! Content-addressed caching of [`OperatorReport`](crate::OperatorReport)s.
//!
//! A characterization report is a pure function of its inputs (the PR 2
//! determinism guarantee: bit-identical for any thread count under a
//! fixed seed), so it can be keyed by a stable hash of everything that
//! feeds it:
//!
//! * the [`OperatorConfig`] under test,
//! * the full [`CharacterizerSettings`] (seed, error samples, verify
//!   samples, exhaustive-verification bound, power vectors),
//! * a fingerprint of the cell [`Library`] (every cell spec, the
//!   wire-load model and the operating point),
//! * the engine's sharding fingerprint
//!   ([`apx_engine::sharding_fingerprint`] — the shard plan and seed
//!   streams are part of the sampled sequence),
//! * and [`REPORT_SCHEMA_VERSION`], bumped whenever the serialized
//!   report shape changes.
//!
//! Change any of these and the key changes, so stale blobs miss instead
//! of resurfacing: cache invalidation is automatic and needs no
//! versioned directories or manual flushes. The thread count is the one
//! knob deliberately **excluded** — it never changes a report, so a
//! sweep on 8 threads hits blobs written by a single-threaded run.
//!
//! # Example
//!
//! ```
//! use apx_cache::Cache;
//! use apx_cells::Library;
//! use apx_core::{Characterizer, CharacterizerSettings};
//! use apx_operators::OperatorConfig;
//!
//! let dir = std::env::temp_dir().join(format!("apx_core_doc_{}", std::process::id()));
//! let cache = Cache::builder().dir(&dir).open();
//! let lib = Library::fdsoi28();
//! let settings = CharacterizerSettings {
//!     error_samples: 2_000,
//!     verify_samples: 100,
//!     exhaustive_up_to_bits: 8,
//!     power_vectors: 30,
//!     seed: 7,
//! };
//! let config = OperatorConfig::AddTrunc { n: 16, q: 12 };
//!
//! let mut chz = Characterizer::new(&lib)
//!     .with_settings(settings)
//!     .with_cache(cache.clone());
//! let cold = chz.characterize(&config); // computes, then stores
//! let warm = chz.characterize(&config); // pure lookup
//! assert_eq!(cold, warm); // bit-identical, floats included
//! assert_eq!(cache.stats().hits, 1);
//!
//! cache.clear();
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::characterizer::CharacterizerSettings;
use apx_apps::Workload;
use apx_cache::{ArchiveStamp, CacheKey, KeyBuilder};
use apx_cells::Library;
use apx_operators::{OpClass, OperatorConfig, SiteMap};

/// Version of the cached-report schema. Bump on any change to the
/// serialized [`OperatorReport`] shape *or* to the semantics of a keyed
/// field, so every stale blob misses instead of deserializing into wrong
/// or differently-meaning data.
///
/// [`OperatorReport`]: crate::OperatorReport
///
/// v1 → v2: the power estimator's canonical vector-stream decomposition
/// changed (64 bitsliced lane sub-streams per shard, each with its own
/// warm-up — see `apx_netlist::power`), which legitimately shifts
/// absolute transition totals; v1 blobs must miss, not resurface numbers
/// from the retired stream definition.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

/// Stable fingerprint of a cell library: a content hash over its
/// canonical JSON serialization, covering every cell spec, the wire-load
/// model and the operating point. Editing any delay/energy/area number,
/// retargeting the node or scaling the supply changes the fingerprint —
/// and with it every report cache key derived from the library.
#[must_use]
pub fn library_fingerprint(lib: &Library) -> CacheKey {
    KeyBuilder::new("apxperf-library/v1")
        .push_json("library", lib)
        .finish()
}

/// The content-addressed key of one characterization report: a stable
/// hash of everything [`Characterizer::characterize`] depends on. See
/// the [module docs](self) for the exact ingredient list.
///
/// [`Characterizer::characterize`]: crate::Characterizer::characterize
#[must_use]
pub fn report_cache_key(
    lib: &Library,
    settings: &CharacterizerSettings,
    config: &OperatorConfig,
) -> CacheKey {
    KeyBuilder::new("apxperf-operator-report")
        .push_u64("report_schema", u64::from(REPORT_SCHEMA_VERSION))
        .push_str("library", &library_fingerprint(lib).hex())
        .push_u64("sharding", apx_engine::sharding_fingerprint())
        .push_json("settings", settings)
        .push_json("config", config)
        .finish()
}

/// Version of the cached app-sweep-cell schema
/// ([`WorkloadCell`](crate::appenergy::WorkloadCell)). Bump on any change
/// to the serialized cell shape or the semantics of a keyed field.
///
/// v1 → v2: app-sweep cells embed per-operator energy numbers, which
/// inherit the power estimator's new lane sub-stream semantics (see
/// [`REPORT_SCHEMA_VERSION`] v2).
pub const APP_SWEEP_SCHEMA_VERSION: u32 = 2;

/// The content-addressed key of one application-sweep cell — a
/// (workload × operator-config) pair under fixed characterizer settings.
/// Same recipe as [`report_cache_key`], extended with the workload's own
/// content fingerprint (name, algorithm version, every constructor
/// parameter — see [`Workload::fingerprint`]) and the fixture seed, so
/// app sweeps are content-addressed exactly like characterization
/// reports: change the workload, its parameters, the seed or anything a
/// report depends on, and the cell misses instead of resurfacing stale.
#[must_use]
pub fn workload_cell_key(
    lib: &Library,
    settings: &CharacterizerSettings,
    workload: &dyn Workload,
    workload_seed: u64,
    config: &OperatorConfig,
) -> CacheKey {
    KeyBuilder::new("apxperf-workload-cell")
        .push_u64("app_schema", u64::from(APP_SWEEP_SCHEMA_VERSION))
        .push_u64("report_schema", u64::from(REPORT_SCHEMA_VERSION))
        .push_str("library", &library_fingerprint(lib).hex())
        .push_u64("sharding", apx_engine::sharding_fingerprint())
        .push_json("settings", settings)
        .push_str("workload", &workload.fingerprint())
        .push_u64("workload_seed", workload_seed)
        .push_json("config", config)
        .finish()
}

/// The content-addressed key of one heterogeneous-assignment cell
/// ([`HeteroCell`](crate::tune::HeteroCell)) — a workload run with a
/// per-site [`SiteMap`] substituted in. Same recipe as
/// [`workload_cell_key`], with the whole assignment (site order
/// included) keyed in place of the single uniform config, so every
/// candidate the `tune` search evaluates is content-addressed and a
/// warm rerun of the same search is pure cache hits.
#[must_use]
pub fn hetero_cell_key(
    lib: &Library,
    settings: &CharacterizerSettings,
    workload: &dyn Workload,
    workload_seed: u64,
    assignment: &SiteMap,
) -> CacheKey {
    KeyBuilder::new("apxperf-hetero-cell")
        .push_u64("app_schema", u64::from(APP_SWEEP_SCHEMA_VERSION))
        .push_u64("report_schema", u64::from(REPORT_SCHEMA_VERSION))
        .push_str("library", &library_fingerprint(lib).hex())
        .push_u64("sharding", apx_engine::sharding_fingerprint())
        .push_json("settings", settings)
        .push_str("workload", &workload.fingerprint())
        .push_u64("workload_seed", workload_seed)
        .push_json("assignment", assignment)
        .finish()
}

/// The compatibility stamp of every cache archive this build packs or
/// imports: the report/app-sweep schema versions (which move every blob's
/// content address when bumped) plus the cell-library fingerprint the
/// blobs were computed against. [`Cache::import`](apx_cache::Cache)
/// rejects an archive whose stamp differs — its blobs would either never
/// be looked up (schema drift) or describe different hardware (library
/// drift).
#[must_use]
pub fn archive_stamp(lib: &Library) -> ArchiveStamp {
    ArchiveStamp {
        schema: format!("report/v{REPORT_SCHEMA_VERSION}+app/v{APP_SWEEP_SCHEMA_VERSION}"),
        library: library_fingerprint(lib).hex(),
    }
}

/// Every cache key a sweep over `configs` can read or write — the
/// selector `apxperf cache pack --family .. [--workload ..]` resolves to.
///
/// Per configuration that is: its own report key, its sized partner
/// operator's report key (the §IV energy models characterize both — see
/// [`crate::appenergy::partner_multiplier`] /
/// [`crate::appenergy::partner_adder`]), and, when a workload is
/// selected, the (workload × config) cell key. Keys are deduplicated
/// (many configs share one partner) and sorted, so the closure — and any
/// archive packed from it — is deterministic.
#[must_use]
pub fn sweep_key_closure(
    lib: &Library,
    settings: &CharacterizerSettings,
    configs: &[OperatorConfig],
    workload: Option<(&dyn Workload, u64)>,
) -> Vec<CacheKey> {
    let mut keys = std::collections::BTreeSet::new();
    for config in configs {
        keys.insert(report_cache_key(lib, settings, config));
        let partner = match config.op_class() {
            OpClass::Adder => crate::appenergy::partner_multiplier(config),
            OpClass::Multiplier => crate::appenergy::partner_adder(config),
        };
        keys.insert(report_cache_key(lib, settings, &partner));
        if let Some((workload, seed)) = workload {
            keys.insert(workload_cell_key(lib, settings, workload, seed, config));
        }
    }
    keys.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Characterizer;
    use apx_cache::Cache;
    use apx_cells::OperatingPoint;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static TEST_DIR_ID: AtomicUsize = AtomicUsize::new(0);

    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let id = TEST_DIR_ID.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir()
                .join(format!("apx_core_cache_test_{}_{id}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn quick_settings() -> CharacterizerSettings {
        CharacterizerSettings {
            error_samples: 5_000,
            verify_samples: 200,
            exhaustive_up_to_bits: 8,
            power_vectors: 50,
            seed: 41,
        }
    }

    #[test]
    fn hit_returns_bit_identical_report() {
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let config = OperatorConfig::Aca { n: 16, p: 6 };
        let mut chz = Characterizer::new(&lib)
            .with_settings(quick_settings())
            .with_cache(cache.clone());
        let cold = chz.characterize(&config);
        assert_eq!(cache.stats().writes, 1);
        let warm = chz.characterize(&config);
        // PartialEq on OperatorReport compares every float bit-for-bit
        // (incl. the -inf-capable mse_db and all positional BER vectors)
        assert_eq!(cold, warm);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn mismatched_inputs_miss() {
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let config = OperatorConfig::AddTrunc { n: 16, q: 10 };
        let settings = quick_settings();
        Characterizer::new(&lib)
            .with_settings(settings)
            .with_cache(cache.clone())
            .characterize(&config);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (0, 1, 1));

        // different seed → miss (second write)
        let mut reseeded = settings;
        reseeded.seed ^= 1;
        Characterizer::new(&lib)
            .with_settings(reseeded)
            .with_cache(cache.clone())
            .characterize(&config);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().writes, 2);

        // different sample count → miss
        let mut resampled = settings;
        resampled.error_samples += 1;
        Characterizer::new(&lib)
            .with_settings(resampled)
            .with_cache(cache.clone())
            .characterize(&config);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().writes, 3);

        // different library (fingerprint) → miss
        let other_node = Library::generic45();
        Characterizer::new(&other_node)
            .with_settings(settings)
            .with_cache(cache.clone())
            .characterize(&config);
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().writes, 4);

        // and the original inputs still hit their original blob
        Characterizer::new(&lib)
            .with_settings(settings)
            .with_cache(cache.clone())
            .characterize(&config);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn pre_schema_bump_blobs_are_clean_misses() {
        // A warm cache dir full of blobs written under the previous
        // REPORT_SCHEMA_VERSION must behave like a cold cache: the old
        // blobs sit under different content addresses, so the new run
        // records a plain miss (never a hit, never a collision/heal) and
        // recomputes under its own key.
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let config = OperatorConfig::Aca { n: 16, p: 6 };
        let settings = quick_settings();
        let mut chz = Characterizer::new(&lib)
            .with_settings(settings)
            .with_cache(cache.clone());
        let report = chz.characterize(&config);

        // Re-derive this report's key under the retired v1 schema tag —
        // the recipe below must stay in sync with `report_cache_key` —
        // and plant a well-formed report blob there, simulating a cache
        // dir left over from before the bump.
        let old_key = KeyBuilder::new("apxperf-operator-report")
            .push_u64("report_schema", u64::from(REPORT_SCHEMA_VERSION - 1))
            .push_str("library", &library_fingerprint(&lib).hex())
            .push_u64("sharding", apx_engine::sharding_fingerprint())
            .push_json("settings", &settings)
            .push_json("config", &config)
            .finish();
        let new_key = report_cache_key(&lib, &settings, &config);
        assert_ne!(old_key, new_key, "schema bump must move the address");
        let stale = Cache::builder().dir(&tmp.0).open();
        stale.put(&old_key, &report);

        // Fresh session over the warm dir: the v1 blob is invisible.
        let cache2 = Cache::builder().dir(&tmp.0).open();
        std::fs::remove_file(tmp.0.join(format!("{new_key}.json"))).unwrap();
        let mut chz2 = Characterizer::new(&lib)
            .with_settings(settings)
            .with_cache(cache2.clone());
        let recomputed = chz2.characterize(&config);
        assert_eq!(recomputed, report);
        let stats = cache2.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (0, 1, 1));
    }

    #[test]
    fn corrupted_blob_falls_back_to_recompute() {
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let config = OperatorConfig::EtaIi { n: 16, x: 4 };
        let settings = quick_settings();
        let mut chz = Characterizer::new(&lib)
            .with_settings(settings)
            .with_cache(cache.clone());
        let cold = chz.characterize(&config);

        let key = report_cache_key(&lib, &settings, &config);
        let blob = tmp.0.join(format!("{key}.json"));
        assert!(blob.exists());
        std::fs::write(&blob, "{\"definitely\": \"not a report\"}").unwrap();

        let recomputed = chz.characterize(&config);
        assert_eq!(recomputed, cold, "recompute must reproduce the report");
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().writes, 2, "healed blob is rewritten");
        // and now it hits again
        assert_eq!(chz.characterize(&config), cold);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn key_ignores_thread_count() {
        // the key has no engine/thread ingredient: a report cached on one
        // thread is served to a 4-thread run (determinism makes it valid)
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let config = OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: apx_operators::FaType::Two,
        };
        let serial = Characterizer::new(&lib)
            .with_settings(quick_settings())
            .with_engine(crate::Engine::new(1))
            .with_cache(cache.clone())
            .characterize(&config);
        let threaded = Characterizer::new(&lib)
            .with_settings(quick_settings())
            .with_engine(crate::Engine::new(4))
            .with_cache(cache.clone())
            .characterize(&config);
        assert_eq!(serial, threaded);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn library_fingerprint_sees_every_knob() {
        let base = library_fingerprint(&Library::fdsoi28());
        assert_eq!(base, library_fingerprint(&Library::fdsoi28()));
        assert_ne!(base, library_fingerprint(&Library::generic45()));
        let scaled = Library::fdsoi28().with_operating_point(OperatingPoint {
            vdd_v: 0.8,
            freq_mhz: 100.0,
        });
        assert_ne!(base, library_fingerprint(&scaled));
    }

    #[test]
    fn cached_sweep_matches_uncached_sweep() {
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let configs = [
            OperatorConfig::AddTrunc { n: 16, q: 10 },
            OperatorConfig::Aca { n: 16, p: 4 },
        ];
        let settings = quick_settings();
        let engine = crate::Engine::new(2);
        let uncached = crate::sweeps::characterize_all(&lib, settings, &configs, &engine);
        let cold =
            crate::sweeps::characterize_all_cached(&lib, settings, &configs, &engine, &cache);
        let warm =
            crate::sweeps::characterize_all_cached(&lib, settings, &configs, &engine, &cache);
        assert_eq!(uncached, cold);
        assert_eq!(cold, warm);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().writes, 2);
    }

    #[test]
    fn hetero_cell_key_sees_the_whole_assignment() {
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let workload = apx_apps::fft::FftWorkload::default();
        let sites = workload.sites();
        let config = OperatorConfig::AddTrunc { n: 16, q: 10 };
        let uniform = SiteMap::uniform(sites, config);
        let mut tweaked = uniform.clone();
        tweaked.set(sites[0].tag, OperatorConfig::AddTrunc { n: 16, q: 11 });
        let base = hetero_cell_key(&lib, &settings, &workload, 7, &uniform);
        assert_eq!(
            base,
            hetero_cell_key(&lib, &settings, &workload, 7, &uniform),
            "the key is stable"
        );
        assert_ne!(
            base,
            hetero_cell_key(&lib, &settings, &workload, 7, &tweaked),
            "every per-site config is keyed"
        );
        assert_ne!(
            base,
            hetero_cell_key(&lib, &settings, &workload, 8, &uniform),
            "the seed is keyed"
        );
        assert_ne!(
            base,
            workload_cell_key(&lib, &settings, &workload, 7, &config),
            "hetero cells never collide with uniform workload cells"
        );
    }

    #[test]
    fn collision_guard_rejects_wrong_config_blob() {
        // a blob that parses as a report but describes another operator
        // (hash collision, or a manually copied file) must not be served
        let tmp = TempDir::new();
        let cache = Cache::builder().dir(&tmp.0).open();
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let a = OperatorConfig::AddTrunc { n: 16, q: 10 };
        let b = OperatorConfig::AddTrunc { n: 16, q: 11 };
        let report_b = Characterizer::new(&lib)
            .with_settings(settings)
            .characterize(&b);
        // plant b's report under a's key
        cache.put(&report_cache_key(&lib, &settings, &a), &report_b);
        let report_a = Characterizer::new(&lib)
            .with_settings(settings)
            .with_cache(cache.clone())
            .characterize(&a);
        assert_eq!(report_a.config, a, "planted blob must be rejected");
    }

    #[test]
    fn archive_stamp_tracks_schema_and_library() {
        let stamp = archive_stamp(&Library::fdsoi28());
        assert_eq!(
            stamp.schema,
            format!("report/v{REPORT_SCHEMA_VERSION}+app/v{APP_SWEEP_SCHEMA_VERSION}")
        );
        assert_eq!(
            stamp.library,
            library_fingerprint(&Library::fdsoi28()).hex()
        );
        assert_ne!(
            stamp,
            archive_stamp(&Library::generic45()),
            "library drift moves the stamp"
        );
    }

    #[test]
    fn sweep_key_closure_covers_reports_partners_and_cells() {
        let lib = Library::fdsoi28();
        let settings = quick_settings();
        let adder = OperatorConfig::AddTrunc { n: 16, q: 10 };
        let mult = OperatorConfig::MulTrunc { n: 8, q: 8 };
        let keys = sweep_key_closure(&lib, &settings, &[adder, mult], None);
        // each config's own report key is in the closure …
        assert!(keys.contains(&report_cache_key(&lib, &settings, &adder)));
        assert!(keys.contains(&report_cache_key(&lib, &settings, &mult)));
        // … and so is each partner's
        let partner_m = crate::appenergy::partner_multiplier(&adder);
        let partner_a = crate::appenergy::partner_adder(&mult);
        assert!(keys.contains(&report_cache_key(&lib, &settings, &partner_m)));
        assert!(keys.contains(&report_cache_key(&lib, &settings, &partner_a)));
        assert_eq!(keys.len(), 4, "deduplicated and nothing else");
        // sorted → deterministic
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // a workload widens the closure by one cell key per config
        let workload = apx_apps::fft::FftWorkload::default();
        let with_cells = sweep_key_closure(&lib, &settings, &[adder, mult], Some((&workload, 7)));
        assert_eq!(with_cells.len(), 6);
        assert!(with_cells.contains(&workload_cell_key(&lib, &settings, &workload, 7, &adder)));
    }
}
