//! Fused characterization reports and Pareto extraction.

use apx_metrics::ErrorStats;
use apx_netlist::HwReport;
use apx_operators::OperatorConfig;
use serde::{Deserialize, Serialize};

/// Flattened error metrics of one operator (the scalar columns of the
/// paper's result files).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    /// Samples used.
    pub samples: u64,
    /// MSE in dB relative to full scale (−∞ encoded as `None` in JSON).
    pub mse_db: f64,
    /// Raw MSE in squared reference LSBs.
    pub mse: f64,
    /// Bit error rate over the reference width.
    pub ber: f64,
    /// Mean error (bias).
    pub mean_error: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Mean absolute relative error.
    pub relative_error: f64,
    /// Error rate `P[x ≠ x̂]`.
    pub error_rate: f64,
    /// Smallest observed error.
    pub min_error: i64,
    /// Largest observed error.
    pub max_error: i64,
    /// Positional BER per output bit (LSB first).
    pub positional_ber: Vec<f64>,
    /// Acceptance probability at power-of-two MAA thresholds `2^k`,
    /// `k = 0..=8`.
    pub acceptance_pow2: Vec<f64>,
}

impl ErrorSummary {
    /// Builds the summary from a full accumulator.
    #[must_use]
    pub fn from_stats(stats: &ErrorStats, ref_bits: u32) -> Self {
        ErrorSummary {
            samples: stats.samples(),
            mse_db: stats.mse_db(),
            mse: stats.mse(),
            ber: stats.ber(),
            mean_error: stats.mean_error(),
            mae: stats.mae(),
            relative_error: stats.relative_error(),
            error_rate: stats.error_rate(),
            min_error: stats.min_error(),
            max_error: stats.max_error(),
            positional_ber: (0..ref_bits).map(|k| stats.positional_ber(k)).collect(),
            acceptance_pow2: (0..=8)
                .map(|k| stats.acceptance_probability_pow2(k))
                .collect(),
        }
    }
}

/// The fused per-operator record: configuration, functional error
/// characterization, hardware characterization, and the verification
/// verdict (the paper stores the analogous record as a MAT file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorReport {
    /// The operator configuration.
    pub config: OperatorConfig,
    /// Paper-notation operator name.
    pub name: String,
    /// Whether the netlist matched the functional model.
    pub verified: bool,
    /// Functional error characterization.
    pub error: ErrorSummary,
    /// Hardware characterization.
    pub hw: HwReport,
}

impl OperatorReport {
    /// CSV header matching [`OperatorReport::to_csv_row`].
    #[must_use]
    pub fn csv_header() -> String {
        "name,verified,mse_db,ber,mae,bias,error_rate,area_um2,delay_ns,power_mw,pdp_pj".to_owned()
    }

    /// One CSV row of the headline columns.
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "\"{}\",{},{:.3},{:.6},{:.4},{:.4},{:.6},{:.2},{:.4},{:.5},{:.6}",
            self.name,
            self.verified,
            self.error.mse_db,
            self.error.ber,
            self.error.mae,
            self.error.mean_error,
            self.error.error_rate,
            self.hw.area_um2,
            self.hw.delay_ns,
            self.hw.power_mw,
            self.hw.pdp_pj,
        )
    }

    /// Serializes the full report to pretty JSON.
    ///
    /// # Errors
    /// Propagates `serde_json` failures (effectively unreachable for this
    /// data model).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

/// A point on an accuracy/cost trade-off plot (one marker of Figs. 3/4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Operator name.
    pub name: String,
    /// Accuracy coordinate (e.g. MSE dB or BER).
    pub x: f64,
    /// Cost coordinate (e.g. power, delay, PDP or area).
    pub y: f64,
}

/// Extracts the Pareto front (minimal `x` and `y` simultaneously) from a
/// set of points; the result is sorted by `x`.
///
/// # Example
/// ```
/// use apx_core::ParetoPoint;
/// let pts = vec![
///     ParetoPoint { name: "a".into(), x: 1.0, y: 5.0 },
///     ParetoPoint { name: "b".into(), x: 2.0, y: 2.0 },
///     ParetoPoint { name: "c".into(), x: 3.0, y: 4.0 }, // dominated by b
/// ];
/// let front = apx_core::sweeps::pareto_front(&pts);
/// assert_eq!(front.len(), 2);
/// ```
#[must_use]
pub(crate) fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted: Vec<ParetoPoint> = points.to_vec();
    sorted.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    let mut front: Vec<ParetoPoint> = Vec::new();
    let mut best_y = f64::INFINITY;
    for p in sorted {
        if p.y < best_y {
            best_y = p.y;
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_front_removes_dominated_points() {
        let pts = vec![
            ParetoPoint {
                name: "a".into(),
                x: 1.0,
                y: 5.0,
            },
            ParetoPoint {
                name: "b".into(),
                x: 2.0,
                y: 2.0,
            },
            ParetoPoint {
                name: "c".into(),
                x: 3.0,
                y: 4.0,
            },
            ParetoPoint {
                name: "d".into(),
                x: 0.5,
                y: 9.0,
            },
        ];
        let front = pareto_front(&pts);
        let names: Vec<&str> = front.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["d", "a", "b"]);
    }

    #[test]
    fn csv_row_has_as_many_fields_as_the_header() {
        let header_fields = OperatorReport::csv_header().split(',').count();
        assert_eq!(header_fields, 11);
    }
}
