//! Black-box tests of `apxperf serve` as a real subprocess: ephemeral
//! `--addr 127.0.0.1:0` binding with `--port-file` discovery, response
//! bodies byte-identical to the CLI's stdout, and graceful shutdown —
//! both via `POST /shutdown` and via a real SIGTERM — exiting 0.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn apxperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_apxperf"))
}

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("apxperf_srv_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("temp dir is creatable");
        TempDir(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The daemon subprocess; killed on drop so a failing test never leaks
/// a listener.
struct DaemonProcess {
    child: Child,
    addr: SocketAddr,
}

impl DaemonProcess {
    fn start(tmp: &TempDir) -> DaemonProcess {
        let port_file = tmp.0.join("port");
        let child = apxperf()
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                port_file.to_str().unwrap(),
                "--samples",
                "800",
                "--vectors",
                "40",
                "--cache-dir",
                &format!("{}/cache", tmp.path()),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("apxperf serve must spawn");
        // the port file appears atomically once the socket is bound
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                break text.trim().parse().expect("port file holds HOST:PORT");
            }
            assert!(Instant::now() < deadline, "port file never appeared");
            std::thread::sleep(Duration::from_millis(10));
        };
        DaemonProcess { child, addr }
    }

    /// Waits for a clean exit, returning (exit-ok, stdout).
    fn wait(mut self, deadline: Duration) -> (bool, String) {
        let start = Instant::now();
        loop {
            match self.child.try_wait().expect("try_wait works") {
                Some(status) => {
                    let mut stdout = String::new();
                    if let Some(mut pipe) = self.child.stdout.take() {
                        pipe.read_to_string(&mut stdout).ok();
                    }
                    return (status.success(), stdout);
                }
                None => {
                    assert!(
                        start.elapsed() < deadline,
                        "daemon did not exit within {deadline:?}"
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
}

impl Drop for DaemonProcess {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("daemon accepts connections");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .unwrap();
    stream
        .write_all(
            format!("{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("daemon responds");
    let text = String::from_utf8(raw).expect("responses are UTF-8");
    let (head, body) = text.split_once("\r\n\r\n").expect("full response");
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.to_owned())
}

#[test]
fn served_reports_match_the_cli_stdout_and_shutdown_exits_zero() {
    let tmp = TempDir::new("bytes");
    let daemon = DaemonProcess::start(&tmp);

    // the exact stdout of the equivalent CLI invocation (fresh cache
    // directory so both sides compute cold)
    let cli = apxperf()
        .args([
            "report",
            "ADDt(16,12)",
            "--samples",
            "800",
            "--vectors",
            "40",
            "--no-cache",
        ])
        .output()
        .expect("apxperf report runs");
    assert!(cli.status.success(), "{cli:?}");

    let (status, body) = request(daemon.addr, "GET", "/report/ADDt(16,12)");
    assert_eq!(status, 200);
    assert_eq!(
        body.as_bytes(),
        &cli.stdout[..],
        "served body must be byte-identical to the CLI stdout"
    );

    let (status, reply) = request(daemon.addr, "POST", "/shutdown");
    assert_eq!(status, 200);
    assert!(reply.contains("draining"), "{reply}");
    let (ok, stdout) = daemon.wait(Duration::from_secs(30));
    assert!(ok, "POST /shutdown must end in exit code 0");
    // the startup announcement carries the actual ephemeral address
    assert!(
        stdout.contains("listening on http://127.0.0.1:"),
        "{stdout}"
    );
    assert!(!stdout.contains(":0/"), "announced port must be resolved");
    assert!(stdout.contains("drained, bye"), "{stdout}");
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_zero() {
    let tmp = TempDir::new("sigterm");
    let daemon = DaemonProcess::start(&tmp);
    let (status, _) = request(daemon.addr, "GET", "/healthz");
    assert_eq!(status, 200);

    let terminate = Command::new("kill")
        .args(["-TERM", &daemon.child.id().to_string()])
        .status()
        .expect("kill(1) is available");
    assert!(terminate.success());

    let (ok, stdout) = daemon.wait(Duration::from_secs(30));
    assert!(ok, "SIGTERM must end in a graceful exit code 0");
    assert!(stdout.contains("drained, bye"), "{stdout}");
}
