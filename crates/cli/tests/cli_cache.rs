//! End-to-end tests of the `apxperf` binary: the cache acceptance
//! contract (a warm `fig3` run prints identical numbers in a fraction of
//! the cold wall-clock), `--no-cache`, the `report`/`cache` utilities
//! and help-output consistency.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

/// The compiled `apxperf` binary under test.
fn apxperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_apxperf"))
}

fn run(args: &[&str]) -> Output {
    apxperf()
        .args(args)
        .output()
        .expect("apxperf binary must spawn")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("apxperf_cli_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn fig3_second_run_hits_the_cache_and_is_identical_and_fast() {
    let dir = TempDir::new("fig3");
    let args = [
        "fig3",
        "--samples",
        "2000",
        "--vectors",
        "100",
        "--threads",
        "2",
        "--cache-dir",
        dir.path(),
    ];

    let cold_start = Instant::now();
    let cold = run(&args);
    let cold_time = cold_start.elapsed();
    assert!(cold.status.success(), "cold run failed: {cold:?}");

    // the cold run populated one blob per adder configuration
    let blobs = std::fs::read_dir(&dir.0)
        .expect("cache dir exists after the cold run")
        .count();
    assert!(blobs > 90, "expected ~97 blobs, found {blobs}");

    let warm_start = Instant::now();
    let warm = run(&args);
    let warm_time = warm_start.elapsed();
    assert!(warm.status.success(), "warm run failed: {warm:?}");

    // identical numbers: stdout must match byte for byte
    assert_eq!(stdout(&cold), stdout(&warm));

    // and the warm run reports pure hits on stderr
    let warm_err = String::from_utf8(warm.stderr.clone()).unwrap();
    assert!(
        warm_err.contains("97 hits, 0 misses, 0 writes"),
        "unexpected warm stderr: {warm_err}"
    );

    // "a fraction of the cold wall-clock": generous 2x bound so slow or
    // noisy CI machines cannot flake — observed locally: >20x
    assert!(
        warm_time * 2 < cold_time,
        "warm run ({warm_time:?}) is not a fraction of the cold run ({cold_time:?})"
    );
    // sanity on the measurement itself: the cold run does real work
    assert!(
        cold_time > Duration::from_millis(10),
        "cold run suspiciously fast"
    );
}

#[test]
fn no_cache_runs_leave_no_blobs_and_print_the_same_numbers() {
    let dir = TempDir::new("nocache");
    let cached = run(&[
        "table1",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--cache-dir",
        dir.path(),
    ]);
    assert!(cached.status.success());
    let uncached = run(&[
        "table1",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--no-cache",
    ]);
    assert!(uncached.status.success());
    // the cache is transparent: identical stdout with and without it
    assert_eq!(stdout(&cached), stdout(&uncached));
    let no_cache_err = String::from_utf8(uncached.stderr.clone()).unwrap();
    assert!(
        !no_cache_err.contains("cache:"),
        "--no-cache must not report cache traffic: {no_cache_err}"
    );
}

#[test]
fn report_parses_paper_notation_and_emits_full_json() {
    let dir = TempDir::new("report");
    let output = run(&[
        "report",
        "ADDt(16,12)",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--cache-dir",
        dir.path(),
    ]);
    assert!(output.status.success(), "{output:?}");
    let text = stdout(&output);
    assert!(text.contains("\"name\": \"ADDt(16,12)\""), "{text}");
    assert!(text.contains("\"positional_ber\""), "{text}");
    assert!(text.contains("\"verified\": true"), "{text}");

    let bad = run(&["report", "FROB(16)"]);
    assert!(!bad.status.success());
    let err = String::from_utf8(bad.stderr.clone()).unwrap();
    assert!(err.contains("invalid operator"), "{err}");
}

#[test]
fn cache_subcommand_reports_and_clears() {
    let dir = TempDir::new("maint");
    let seeded = run(&[
        "report",
        "ACA(8,2)",
        "--samples",
        "500",
        "--vectors",
        "30",
        "--cache-dir",
        dir.path(),
    ]);
    assert!(seeded.status.success());
    let stats = run(&["cache", "stats", "--cache-dir", dir.path()]);
    assert!(stats.status.success());
    let text = stdout(&stats);
    assert!(text.contains("blobs:   1"), "{text}");
    assert!(text.contains(dir.path()), "{text}");
    let cleared = run(&["cache", "clear", "--cache-dir", dir.path()]);
    assert!(stdout(&cleared).contains("removed 1 blobs"));
    let restat = run(&["cache", "stats", "--cache-dir", dir.path()]);
    assert!(stdout(&restat).contains("blobs:   0"));
}

#[test]
fn every_subcommand_has_uniform_help() {
    let global = run(&["--help"]);
    assert!(global.status.success());
    let global_text = stdout(&global);
    for name in [
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "app",
        "pareto",
        "tune",
        "list",
        "ablations",
        "bench-baseline",
        "sweep",
        "report",
        "cache",
        "serve",
    ] {
        assert!(global_text.contains(name), "global help misses {name}");
        let help = run(&[name, "--help"]);
        assert!(help.status.success(), "{name} --help failed");
        let text = stdout(&help);
        assert!(
            text.contains(&format!("Usage: apxperf {name}")),
            "{name}: inconsistent usage line:\n{text}"
        );
        assert!(text.contains("--help"), "{name}: missing --help entry");
        // every characterizing command documents the same core knobs
        if !["cache", "list"].contains(&name) {
            assert!(
                text.contains("--samples <N>"),
                "{name}: missing --samples:\n{text}"
            );
            assert!(text.contains("--seed <N>"), "{name}: missing --seed");
        }
    }
    // unknown flags are rejected with the usage text, not silently eaten
    let bad = run(&["fig3", "--vektors", "5"]);
    assert_eq!(bad.status.code(), Some(2));
    let err = String::from_utf8(bad.stderr).unwrap();
    assert!(err.contains("unknown flag --vektors"), "{err}");
    assert!(err.contains("Usage: apxperf fig3"), "{err}");
}

#[test]
fn new_workloads_run_end_to_end_and_warm_app_sweeps_are_pure_hits() {
    // the acceptance contract of the workload registry: `apxperf app
    // {fir,sobel}` runs end-to-end, and a cached rerun is served
    // entirely from the app-sweep cells — byte-identical stdout, 0
    // misses — exactly like characterization sweeps.
    for (workload, extra) in [("fir", None), ("sobel", Some(["--size", "32"]))] {
        let dir = TempDir::new(&format!("app_{workload}"));
        let mut args = vec![
            "app",
            workload,
            "--samples",
            "1000",
            "--vectors",
            "50",
            "--cache-dir",
            dir.path(),
        ];
        if let Some(extra) = extra {
            args.extend(extra);
        }
        let cold = run(&args);
        assert!(
            cold.status.success(),
            "{workload} cold run failed: {cold:?}"
        );
        let warm = run(&args);
        assert!(
            warm.status.success(),
            "{workload} warm run failed: {warm:?}"
        );
        assert_eq!(
            stdout(&cold),
            stdout(&warm),
            "{workload}: cache not transparent"
        );
        let text = stdout(&warm);
        // the default family is the 9 named operating points of Tables III/V
        assert!(
            text.contains("over family `points` (9 configs)"),
            "{workload}: header:
{text}"
        );
        let warm_err = String::from_utf8(warm.stderr.clone()).unwrap();
        assert!(
            warm_err.contains("9 hits, 0 misses, 0 writes"),
            "{workload}: warm run must be pure cell hits: {warm_err}"
        );
    }
}

#[test]
fn pareto_overlay_flags_dominated_approx_configs_and_warms_to_pure_hits() {
    // the acceptance contract of the Pareto explorer: the overlay runs
    // end-to-end, at least one sized-exact config dominates an
    // approximate one, a warm rerun is served entirely from the cache
    // with byte-identical stdout, and `cache stats --format json`
    // exposes the warm run's counters machine-readably.
    let dir = TempDir::new("pareto");
    let args = [
        "pareto",
        "--workload",
        "fir",
        "--family",
        "points",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--cache-dir",
        dir.path(),
    ];
    let cold = run(&args);
    assert!(cold.status.success(), "cold pareto failed: {cold:?}");
    let text = stdout(&cold);
    assert!(
        text.contains("+ sized baseline"),
        "overlay header missing:\n{text}"
    );
    // an approximate row flagged as dominated by a sized-exact config:
    // role `approx`, dominated_by a Sized-family name
    let dominated_approx = text.lines().any(|line| {
        let dominated_by = line.split_whitespace().last().unwrap_or("-");
        line.contains(" approx ")
            && ["ADDst(", "ADDsr(", "MULst(", "MULsr(", "ADD(", "MUL("]
                .iter()
                .any(|sized| dominated_by.starts_with(sized))
    });
    assert!(
        dominated_approx,
        "no approximate config dominated by a sized-exact one:\n{text}"
    );
    assert!(
        text.contains("approximate configs dominated by the sized baseline"),
        "summary line missing:\n{text}"
    );

    let warm = run(&args);
    assert!(warm.status.success(), "warm pareto failed: {warm:?}");
    assert_eq!(
        stdout(&cold),
        stdout(&warm),
        "warm stdout must be byte-identical"
    );
    // pure-hit contract without pinning the overlay's config count (the
    // exact brittleness the CI jq assertions also avoid): no misses, no
    // writes, some hits
    let warm_err = String::from_utf8(warm.stderr.clone()).unwrap();
    assert!(
        warm_err.contains(" hits, 0 misses, 0 writes"),
        "warm pareto must be pure cell hits: {warm_err}"
    );
    assert!(
        !warm_err.contains("cache: 0 hits"),
        "warm pareto must actually hit: {warm_err}"
    );

    // the machine-readable stats the CI assertions jq: last_run reflects
    // the warm run's pure hits
    let stats = run(&[
        "cache",
        "stats",
        "--cache-dir",
        dir.path(),
        "--format",
        "json",
    ]);
    assert!(stats.status.success());
    let json = stdout(&stats);
    assert!(json.contains("\"last_run\""), "{json}");
    assert!(!json.contains("\"hits\": 0"), "{json}");
    assert!(json.contains("\"misses\": 0"), "{json}");
    assert!(json.contains("\"writes\": 0"), "{json}");
}

#[test]
fn pre_schema_bump_cache_dir_recomputes_and_last_run_records_the_miss() {
    // A cache dir populated before a REPORT_SCHEMA_VERSION bump must act
    // cold: the stale blob is a clean miss (different content address —
    // never a hit, never a collision), the run recomputes identical
    // bytes, and `cache stats --format json` `last_run` records the
    // recompute.
    use apx_core::cache::{library_fingerprint, report_cache_key, REPORT_SCHEMA_VERSION};
    use apx_core::query::QueryParams;

    let dir = TempDir::new("schema_bump");
    let args = [
        "report",
        "ACA(16,6)",
        "--samples",
        "2000",
        "--vectors",
        "100",
        "--cache-dir",
        dir.path(),
    ];
    let cold = run(&args);
    assert!(cold.status.success(), "cold report failed: {cold:?}");

    // Re-derive the blob's address exactly as the run did, then re-file
    // the blob under the address the *previous* schema version would
    // have used — a faithful stand-in for a warm pre-bump cache dir.
    let lib = apx_cells::Library::fdsoi28();
    let settings = QueryParams {
        samples: 2_000,
        vectors: 100,
        ..QueryParams::default()
    }
    .settings();
    let config = apx_operators::OperatorConfig::Aca { n: 16, p: 6 };
    let new_key = report_cache_key(&lib, &settings, &config);
    let old_key = apx_cache::KeyBuilder::new("apxperf-operator-report")
        .push_u64("report_schema", u64::from(REPORT_SCHEMA_VERSION - 1))
        .push_str("library", &library_fingerprint(&lib).hex())
        .push_u64("sharding", apx_engine::sharding_fingerprint())
        .push_json("settings", &settings)
        .push_json("config", &config)
        .finish();
    assert_ne!(old_key, new_key);
    std::fs::rename(
        dir.0.join(format!("{new_key}.json")),
        dir.0.join(format!("{old_key}.json")),
    )
    .expect("cold run must have written the blob under the new key");

    let warm = run(&args);
    assert!(warm.status.success(), "post-bump report failed: {warm:?}");
    assert_eq!(stdout(&cold), stdout(&warm), "recompute must be identical");

    let stats = run(&[
        "cache",
        "stats",
        "--cache-dir",
        dir.path(),
        "--format",
        "json",
    ]);
    assert!(stats.status.success());
    let json = stdout(&stats);
    assert!(json.contains("\"last_run\""), "{json}");
    assert!(
        json.contains("\"hits\": 0"),
        "stale blob must not hit: {json}"
    );
    assert!(json.contains("\"misses\": 1"), "{json}");
    assert!(json.contains("\"writes\": 1"), "{json}");
}

#[test]
fn invalid_engine_knobs_are_usage_errors() {
    // --threads 0 used to fall through silently to "auto"; all zero
    // engine knobs are now rejected at the door, like the invalid
    // --size/--sets workload parameters below
    for flag in ["--threads", "--samples", "--vectors"] {
        let bad = run(&["fig3", flag, "0"]);
        assert_eq!(bad.status.code(), Some(2), "{flag} 0 must be a usage error");
        let err = String::from_utf8(bad.stderr).unwrap();
        assert!(err.contains("at least 1"), "{flag}: {err}");
        assert!(err.contains("Usage: apxperf fig3"), "{flag}: {err}");
    }
    // the existing workload-parameter rejections stay runtime errors
    // with user-facing messages (constructor constraints, exit code 1)
    let bad_size = run(&[
        "app",
        "jpeg",
        "--size",
        "30",
        "--samples",
        "500",
        "--no-cache",
    ]);
    assert!(!bad_size.status.success());
    let err = String::from_utf8(bad_size.stderr).unwrap();
    assert!(err.contains("multiple of 8"), "{err}");
}

#[test]
fn list_names_every_registered_workload_and_family() {
    let output = run(&["list"]);
    assert!(output.status.success());
    let text = stdout(&output);
    for name in ["fft", "jpeg", "hevc", "kmeans", "fir", "sobel"] {
        assert!(
            text.contains(name),
            "workload {name} missing:
{text}"
        );
    }
    for name in ["adders", "multipliers", "widths", "points", "all"] {
        assert!(
            text.contains(name),
            "family {name} missing:
{text}"
        );
    }
}

#[test]
fn list_sites_prints_every_workloads_call_sites() {
    let output = run(&["list", "--sites"]);
    assert!(output.status.success());
    let text = stdout(&output);
    for site in [
        "fft.twiddle",
        "fft.butterfly",
        "fir.mac",
        "sobel.grad",
        "sobel.mag",
        "kmeans.dist_diff",
        "kmeans.dist_acc",
        "hevc.mc_h",
        "hevc.mc_v",
        "jpeg.dct_row",
        "jpeg.dct_col",
    ] {
        assert!(text.contains(site), "site {site} missing:\n{text}");
    }
    assert!(text.contains("add+mul"), "op-class labels missing:\n{text}");
}

#[test]
fn tune_finds_a_budget_meeting_assignment_and_warms_to_pure_hits() {
    // the acceptance contract of the tuner: `apxperf tune` returns a
    // per-site assignment whose energy is <= the best uniform config
    // meeting the same budget, deterministically across thread counts,
    // and a warm rerun is served entirely from the hetero-cell cache.
    let dir = TempDir::new("tune");
    let base = [
        "tune",
        "--workload",
        "fir",
        "--budget",
        ">=30dB",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--cache-dir",
        dir.path(),
    ];
    let mut serial = base.to_vec();
    serial.extend(["--threads", "1"]);
    let mut threaded = base.to_vec();
    threaded.extend(["--threads", "4"]);

    let cold = run(&serial);
    assert!(cold.status.success(), "cold tune failed: {cold:?}");
    let text = stdout(&cold);
    assert!(
        text.contains("fir.mac"),
        "assignment table missing:\n{text}"
    );
    assert!(text.contains("best_uniform"), "summary missing:\n{text}");

    // the winning energy never exceeds the best uniform baseline
    let field = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.contains(name))
            .unwrap_or_else(|| panic!("{name} missing:\n{text}"))
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("{name} is not a number:\n{text}"))
    };
    assert!(
        field("energy_pj") <= field("best_uniform_energy_pj"),
        "tuned assignment must not cost more than the best uniform:\n{text}"
    );

    // deterministic across thread counts: byte-identical stdout
    let other = run(&threaded);
    assert!(other.status.success(), "threaded tune failed: {other:?}");
    assert_eq!(
        stdout(&cold),
        stdout(&other),
        "tune must be bit-identical for any thread count"
    );

    // the threaded rerun was warm: pure hits, no misses, no writes
    let warm_err = String::from_utf8(other.stderr.clone()).unwrap();
    assert!(
        warm_err.contains(" hits, 0 misses, 0 writes"),
        "warm tune must be pure cell hits: {warm_err}"
    );
    assert!(
        !warm_err.contains("cache: 0 hits"),
        "warm tune must actually hit: {warm_err}"
    );

    // a mismatched budget unit is a user-facing error
    let bad = run(&[
        "tune",
        "--workload",
        "kmeans",
        "--budget",
        ">=30dB",
        "--samples",
        "500",
        "--sets",
        "1",
        "--points",
        "20",
        "--no-cache",
    ]);
    assert!(!bad.status.success());
    let err = String::from_utf8(bad.stderr).unwrap();
    assert!(err.contains("dB"), "{err}");
}

#[test]
fn sweep_workload_scores_a_family_with_the_unified_columns() {
    let output = run(&[
        "sweep",
        "--family",
        "multipliers",
        "--workload",
        "fft",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--no-cache",
        "--format",
        "csv",
    ]);
    assert!(output.status.success(), "{output:?}");
    let text = stdout(&output);
    let header = text
        .lines()
        .find(|l| l.starts_with("operator,"))
        .expect("csv header");
    assert_eq!(
        header,
        "operator,family,metric,score,degradation,E_add_fJ,E_mul_fJ,E_app_pJ"
    );
    assert!(text.contains("PSNR_dB"), "{text}");
    assert!(text.contains("\"MULt(16,16)\""), "{text}");
}

#[test]
fn format_switch_produces_csv_and_json() {
    let csv = run(&[
        "sweep",
        "--family",
        "multipliers",
        "--samples",
        "500",
        "--vectors",
        "30",
        "--no-cache",
        "--format",
        "csv",
    ]);
    assert!(csv.status.success());
    let text = stdout(&csv);
    let first = text.lines().next().unwrap();
    assert!(first.starts_with("family,name,verified"), "{first}");
    assert!(
        text.contains("\"MULt(16,16)\""),
        "quoted comma cell: {text}"
    );

    let json = run(&[
        "sweep",
        "--family",
        "multipliers",
        "--samples",
        "500",
        "--vectors",
        "30",
        "--no-cache",
        "--format",
        "json",
    ]);
    assert!(json.status.success());
    let text = stdout(&json);
    assert!(text.trim_start().starts_with('['), "{text}");
    assert!(text.contains("\"name\": \"MULt(16,16)\""), "{text}");
}
