//! End-to-end tests of the cache fleet operations: pack → fetch
//! restores a pure-hit rerun with byte-identical stdout, mismatched
//! archives are rejected without writing anything, `gc` evicts
//! LRU-first down to the byte budget, and N concurrent `apxperf`
//! processes sharing one cache directory never tear a blob or leak a
//! temp file.

use std::path::PathBuf;
use std::process::{Command, Output};

/// The compiled `apxperf` binary under test.
fn apxperf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_apxperf"))
}

fn run(args: &[&str]) -> Output {
    apxperf()
        .args(args)
        .output()
        .expect("apxperf binary must spawn")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("apxperf_fleet_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        TempDir(dir)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp path is UTF-8")
    }

    fn file(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The content-addressed report blobs in a cache dir (32-hex `.json`
/// names), sorted.
fn blobs_in(dir: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| apx_cache::classify(&e.path()) == apx_cache::RecordKind::Blob)
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// Any leftover atomic-write temp files in a cache dir.
fn temps_in(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| apx_cache::classify(&e.path()) == apx_cache::RecordKind::Temp)
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn pack_fetch_restores_a_pure_hit_rerun_with_identical_stdout() {
    let warm = TempDir::new("pack_src");
    let fresh = TempDir::new("pack_dst");
    let archive = warm.file("warm.apxcache");
    let report = |dir: &str| {
        run(&[
            "report",
            "ACA(16,4)",
            "--samples",
            "1000",
            "--vectors",
            "50",
            "--cache-dir",
            dir,
        ])
    };

    let cold = report(warm.path());
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    assert_eq!(blobs_in(&warm.0).len(), 1);

    let packed = run(&["cache", "pack", &archive, "--cache-dir", warm.path()]);
    assert!(packed.status.success(), "pack failed: {packed:?}");
    assert!(stdout(&packed).contains("packed"), "{packed:?}");

    let fetched = run(&["cache", "fetch", &archive, "--cache-dir", fresh.path()]);
    assert!(fetched.status.success(), "fetch failed: {fetched:?}");
    // byte-identical restore: same blob names, same bytes
    assert_eq!(blobs_in(&warm.0), blobs_in(&fresh.0));
    for name in blobs_in(&warm.0) {
        assert_eq!(
            std::fs::read(warm.0.join(&name)).unwrap(),
            std::fs::read(fresh.0.join(&name)).unwrap(),
            "{name}: restored blob differs"
        );
    }

    // the restored dir serves the rerun purely from cache, byte-identical
    let restored = report(fresh.path());
    assert!(
        restored.status.success(),
        "restored run failed: {restored:?}"
    );
    assert_eq!(stdout(&cold), stdout(&restored));
    let err = stderr(&restored);
    assert!(
        err.contains("1 hits, 0 misses, 0 writes"),
        "restored run must be a pure hit: {err}"
    );

    // fetching the same archive again is a no-op, not a conflict
    let again = run(&[
        "cache",
        "fetch",
        &archive,
        "--cache-dir",
        fresh.path(),
        "--format",
        "json",
    ]);
    assert!(again.status.success(), "re-fetch failed: {again:?}");
    let json = stdout(&again);
    assert!(json.contains("\"imported\": 0"), "{json}");
    assert!(json.contains("\"already_present\": 1"), "{json}");
}

#[test]
fn mismatched_archives_are_rejected_and_write_nothing() {
    let warm = TempDir::new("reject_src");
    let fresh = TempDir::new("reject_dst");
    let seeded = run(&[
        "report",
        "ADDt(16,12)",
        "--samples",
        "500",
        "--vectors",
        "30",
        "--cache-dir",
        warm.path(),
    ]);
    assert!(seeded.status.success());
    let archive = warm.file("warm.apxcache");
    let packed = run(&["cache", "pack", &archive, "--cache-dir", warm.path()]);
    assert!(packed.status.success());

    // a foreign library fingerprint in the stamp: structured rejection
    let text = std::fs::read_to_string(&archive).unwrap();
    let foreign = archive.replace(".apxcache", ".foreign.apxcache");
    std::fs::write(
        &foreign,
        text.replacen("\"library\": \"", "\"library\": \"feed", 1),
    )
    .unwrap();
    let rejected = run(&[
        "cache",
        "fetch",
        &foreign,
        "--cache-dir",
        fresh.path(),
        "--format",
        "json",
    ]);
    assert_eq!(rejected.status.code(), Some(1));
    let err = stderr(&rejected);
    assert!(err.contains("LibraryMismatch"), "{err}");
    assert_eq!(blobs_in(&fresh.0).len(), 0, "rejected import wrote blobs");

    // a tampered blob body: checksum rejection, still nothing written
    let tampered = archive.replace(".apxcache", ".tampered.apxcache");
    std::fs::write(
        &tampered,
        text.replacen("\\\"verified\\\"", "\\\"verifiee\\\"", 1),
    )
    .unwrap();
    let rejected = run(&["cache", "fetch", &tampered, "--cache-dir", fresh.path()]);
    assert_eq!(rejected.status.code(), Some(1));
    let err = stderr(&rejected);
    assert!(
        err.contains("checksum") || err.contains("does not match"),
        "{err}"
    );
    assert_eq!(blobs_in(&fresh.0).len(), 0, "tampered import wrote blobs");
}

#[test]
fn pack_selector_reports_the_sweep_closure_keys_it_cannot_find() {
    // the selector path end to end, without paying for a family sweep:
    // an empty cache has none of the `points` closure blobs, so a
    // selective pack reports every key as missing and packs nothing
    let dir = TempDir::new("selector");
    let archive = dir.file("sel.apxcache");
    let packed = run(&[
        "cache",
        "pack",
        &archive,
        "--cache-dir",
        dir.path(),
        "--family",
        "points",
        "--samples",
        "1000",
        "--vectors",
        "50",
        "--format",
        "json",
    ]);
    assert!(packed.status.success(), "{packed:?}");
    let json = stdout(&packed);
    assert!(json.contains("\"packed\": 0"), "{json}");
    // 9 configs + their sized partners: strictly more than 9 keys
    let missing: u64 = json
        .lines()
        .find(|l| l.contains("\"missing\""))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(',').parse().ok())
        .expect("missing count in pack summary");
    assert!(missing > 9, "points closure should exceed 9 keys: {json}");
}

#[test]
fn gc_evicts_lru_first_down_to_the_byte_budget() {
    let dir = TempDir::new("gc");
    let report = |spec: &str| {
        let output = run(&[
            "report",
            spec,
            "--samples",
            "500",
            "--vectors",
            "30",
            "--cache-dir",
            dir.path(),
        ]);
        assert!(output.status.success(), "{spec} failed: {output:?}");
    };
    report("ACA(8,2)");
    let old_blob = blobs_in(&dir.0)[0].clone();
    // make the first blob decisively older than the second
    let backdate = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
    std::fs::OpenOptions::new()
        .append(true)
        .open(dir.0.join(&old_blob))
        .and_then(|f| f.set_modified(backdate))
        .expect("backdate blob");
    report("ADDt(8,4)");
    assert_eq!(blobs_in(&dir.0).len(), 2);

    let total: u64 = blobs_in(&dir.0)
        .iter()
        .map(|name| std::fs::metadata(dir.0.join(name)).unwrap().len())
        .sum();
    let budget = total - 1; // forces exactly one eviction
    let gc = run(&[
        "cache",
        "gc",
        "--max-bytes",
        &budget.to_string(),
        "--cache-dir",
        dir.path(),
        "--format",
        "json",
    ]);
    assert!(gc.status.success(), "{gc:?}");
    let json = stdout(&gc);
    assert!(json.contains("\"evicted_blobs\": 1"), "{json}");

    let survivors = blobs_in(&dir.0);
    assert_eq!(survivors.len(), 1, "exactly one blob must survive");
    assert_ne!(survivors[0], old_blob, "gc must evict the LRU blob first");
    let remaining: u64 = survivors
        .iter()
        .map(|name| std::fs::metadata(dir.0.join(name)).unwrap().len())
        .sum();
    assert!(remaining <= budget, "{remaining} > budget {budget}");

    // gc without a budget is a usage-level error, not a silent no-op
    let bad = run(&["cache", "gc", "--cache-dir", dir.path()]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(stderr(&bad).contains("--max-bytes"), "{bad:?}");
}

#[test]
fn concurrent_processes_sharing_a_cache_dir_never_tear_blobs_or_leak_temps() {
    // N racing `apxperf report` processes over one directory: half pile
    // onto the same config (write/write race on one blob), half write
    // distinct configs. Every process must succeed, every blob must be
    // complete valid JSON, and no atomic-write temp may survive.
    let dir = TempDir::new("stress");
    let shared = "ACA(8,2)";
    let distinct = ["ADDt(8,4)", "RCAApx(8,3,2)", "ACA(8,3)"];
    let mut children = Vec::new();
    for index in 0..8 {
        let spec = if index % 2 == 0 {
            shared
        } else {
            distinct[(index / 2) % distinct.len()]
        };
        let child = apxperf()
            .args([
                "report",
                spec,
                "--samples",
                "500",
                "--vectors",
                "30",
                "--cache-dir",
                dir.path(),
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn racing apxperf");
        children.push((spec, child));
    }
    for (spec, child) in children {
        let output = child.wait_with_output().expect("racing child exits");
        assert!(output.status.success(), "{spec} failed under contention");
    }

    let blobs = blobs_in(&dir.0);
    assert_eq!(blobs.len(), 4, "one blob per distinct config: {blobs:?}");
    for name in &blobs {
        let text = std::fs::read_to_string(dir.0.join(name)).expect("blob readable");
        assert!(
            serde_json::from_str::<serde::Value>(&text).is_ok(),
            "{name}: torn blob: {text}"
        );
    }
    assert_eq!(temps_in(&dir.0), Vec::<String>::new(), "leaked temp files");

    // deterministic hit accounting: after the race, a rerun of the
    // contended config is a pure hit
    let warm = run(&[
        "report",
        shared,
        "--samples",
        "500",
        "--vectors",
        "30",
        "--cache-dir",
        dir.path(),
    ]);
    assert!(warm.status.success());
    let err = stderr(&warm);
    assert!(
        err.contains("1 hits, 0 misses, 0 writes"),
        "post-race rerun must be a pure hit: {err}"
    );
}
