//! Pinned regression outputs for the workload-registry refactor.
//!
//! The `golden/*.txt` files were captured from the **pre-registry**
//! implementation of the application figure/table subcommands (each case
//! study hand-wired through its own fixture/appenergy path). The
//! refactored commands are thin aliases over the `Workload` registry and
//! the `sweep_workload` driver, and this test proves their default
//! outputs are byte-identical to what the bespoke drivers printed —
//! seeds, scores, energy models, formatting, everything.
//!
//! The captures use reduced sample counts so the whole suite stays fast;
//! every other flag is at its default, so the legacy per-command fixture
//! seeds (0xF17, 0x1E7A, 0xEC, 100…) are on the line too.

use std::process::Command;

/// Runs the compiled `apxperf` with `args` and returns stdout.
fn run(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_apxperf"))
        .args(args)
        .output()
        .expect("apxperf binary must spawn");
    assert!(output.status.success(), "{args:?}: {output:?}");
    String::from_utf8(output.stdout).expect("stdout is UTF-8")
}

/// Asserts one command's stdout matches its pinned capture byte for byte.
fn assert_golden(golden: &str, args: &[&str]) {
    let actual = run(args);
    assert_eq!(
        actual, golden,
        "{args:?}: output drifted from the pre-refactor capture"
    );
}

#[test]
fn fig5_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/fig5.txt"),
        &[
            "fig5",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--no-cache",
        ],
    );
}

#[test]
fn fig6_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/fig6.txt"),
        &[
            "fig6",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--size",
            "64",
            "--no-cache",
        ],
    );
}

#[test]
fn table2_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/table2.txt"),
        &[
            "table2",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--no-cache",
        ],
    );
}

#[test]
fn table3_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/table3.txt"),
        &[
            "table3",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--size",
            "32",
            "--no-cache",
        ],
    );
}

#[test]
fn table4_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/table4.txt"),
        &[
            "table4",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--size",
            "32",
            "--no-cache",
        ],
    );
}

#[test]
fn table5_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/table5.txt"),
        &[
            "table5",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--sets",
            "2",
            "--points",
            "100",
            "--no-cache",
        ],
    );
}

#[test]
fn table6_matches_the_pre_registry_output() {
    assert_golden(
        include_str!("golden/table6.txt"),
        &[
            "table6",
            "--samples",
            "2000",
            "--vectors",
            "100",
            "--sets",
            "2",
            "--points",
            "100",
            "--no-cache",
        ],
    );
}
