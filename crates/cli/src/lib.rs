//! The unified `apxperf` command-line interface.
//!
//! One binary subsumes the twelve former per-figure/per-table repro
//! binaries as subcommands — `apxperf fig3`, `apxperf table1 --samples
//! 20000`, `apxperf sweep --family adders`, `apxperf report
//! "ACA(16,4)"` — on top of two shared facilities:
//!
//! * **one argument parser** ([`args`]): every flag is declared once
//!   with its default and help text, each subcommand names the subset it
//!   accepts, and `--help` output is rendered from the same table, so
//!   usage is consistent across all entry points by construction;
//! * **the content-addressed report cache** (`apx_cache`, wired through
//!   `apx_core`): an already-characterized operator configuration costs
//!   a blob lookup instead of a 100k-sample sweep. `--cache-dir PATH`
//!   pins the store, `--no-cache` disables it, and stale results
//!   invalidate automatically because every key hashes the operator
//!   config, the characterizer settings, the cell-library fingerprint
//!   and the report schema version.
//!
//! The crate is a thin shell: all numerical work lives in `apx_core` and
//! below; [`commands`] only select configurations, format tables
//! ([`output`]) and decide where results go. Cache statistics print to
//! stderr so stdout stays byte-identical between cold and warm runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod output;

/// Renders the global help: every subcommand with its summary, plus the
/// shared-flag conventions.
#[must_use]
pub fn global_help() -> String {
    let mut text = String::from(
        "apxperf — APXPERF-RS: approximate vs fixed-point operator characterization\n\
         (Barrois, Sentieys, Ménard — DATE 2017)\n\n\
         Usage: apxperf <COMMAND> [OPTIONS]\n\n\
         Commands:\n",
    );
    for command in commands::COMMANDS {
        text.push_str(&format!("  {:<16}{}\n", command.name, command.summary));
    }
    text.push_str(
        "\nRun `apxperf <COMMAND> --help` for the flags a command accepts.\n\
         All characterizations go through the content-addressed report cache\n\
         (~/.cache/apxperf, override with --cache-dir or APXPERF_CACHE_DIR;\n\
         disable with --no-cache): a repeated run with the same inputs is a\n\
         lookup, not a recompute, and prints identical numbers.\n",
    );
    text
}

/// Parses and runs one CLI invocation. `argv` is everything after the
/// program name. Returns the process exit code: 0 on success, 2 on a
/// usage error, 1 on a runtime failure.
pub fn run(argv: &[String]) -> i32 {
    let Some(name) = argv.first() else {
        print!("{}", global_help());
        return 0;
    };
    if name == "--help" || name == "-h" || name == "help" {
        print!("{}", global_help());
        return 0;
    }
    let Some(command) = commands::find(name) else {
        eprintln!("unknown command `{name}`\n");
        eprint!("{}", global_help());
        return 2;
    };
    let rest = &argv[1..];
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        print!(
            "{}",
            args::usage(
                command.name,
                command.summary,
                command.positional,
                command.flags
            )
        );
        return 0;
    }
    let parsed = match args::Args::parse(rest, command.flags, command.max_positional) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!(
                "{}",
                args::usage(
                    command.name,
                    command.summary,
                    command.positional,
                    command.flags
                )
            );
            return 2;
        }
    };
    match (command.run)(&parsed) {
        Ok(()) => 0,
        Err(message) => {
            eprintln!("error: {message}");
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_command_is_findable_and_documented() {
        for command in commands::COMMANDS {
            assert!(commands::find(command.name).is_some());
            assert!(!command.summary.is_empty());
            // every accepted flag must exist in the shared table
            for flag in command.flags {
                assert!(
                    args::FLAGS.iter().any(|f| &f.name == flag),
                    "{}: unknown flag {flag}",
                    command.name
                );
            }
        }
    }

    #[test]
    fn global_help_lists_every_command() {
        let help = global_help();
        for command in commands::COMMANDS {
            assert!(help.contains(command.name), "{} missing", command.name);
        }
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert_eq!(run(&["frobnicate".to_owned()]), 2);
    }

    #[test]
    fn cache_flag_consistency_every_sweep_command_supports_the_cache() {
        // the tentpole contract: every characterizing subcommand accepts
        // --cache-dir/--no-cache; the two non-characterizing ones
        // (bench-baseline measures compute; cache manages the store) are
        // the deliberate exceptions
        for command in commands::COMMANDS {
            if ["bench-baseline", "cache", "list"].contains(&command.name) {
                continue;
            }
            assert!(
                command.flags.contains(&"cache-dir"),
                "{} lacks --cache-dir",
                command.name
            );
            assert!(
                command.flags.contains(&"no-cache"),
                "{} lacks --no-cache",
                command.name
            );
        }
    }
}
