//! The table subcommands: the paper's operator table (Table I) and the
//! application case studies (Tables II–VI).

use super::{report_cache_use, reports_for, workload_cells};
use crate::args::Args;
use crate::output::{fmt, render};
use apx_apps::hevc::ops_per_fractional_pixel;
use apx_apps::OpCounts;
use apx_core::sweeps;
use apx_operators::{FaType, OperatorConfig};

/// `apxperf table1` — direct comparison of the 16-bit fixed-width
/// multipliers: MULt(16,16) vs AAM(16) vs ABM(16) (+ ABMu(16), the
/// uncorrected pruned-Booth instance matching the paper's catastrophic
/// ABM MSE).
pub(super) fn table1(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::multipliers_16bit();
    let reports = reports_for(args, &cache, &configs);
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt(r.hw.power_mw, 4),
                fmt(r.hw.delay_ns, 2),
                fmt(r.hw.pdp_pj, 3),
                fmt(r.hw.area_um2, 1),
                fmt(r.error.mse_db, 2),
                fmt(r.error.ber * 100.0, 1),
                r.verified.to_string(),
            ]
        })
        .collect();
    println!("TABLE I: 16-bit fixed-width multipliers");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "power_mW", "delay_ns", "PDP_pJ", "area_um2", "MSE_dB", "BER_%", "ok"],
            &rows,
        )
    );
    println!();
    println!("paper:   MULt 0.273/0.91/0.249/805/-89.1/23.4  AAM 0.359/1.23/0.442/665/-87.9/27.7  ABM 0.446/0.57/0.446/879/-9.63/27.9");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf table2` — FFT-32 accuracy and energy with 16-bit fixed-width
/// multipliers (exact adders sized alongside). A thin alias over the
/// `fft` workload of the registry.
pub(super) fn table2(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::multipliers_16bit();
    let (_, cells) = workload_cells(args, &cache, "fft", &configs)?;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                fmt(cell.run.score.value(), 2),
                fmt(cell.model.mult_pdp_pj, 3),
                fmt(cell.model.energy_pj(cell.run.counts), 2),
            ]
        })
        .collect();
    println!("TABLE II: FFT-32 with 16-bit fixed-width multipliers (exact adders)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "PSNR_dB", "PDP_mul_pJ", "E_fft_pJ"],
            &rows,
        )
    );
    println!();
    println!("paper: MULt 53.88 dB / 0.249 pJ   AAM 59.66 / 0.442   ABM -18.14 / 0.446");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf table3` — HEVC motion-compensation filter with 16-bit adders
/// at the paper's operating points; energy per fractionally interpolated
/// pixel, partner multiplier sized to the adder width.
pub(super) fn table3(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = [
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::Aca { n: 16, p: 12 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Three,
        },
    ];
    let per_pixel = ops_per_fractional_pixel();
    let (_, cells) = workload_cells(args, &cache, "hevc", &configs)?;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                fmt(cell.run.score.value() * 100.0, 2),
                fmt(cell.model.adder_pdp_pj, 4),
                fmt(cell.model.mult_pdp_pj, 4),
                fmt(cell.model.energy_pj(per_pixel), 3),
            ]
        })
        .collect();
    println!("TABLE III: HEVC MC filter, 16-bit adders (energy per fractional pixel)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "MSSIM_%", "E_add_pJ", "E_mul_pJ", "total_pJ"],
            &rows,
        )
    );
    println!();
    println!("paper: ADDt(16,10) 99.29/1.39e-2/4.39e-2/0.898  ACA 96.45/.../2.49e-1/4.20  ETAIV 98.02/...  RCAApx 99.67/.../4.12");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf table4` — HEVC motion compensation with 16-bit fixed-width
/// multipliers (exact adders sized to the multiplier output).
pub(super) fn table4(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let per_pixel = ops_per_fractional_pixel();
    let configs = sweeps::multipliers_16bit();
    let (_, cells) = workload_cells(args, &cache, "hevc", &configs)?;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                fmt(cell.run.score.value() * 100.0, 3),
                fmt(cell.model.mult_pdp_pj, 4),
                fmt(cell.model.adder_pdp_pj, 4),
                fmt(cell.model.energy_pj(per_pixel), 3),
            ]
        })
        .collect();
    println!("TABLE IV: HEVC MC filter, 16-bit multipliers (energy per fractional pixel)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "MSSIM_%", "E_mul_pJ", "E_add_pJ", "total_pJ"],
            &rows,
        )
    );
    println!();
    println!(
        "paper: MULt 99.918/2.49e-1/1.83e-2/3.77  AAM 99.909/4.42e-1/6.48  ABM 99.907/2.54e-1/3.85"
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf table5` — K-means clustering success and distance-computation
/// energy with 16-bit adders at the paper's two accuracy levels. A thin
/// alias over the `kmeans` workload of the registry (which averages the
/// `--sets` fixed-seed data sets internally).
pub(super) fn table5(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = [
        OperatorConfig::AddTrunc { n: 16, q: 11 },
        OperatorConfig::Aca { n: 16, p: 12 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Three,
        },
        OperatorConfig::AddTrunc { n: 16, q: 8 },
        OperatorConfig::Aca { n: 16, p: 8 },
        OperatorConfig::EtaIv { n: 16, x: 2 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 10,
            fa_type: FaType::One,
        },
    ];
    let per_distance = OpCounts { adds: 3, muls: 2 };
    let (_, cells) = workload_cells(args, &cache, "kmeans", &configs)?;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                fmt(cell.run.score.value() * 100.0, 2),
                fmt(cell.model.adder_pdp_pj, 4),
                fmt(cell.model.mult_pdp_pj, 4),
                fmt(cell.model.energy_pj(per_distance), 4),
            ]
        })
        .collect();
    println!("TABLE V: K-means, 16-bit adders (energy per distance computation)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "success_%", "E_add_pJ", "E_mul_pJ", "total_pJ"],
            &rows,
        )
    );
    println!();
    println!("paper: ADDt(16,11) 99.14/2.03e-1  ACA(16,12) 99.10/5.13e-1  ETAIV(16,4) 99.43/5.11e-1  RCAApx(16,6,3) 99.67/5.08e-1");
    println!("       ADDt(16,8)  86.00/6.06e-2  ACA(16,8)  86.06/5.08e-1  ETAIV(16,2) 63.25/5.05e-1  RCAApx(16,10,1) 87.29/5.11e-1");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf table6` — K-means with 16-bit multipliers, including the
/// heavily pruned MULt(16,4) that matches the paper's ABM collapse.
pub(super) fn table6(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = [
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Aam { n: 16 },
        OperatorConfig::Abm { n: 16 },
        OperatorConfig::AbmUncorrected { n: 16 },
        OperatorConfig::MulTrunc { n: 16, q: 4 },
    ];
    let per_distance = OpCounts { adds: 3, muls: 2 };
    let (_, cells) = workload_cells(args, &cache, "kmeans", &configs)?;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                fmt(cell.run.score.value() * 100.0, 2),
                fmt(cell.model.mult_pdp_pj, 4),
                fmt(cell.model.adder_pdp_pj, 4),
                fmt(cell.model.energy_pj(per_distance), 4),
            ]
        })
        .collect();
    println!("TABLE VI: K-means, 16-bit multipliers (energy per distance computation)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "success_%", "E_mul_pJ", "E_add_pJ", "total_pJ"],
            &rows,
        )
    );
    println!();
    println!("paper: MULt(16,16) 99.84/5.15e-1  AAM 99.43/9.02e-1  ABM 10.27/5.27e-1  MULt(16,4) 10.87/4.09e-1");
    report_cache_use(&cache);
    Ok(())
}
