//! `apxperf tune` — the quality-budget auto-tuner over heterogeneous
//! per-call-site operator assignment (`apx_core::tune`): find the
//! minimum-energy [`SiteMap`](apx_operators::SiteMap) whose application
//! quality still meets a parsed budget, and report it against the best
//! uniform configuration.

use super::{report_cache_use, resolve_workload};
use crate::args::Args;
use crate::output::{family, fmt, render};
use apx_cells::Library;
use apx_core::sweeps;
use apx_metrics::QualityBudget;
use apx_operators::OperatorConfig;

/// Resolves `--families` (comma-separated, default `points,sized` — the
/// named operating points plus the data-sizing baseline, so the search
/// always has feasible low-energy candidates) into the concatenated
/// candidate list, in family order.
fn candidate_configs(args: &Args) -> Result<Vec<OperatorConfig>, String> {
    let list = args.families.as_deref().unwrap_or("points,sized");
    let mut configs = Vec::new();
    for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let fam = sweeps::find_family(name).ok_or_else(|| {
            format!("--families: `{name}` is not a registered family — see `apxperf list`")
        })?;
        configs.extend((fam.configs)());
    }
    if configs.is_empty() {
        return Err("--families: expected at least one family name".to_owned());
    }
    Ok(configs)
}

/// `apxperf tune --workload <NAME> --budget <EXPR>` — greedy search for
/// the cheapest per-site assignment meeting the budget. Prints the
/// winning assignment (one row per declared call-site) and a summary
/// table (quality, energy vs. the best uniform candidate, search
/// statistics) in the selected format. Stdout is deterministic; the
/// cache note goes to stderr.
pub(super) fn tune(args: &Args) -> Result<(), String> {
    let name = args.workload.as_deref().ok_or_else(|| {
        "expected --workload <NAME>, e.g. `apxperf tune --workload fir --budget '>=30dB'`"
            .to_owned()
    })?;
    let budget_text = args.budget.as_deref().ok_or_else(|| {
        "expected --budget <EXPR>, e.g. `--budget '>=30dB'` (dB workloads) or \
         `--budget '>=95%'` (ratio workloads)"
            .to_owned()
    })?;
    let budget: QualityBudget = budget_text.parse()?;
    let configs = candidate_configs(args)?;
    let (workload, seed) = resolve_workload(args, name)?;
    let cache = args.cache();
    let lib = Library::fdsoi28();
    let outcome = apx_core::tune::tune(
        workload.as_ref(),
        seed,
        &lib,
        args.settings(),
        budget,
        &configs,
        &args.engine(),
        &cache,
    )?;

    println!(
        "TUNE {} budget {} ({} candidates over {} sites)",
        workload.fingerprint(),
        outcome.budget,
        outcome.stats.candidates,
        outcome.stats.sites,
    );

    // one row per declared call-site, in declaration order
    let rows: Vec<Vec<String>> = workload
        .sites()
        .iter()
        .map(|spec| {
            let assigned = outcome.assignment.get(spec.tag);
            let counts = outcome.site_counts.get(spec.tag);
            vec![
                spec.tag.to_owned(),
                spec.ops.label().to_owned(),
                assigned.map_or_else(|| "exact".to_owned(), ToString::to_string),
                assigned.map_or("FxP-exact", family).to_owned(),
                counts.adds.to_string(),
                counts.muls.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            args.format,
            &["site", "ops", "operator", "family", "adds", "muls"],
            &rows,
        )
    );

    let mut summary: Vec<Vec<String>> = vec![
        vec!["metric".to_owned(), outcome.score.metric().to_owned()],
        vec!["score".to_owned(), fmt(outcome.score.value(), 4)],
        vec!["energy_pj".to_owned(), fmt(outcome.energy_pj, 3)],
    ];
    match &outcome.best_uniform {
        Some(uniform) => {
            summary.push(vec!["best_uniform".to_owned(), uniform.config.to_string()]);
            summary.push(vec![
                "best_uniform_energy_pj".to_owned(),
                fmt(uniform.energy_pj, 3),
            ]);
            let saving = if uniform.energy_pj > 0.0 {
                (1.0 - outcome.energy_pj / uniform.energy_pj) * 100.0
            } else {
                0.0
            };
            summary.push(vec!["energy_saving_pct".to_owned(), fmt(saving, 2)]);
        }
        None => summary.push(vec![
            "best_uniform".to_owned(),
            "none (no uniform candidate meets the budget)".to_owned(),
        ]),
    }
    summary.push(vec![
        "feasible_uniform".to_owned(),
        outcome.stats.feasible_uniform.to_string(),
    ]);
    summary.push(vec![
        "cells_evaluated".to_owned(),
        outcome.stats.cells_evaluated.to_string(),
    ]);
    summary.push(vec!["rounds".to_owned(), outcome.stats.rounds.to_string()]);
    summary.push(vec![
        "moves_accepted".to_owned(),
        outcome.stats.moves_accepted.to_string(),
    ]);
    print!("{}", render(args.format, &["field", "value"], &summary));
    report_cache_use(&cache);
    Ok(())
}
