//! The exploration subcommands: whole-family sweeps, single-operator
//! reports and report-cache maintenance.

use super::report_cache_use;
use crate::args::Args;
use apx_cells::Library;
use apx_core::{cache as core_cache, query};

/// `apxperf sweep` — characterizes one of the registered §IV families
/// and prints the headline CSV columns of every report; `--workload
/// <NAME>` scores the named application workload over the same
/// configurations instead. `--format csv` makes this the bulk-export
/// path (pipe it into a plotting script). The text itself comes from
/// [`query::sweep_text`] — the same function the serve daemon answers
/// `POST /sweep` with, so served bodies match this stdout byte for byte.
pub(super) fn sweep(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let text = query::sweep_text(
        &Library::fdsoi28(),
        &args.query_params(),
        &args.family,
        args.workload.as_deref(),
        args.format,
        &args.engine(),
        &cache,
    )?;
    print!("{text}");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf report <CONFIG>` — characterizes a single operator named in
/// paper notation (e.g. `ADDt(16,10)`, `ACA(16,4)`, `RCAApx(16,6,3)`)
/// and prints the **full** fused report as pretty JSON: every error
/// metric (positional BER, acceptance probabilities), the hardware
/// record and the verification verdict. The JSON comes from
/// [`query::report_text`] — the exact bytes `GET /report/<CONFIG>`
/// serves.
pub(super) fn report(args: &Args) -> Result<(), String> {
    let spec = args
        .positional
        .first()
        .ok_or_else(|| "expected an operator, e.g. `apxperf report \"ACA(16,4)\"`".to_owned())?;
    let cache = args.cache();
    let (text, _hit) = query::report_text(
        &Library::fdsoi28(),
        &args.query_params(),
        spec,
        &args.engine(),
        &cache,
    )?;
    print!("{text}");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf cache <verb>` — fleet operations on the report cache.
///
/// Maintenance: `stats` prints blob count, on-disk bytes, location, the
/// key schema and the counters persisted by the most recent
/// characterizing run (`--format json` emits all of it machine-readably
/// — the CI warm-run assertions `jq` this instead of grepping stderr);
/// `clear` deletes every blob (and only blobs — stats records, locks and
/// foreign files are classified out); `dir` prints just the directory
/// (for shell substitution).
///
/// Fleet: `pack <ARCHIVE>` exports blobs as one portable
/// fingerprint-stamped file — all of them, or just a sweep's closure
/// when `--family`/`--workload` select one; `fetch <ARCHIVE>` imports
/// strictly (collisions are errors), `merge <ARCHIVE>` unions (local
/// blobs win); both verify every blob checksum and reject archives from
/// a mismatched schema or library fingerprint with a structured error.
/// `gc --max-bytes N` evicts least-recently-used blobs until the
/// directory fits the budget.
pub(super) fn cache(args: &Args) -> Result<(), String> {
    let action = args.positional.first().map_or("stats", String::as_str);
    let cache = args.cache();
    match action {
        "stats" => {
            if args.format == crate::args::Format::Json {
                println!("{}", stats_json(&cache));
                return Ok(());
            }
            match cache.dir() {
                Some(dir) => {
                    let stats = cache.stats();
                    println!("dir:     {}", dir.display());
                    println!("blobs:   {}", stats.blobs);
                    println!("bytes:   {}", stats.bytes);
                    println!(
                        "schema:  apxperf-operator-report v{}",
                        core_cache::REPORT_SCHEMA_VERSION
                    );
                    println!(
                        "library: {} (fingerprint {})",
                        Library::fdsoi28().name(),
                        core_cache::library_fingerprint(&Library::fdsoi28())
                    );
                    match cache.last_run_stats() {
                        Some(run) => println!(
                            "last run: {} hits, {} misses, {} writes, {} evictions, {} imports",
                            run.hits, run.misses, run.writes, run.evictions, run.imports
                        ),
                        None => println!("last run: none recorded"),
                    }
                }
                None => println!("cache disabled (no directory could be derived)"),
            }
            Ok(())
        }
        "clear" => {
            let removed = cache.clear();
            println!("removed {removed} blobs");
            Ok(())
        }
        "dir" => {
            match cache.dir() {
                Some(dir) => println!("{}", dir.display()),
                None => println!(),
            }
            Ok(())
        }
        "pack" => pack(args, &cache),
        "fetch" => import(args, &cache, apx_cache::ImportMode::Fetch),
        "merge" => import(args, &cache, apx_cache::ImportMode::Merge),
        "gc" => gc(args, &cache),
        other => Err(format!(
            "`{other}` is not stats, clear, dir, pack, fetch, merge or gc"
        )),
    }
}

/// The `<ARCHIVE>` positional the pack/fetch/merge verbs require.
fn archive_path<'a>(args: &'a Args, verb: &str) -> Result<&'a str, String> {
    args.positional.get(1).map(String::as_str).ok_or_else(|| {
        format!("cache {verb} expects an archive path, e.g. `apxperf cache {verb} warm.apxcache`")
    })
}

/// A [`apx_cache::CacheError`] in the run's output format: the
/// externally tagged JSON object under `--format json` (scripts dispatch
/// on the variant name), the one-line prose otherwise.
fn cache_error(args: &Args, err: &apx_cache::CacheError) -> String {
    if args.format == crate::args::Format::Json {
        err.to_json()
    } else {
        err.to_string()
    }
}

/// Renders a fleet-operation summary as `--format` asks: a JSON object,
/// `metric,value` CSV, or aligned `metric: value` text lines.
fn render_summary(args: &Args, title: &str, pairs: &[(&str, u64)]) -> String {
    use serde::Value;
    match args.format {
        crate::args::Format::Json => {
            let object = Value::Object(
                pairs
                    .iter()
                    .map(|&(name, value)| (name.to_owned(), Value::UInt(u128::from(value))))
                    .collect(),
            );
            serde_json::to_string_pretty(&object).expect("JSON rendering is infallible")
        }
        crate::args::Format::Csv => {
            let mut text = "metric,value\n".to_owned();
            for (name, value) in pairs {
                text.push_str(&format!("{name},{value}\n"));
            }
            text.trim_end().to_owned()
        }
        crate::args::Format::Tty => {
            let width = pairs.iter().map(|(name, _)| name.len()).max().unwrap_or(0);
            let mut text = format!("{title}\n");
            for (name, value) in pairs {
                text.push_str(&format!("  {name:<width$}  {value}\n"));
            }
            text.trim_end().to_owned()
        }
    }
}

/// The blob selection of `cache pack`: the whole directory by default,
/// or — when `--family` (and optionally `--workload`) select a sweep —
/// exactly that sweep's key closure (each config's report, its sized
/// partner's report, and the workload cells).
fn pack_selection(args: &Args) -> Result<Option<Vec<apx_cache::CacheKey>>, String> {
    if !args.was_set("family") && args.workload.is_none() {
        return Ok(None);
    }
    let family_name = args.family_or("points");
    let family = apx_core::sweeps::find_family(family_name).ok_or_else(|| {
        format!("--family: `{family_name}` is not a registered family — see `apxperf list`")
    })?;
    let configs = (family.configs)();
    let lib = Library::fdsoi28();
    let settings = args.settings();
    let keys = match &args.workload {
        Some(name) => {
            let (workload, seed) = super::resolve_workload(args, name)?;
            core_cache::sweep_key_closure(
                &lib,
                &settings,
                &configs,
                Some((workload.as_ref(), seed)),
            )
        }
        None => core_cache::sweep_key_closure(&lib, &settings, &configs, None),
    };
    Ok(Some(keys))
}

/// `apxperf cache pack <ARCHIVE>` — export blobs into one portable,
/// fingerprint-stamped archive file.
fn pack(args: &Args, cache: &apx_cache::Cache) -> Result<(), String> {
    let path = archive_path(args, "pack")?;
    let keys = pack_selection(args)?;
    let stamp = core_cache::archive_stamp(&Library::fdsoi28());
    let summary = cache
        .pack(std::path::Path::new(path), &stamp, keys.as_deref())
        .map_err(|e| cache_error(args, &e))?;
    println!(
        "{}",
        render_summary(
            args,
            &format!("packed -> {path}"),
            &[
                ("packed", summary.packed),
                ("bytes", summary.bytes),
                ("missing", summary.missing),
            ],
        )
    );
    Ok(())
}

/// `apxperf cache fetch|merge <ARCHIVE>` — import an archive, strictly
/// (`fetch`: collisions abort) or as a union (`merge`: local wins).
fn import(
    args: &Args,
    cache: &apx_cache::Cache,
    mode: apx_cache::ImportMode,
) -> Result<(), String> {
    let verb = match mode {
        apx_cache::ImportMode::Fetch => "fetch",
        apx_cache::ImportMode::Merge => "merge",
    };
    let path = archive_path(args, verb)?;
    let stamp = core_cache::archive_stamp(&Library::fdsoi28());
    let summary = cache
        .import(std::path::Path::new(path), &stamp, mode)
        .map_err(|e| cache_error(args, &e))?;
    println!(
        "{}",
        render_summary(
            args,
            &format!("{verb} <- {path}"),
            &[
                ("imported", summary.imported),
                ("already_present", summary.already_present),
                ("conflicts", summary.conflicts),
                ("total", summary.total),
            ],
        )
    );
    Ok(())
}

/// `apxperf cache gc --max-bytes N` — evict LRU-first down to the byte
/// budget.
fn gc(args: &Args, cache: &apx_cache::Cache) -> Result<(), String> {
    let budget = args
        .max_bytes
        .ok_or("cache gc expects a budget: `apxperf cache gc --max-bytes 256M`")?;
    let summary = cache.gc(budget).map_err(|e| cache_error(args, &e))?;
    println!(
        "{}",
        render_summary(
            args,
            &format!("gc to <= {budget} bytes"),
            &[
                ("examined_blobs", summary.examined_blobs),
                ("examined_bytes", summary.examined_bytes),
                ("evicted_blobs", summary.evicted_blobs),
                ("evicted_bytes", summary.evicted_bytes),
                ("remaining_blobs", summary.remaining_blobs),
                ("remaining_bytes", summary.remaining_bytes),
            ],
        )
    );
    Ok(())
}

/// The machine-readable form of `cache stats`: directory, blob count,
/// schema/library fingerprints and the persisted last-run counters
/// (`null` when no characterizing run has recorded any) as one JSON
/// object.
fn stats_json(cache: &apx_cache::Cache) -> String {
    use serde::Value;
    let lib = Library::fdsoi28();
    let dir = match cache.dir() {
        Some(dir) => Value::String(dir.display().to_string()),
        None => Value::Null,
    };
    let last_run = match cache.last_run_stats() {
        Some(run) => Value::Object(vec![
            ("hits".to_owned(), Value::UInt(u128::from(run.hits))),
            ("misses".to_owned(), Value::UInt(u128::from(run.misses))),
            ("writes".to_owned(), Value::UInt(u128::from(run.writes))),
            (
                "evictions".to_owned(),
                Value::UInt(u128::from(run.evictions)),
            ),
            ("imports".to_owned(), Value::UInt(u128::from(run.imports))),
            ("blobs".to_owned(), Value::UInt(u128::from(run.blobs))),
            ("bytes".to_owned(), Value::UInt(u128::from(run.bytes))),
        ]),
        None => Value::Null,
    };
    let stats = cache.stats();
    let object = Value::Object(vec![
        ("dir".to_owned(), dir),
        ("blobs".to_owned(), Value::UInt(u128::from(stats.blobs))),
        ("bytes".to_owned(), Value::UInt(u128::from(stats.bytes))),
        (
            "report_schema_version".to_owned(),
            Value::UInt(u128::from(core_cache::REPORT_SCHEMA_VERSION)),
        ),
        (
            "app_sweep_schema_version".to_owned(),
            Value::UInt(u128::from(core_cache::APP_SWEEP_SCHEMA_VERSION)),
        ),
        (
            "library".to_owned(),
            Value::Object(vec![
                ("name".to_owned(), Value::String(lib.name().to_owned())),
                (
                    "fingerprint".to_owned(),
                    Value::String(core_cache::library_fingerprint(&lib).hex()),
                ),
            ]),
        ),
        ("last_run".to_owned(), last_run),
    ]);
    serde_json::to_string_pretty(&object).expect("JSON rendering is infallible")
}
