//! The exploration subcommands: whole-family sweeps, single-operator
//! reports and report-cache maintenance.

use super::report_cache_use;
use crate::args::Args;
use apx_cells::Library;
use apx_core::{cache as core_cache, query};

/// `apxperf sweep` — characterizes one of the registered §IV families
/// and prints the headline CSV columns of every report; `--workload
/// <NAME>` scores the named application workload over the same
/// configurations instead. `--format csv` makes this the bulk-export
/// path (pipe it into a plotting script). The text itself comes from
/// [`query::sweep_text`] — the same function the serve daemon answers
/// `POST /sweep` with, so served bodies match this stdout byte for byte.
pub(super) fn sweep(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let text = query::sweep_text(
        &Library::fdsoi28(),
        &args.query_params(),
        &args.family,
        args.workload.as_deref(),
        args.format,
        &args.engine(),
        &cache,
    )?;
    print!("{text}");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf report <CONFIG>` — characterizes a single operator named in
/// paper notation (e.g. `ADDt(16,10)`, `ACA(16,4)`, `RCAApx(16,6,3)`)
/// and prints the **full** fused report as pretty JSON: every error
/// metric (positional BER, acceptance probabilities), the hardware
/// record and the verification verdict. The JSON comes from
/// [`query::report_text`] — the exact bytes `GET /report/<CONFIG>`
/// serves.
pub(super) fn report(args: &Args) -> Result<(), String> {
    let spec = args
        .positional
        .first()
        .ok_or_else(|| "expected an operator, e.g. `apxperf report \"ACA(16,4)\"`".to_owned())?;
    let cache = args.cache();
    let (text, _hit) = query::report_text(
        &Library::fdsoi28(),
        &args.query_params(),
        spec,
        &args.engine(),
        &cache,
    )?;
    print!("{text}");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf cache <stats|clear|dir>` — maintenance of the report cache:
/// `stats` prints blob count, on-disk location, the key schema and the
/// hit/miss/write counters persisted by the most recent characterizing
/// run (`--format json` emits all of it machine-readably — the CI
/// warm-run assertions `jq` this instead of grepping stderr); `clear`
/// deletes every blob; `dir` prints just the directory (for shell
/// substitution).
pub(super) fn cache(args: &Args) -> Result<(), String> {
    let action = args.positional.first().map_or("stats", String::as_str);
    let cache = args.cache();
    match action {
        "stats" => {
            if args.format == crate::args::Format::Json {
                println!("{}", stats_json(&cache));
                return Ok(());
            }
            match cache.dir() {
                Some(dir) => {
                    println!("dir:     {}", dir.display());
                    println!("blobs:   {}", cache.len());
                    println!(
                        "schema:  apxperf-operator-report v{}",
                        core_cache::REPORT_SCHEMA_VERSION
                    );
                    println!(
                        "library: {} (fingerprint {})",
                        Library::fdsoi28().name(),
                        core_cache::library_fingerprint(&Library::fdsoi28())
                    );
                    match cache.last_run_stats() {
                        Some(run) => println!(
                            "last run: {} hits, {} misses, {} writes",
                            run.hits, run.misses, run.writes
                        ),
                        None => println!("last run: none recorded"),
                    }
                }
                None => println!("cache disabled (no directory could be derived)"),
            }
            Ok(())
        }
        "clear" => {
            let removed = cache.clear();
            println!("removed {removed} blobs");
            Ok(())
        }
        "dir" => {
            match cache.dir() {
                Some(dir) => println!("{}", dir.display()),
                None => println!(),
            }
            Ok(())
        }
        other => Err(format!("`{other}` is not stats, clear or dir")),
    }
}

/// The machine-readable form of `cache stats`: directory, blob count,
/// schema/library fingerprints and the persisted last-run counters
/// (`null` when no characterizing run has recorded any) as one JSON
/// object.
fn stats_json(cache: &apx_cache::Cache) -> String {
    use serde::Value;
    let lib = Library::fdsoi28();
    let dir = match cache.dir() {
        Some(dir) => Value::String(dir.display().to_string()),
        None => Value::Null,
    };
    let last_run = match cache.last_run_stats() {
        Some(run) => Value::Object(vec![
            ("hits".to_owned(), Value::UInt(u128::from(run.hits))),
            ("misses".to_owned(), Value::UInt(u128::from(run.misses))),
            ("writes".to_owned(), Value::UInt(u128::from(run.writes))),
        ]),
        None => Value::Null,
    };
    let object = Value::Object(vec![
        ("dir".to_owned(), dir),
        ("blobs".to_owned(), Value::UInt(cache.len() as u128)),
        (
            "report_schema_version".to_owned(),
            Value::UInt(u128::from(core_cache::REPORT_SCHEMA_VERSION)),
        ),
        (
            "app_sweep_schema_version".to_owned(),
            Value::UInt(u128::from(core_cache::APP_SWEEP_SCHEMA_VERSION)),
        ),
        (
            "library".to_owned(),
            Value::Object(vec![
                ("name".to_owned(), Value::String(lib.name().to_owned())),
                (
                    "fingerprint".to_owned(),
                    Value::String(core_cache::library_fingerprint(&lib).hex()),
                ),
            ]),
        ),
        ("last_run".to_owned(), last_run),
    ]);
    serde_json::to_string_pretty(&object).expect("JSON rendering is infallible")
}
