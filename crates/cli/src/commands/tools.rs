//! The exploration subcommands: whole-family sweeps, single-operator
//! reports and report-cache maintenance.

use super::{apps, report_cache_use, reports_for, workload_cells};
use crate::args::Args;
use crate::output::{family, render};
use apx_cells::Library;
use apx_core::{cache as core_cache, sweeps, Characterizer, OperatorReport};
use apx_operators::OperatorConfig;

/// `apxperf sweep` — characterizes one of the registered §IV families
/// and prints the headline CSV columns of every report; `--workload
/// <NAME>` scores the named application workload over the same
/// configurations instead. `--format csv` makes this the bulk-export
/// path (pipe it into a plotting script).
pub(super) fn sweep(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let Some(sweep_family) = sweeps::find_family(&args.family) else {
        let names: Vec<&str> = sweeps::FAMILIES.iter().map(|f| f.name).collect();
        return Err(format!(
            "--family: `{}` is not one of {}",
            args.family,
            names.join(", ")
        ));
    };
    let configs: Vec<OperatorConfig> = (sweep_family.configs)();
    if let Some(workload_name) = args.workload.clone() {
        let (workload, cells) = workload_cells(args, &cache, &workload_name, &configs)?;
        println!(
            "SWEEP {} over family `{}` ({} configs)",
            workload.fingerprint(),
            sweep_family.name,
            configs.len()
        );
        print!("{}", apps::render_workload_table(args, &cells));
        report_cache_use(&cache);
        return Ok(());
    }
    let reports = reports_for(args, &cache, &configs);
    // the headline columns of OperatorReport::to_csv_row, cell by cell
    // (not split from the CSV string — the operator name contains commas)
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                family(config).to_owned(),
                r.name.clone(),
                r.verified.to_string(),
                crate::output::fmt(r.error.mse_db, 3),
                crate::output::fmt(r.error.ber, 6),
                crate::output::fmt(r.error.mae, 4),
                crate::output::fmt(r.error.mean_error, 4),
                crate::output::fmt(r.error.error_rate, 6),
                crate::output::fmt(r.hw.area_um2, 2),
                crate::output::fmt(r.hw.delay_ns, 4),
                crate::output::fmt(r.hw.power_mw, 5),
                crate::output::fmt(r.hw.pdp_pj, 6),
            ]
        })
        .collect();
    let mut headers = vec!["family"];
    let header_row = OperatorReport::csv_header();
    headers.extend(header_row.split(','));
    print!("{}", render(args.format, &headers, &rows));
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf report <CONFIG>` — characterizes a single operator named in
/// paper notation (e.g. `ADDt(16,10)`, `ACA(16,4)`, `RCAApx(16,6,3)`)
/// and prints the **full** fused report as pretty JSON: every error
/// metric (positional BER, acceptance probabilities), the hardware
/// record and the verification verdict.
pub(super) fn report(args: &Args) -> Result<(), String> {
    let spec = args
        .positional
        .first()
        .ok_or_else(|| "expected an operator, e.g. `apxperf report \"ACA(16,4)\"`".to_owned())?;
    let config: OperatorConfig = spec.parse().map_err(|e| format!("{e}"))?;
    let cache = args.cache();
    let lib = Library::fdsoi28();
    let report = Characterizer::new(&lib)
        .with_settings(args.settings())
        .with_engine(args.engine())
        .with_cache(cache.clone())
        .characterize(&config);
    let json = report
        .to_json()
        .map_err(|e| format!("report serialization failed: {e}"))?;
    println!("{json}");
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf cache <stats|clear|dir>` — maintenance of the report cache:
/// `stats` prints blob count, on-disk location and the key schema;
/// `clear` deletes every blob; `dir` prints just the directory (for
/// shell substitution).
pub(super) fn cache(args: &Args) -> Result<(), String> {
    let action = args.positional.first().map_or("stats", String::as_str);
    let cache = args.cache();
    match action {
        "stats" => {
            match cache.dir() {
                Some(dir) => {
                    println!("dir:     {}", dir.display());
                    println!("blobs:   {}", cache.len());
                    println!(
                        "schema:  apxperf-operator-report v{}",
                        core_cache::REPORT_SCHEMA_VERSION
                    );
                    println!(
                        "library: {} (fingerprint {})",
                        Library::fdsoi28().name(),
                        core_cache::library_fingerprint(&Library::fdsoi28())
                    );
                }
                None => println!("cache disabled (no directory could be derived)"),
            }
            Ok(())
        }
        "clear" => {
            let removed = cache.clear();
            println!("removed {removed} blobs");
            Ok(())
        }
        "dir" => {
            match cache.dir() {
                Some(dir) => println!("{}", dir.display()),
                None => println!(),
            }
            Ok(())
        }
        other => Err(format!("`{other}` is not stats, clear or dir")),
    }
}
