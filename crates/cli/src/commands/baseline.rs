//! The engineering subcommands: substrate ablations and the timed
//! bench-baseline sweep CI uses to record the performance trajectory.

use super::report_cache_use;
use crate::args::Args;
use crate::output::{fmt, render};
use apx_cells::Library;
use apx_core::{sweeps, Characterizer};
use apx_netlist::power::{self, PowerSettings};
use apx_netlist::{verify, HwAnalyzer};
use apx_operators::{Aam, ApxOperator, OperatorConfig};
use serde::Serialize;
use std::time::Instant;

/// `apxperf ablations` — the design-choice studies: AAM accumulation
/// structure, ABM sign correction, rounding vs truncation, and
/// technology-node independence.
pub(super) fn ablations(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let lib = Library::fdsoi28();
    let mut chz = Characterizer::new(&lib)
        .with_settings(args.settings())
        .with_engine(args.engine())
        .with_cache(cache.clone());

    println!("ABLATION 1: AAM accumulation structure");
    let analyzer = HwAnalyzer::new(&lib);
    let array = analyzer.analyze(&Aam::new(16).netlist());
    let tree = analyzer.analyze(&Aam::new(16).with_tree_compression().netlist());
    print!(
        "{}",
        render(
            args.format,
            &["structure", "area_um2", "delay_ns", "power_mW", "PDP_pJ"],
            &[
                vec![
                    "ripple array".into(),
                    fmt(array.area_um2, 1),
                    fmt(array.delay_ns, 3),
                    fmt(array.power_mw, 4),
                    fmt(array.pdp_pj, 4),
                ],
                vec![
                    "wallace tree".into(),
                    fmt(tree.area_um2, 1),
                    fmt(tree.delay_ns, 3),
                    fmt(tree.power_mw, 4),
                    fmt(tree.pdp_pj, 4),
                ],
            ],
        )
    );

    println!();
    println!("ABLATION 2: ABM sign correction");
    let good = chz.characterize(&OperatorConfig::Abm { n: 16 });
    let bad = chz.characterize(&OperatorConfig::AbmUncorrected { n: 16 });
    print!(
        "{}",
        render(
            args.format,
            &["variant", "MSE_dB", "BER", "area_um2", "PDP_pJ"],
            &[
                vec![
                    good.name.clone(),
                    fmt(good.error.mse_db, 2),
                    fmt(good.error.ber, 3),
                    fmt(good.hw.area_um2, 1),
                    fmt(good.hw.pdp_pj, 4),
                ],
                vec![
                    bad.name.clone(),
                    fmt(bad.error.mse_db, 2),
                    fmt(bad.error.ber, 3),
                    fmt(bad.hw.area_um2, 1),
                    fmt(bad.hw.pdp_pj, 4),
                ],
            ],
        )
    );

    println!();
    println!("ABLATION 3: rounding vs truncation (ADDx(16,10))");
    let tr = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 10 });
    let ro = chz.characterize(&OperatorConfig::AddRound { n: 16, q: 10 });
    print!(
        "{}",
        render(
            args.format,
            &["variant", "MSE_dB", "bias", "area_um2", "PDP_pJ"],
            &[
                vec![
                    tr.name.clone(),
                    fmt(tr.error.mse_db, 2),
                    fmt(tr.error.mean_error, 2),
                    fmt(tr.hw.area_um2, 1),
                    fmt(tr.hw.pdp_pj, 4),
                ],
                vec![
                    ro.name.clone(),
                    fmt(ro.error.mse_db, 2),
                    fmt(ro.error.mean_error, 2),
                    fmt(ro.hw.area_um2, 1),
                    fmt(ro.hw.pdp_pj, 4),
                ],
            ],
        )
    );

    println!();
    println!("ABLATION 4: node independence (ADDt(16,10) vs RCAApx(16,6,3))");
    // At operator level neither side dominates outright (the paper's own
    // observation); what must hold on BOTH nodes is the same qualitative
    // picture: FxP far more accurate, the wire-type RCAApx cheaper, and
    // the MSE gap orders of magnitude wide.
    let mut orderings = Vec::new();
    for lib in [Library::fdsoi28(), Library::generic45()] {
        let mut chz = Characterizer::new(&lib)
            .with_settings(args.settings())
            .with_engine(args.engine())
            .with_cache(cache.clone());
        let fxp = chz.characterize(&OperatorConfig::AddTrunc { n: 16, q: 10 });
        let apx = chz.characterize(&OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: apx_operators::FaType::Three,
        });
        let ordering = (
            fxp.error.mse_db < apx.error.mse_db,
            fxp.hw.pdp_pj > apx.hw.pdp_pj,
        );
        println!(
            "  {}: FxP MSE {} dB / {} pJ vs RCAApx {} dB / {} pJ",
            lib.name(),
            fmt(fxp.error.mse_db, 1),
            fmt(fxp.hw.pdp_pj, 4),
            fmt(apx.error.mse_db, 1),
            fmt(apx.hw.pdp_pj, 4),
        );
        orderings.push(ordering);
    }
    let consistent = orderings.windows(2).all(|w| w[0] == w[1]);
    println!("  qualitative orderings identical across nodes: {consistent}");
    report_cache_use(&cache);
    Ok(())
}

/// One timed stage of the baseline run.
#[derive(Debug, Serialize)]
struct StageRecord {
    stage: String,
    samples: u64,
    seconds: f64,
    samples_per_sec: f64,
}

/// The whole `BENCH_baseline.json` document.
#[derive(Debug, Serialize)]
struct Baseline {
    schema: String,
    threads: usize,
    error_samples: usize,
    power_vectors: usize,
    seed: u64,
    stages: Vec<StageRecord>,
    total_seconds: f64,
}

fn record(stages: &mut Vec<StageRecord>, stage: &str, samples: u64, start: Instant) {
    let seconds = start.elapsed().as_secs_f64();
    stages.push(StageRecord {
        stage: stage.to_owned(),
        samples,
        seconds,
        samples_per_sec: samples as f64 / seconds.max(1e-9),
    });
}

/// `apxperf bench-baseline` — a reduced-sample characterization sweep
/// that times every pipeline stage and emits `BENCH_baseline.json`
/// (samples/sec per stage), so CI can record the performance trajectory
/// PR over PR — and fail the `perf-gate` job when a stage regresses.
/// Always runs **uncached** — it measures compute, not lookup.
pub(super) fn bench_baseline(args: &Args) -> Result<(), String> {
    let lib = Library::fdsoi28();
    // reduced-sample defaults (this is a trend recorder, not a repro
    // run) — applied only when the flag was not explicitly passed, so
    // a deliberate `--samples 100000` is honoured
    let mut settings = args.settings();
    if !args.was_set("samples") {
        settings.error_samples = 20_000;
    }
    if !args.was_set("vectors") {
        settings.power_vectors = 300;
    }
    let engine = args.engine();
    let mut stages = Vec::new();
    let run_start = Instant::now();

    // 1a/1b. error sampling, split by operator class so the perf gate
    // sees adder-path and multiplier-path throughput separately (the
    // multiplier kernels are the ones with order-of-magnitude headroom)
    let adder_configs = [
        OperatorConfig::AddTrunc { n: 16, q: 10 },
        OperatorConfig::Aca { n: 16, p: 8 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: apx_operators::FaType::Three,
        },
    ];
    let mult_configs = [
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Abm { n: 16 },
    ];
    let chz = Characterizer::new(&lib)
        .with_settings(settings)
        .with_engine(engine.clone());
    for (stage, configs) in [
        ("error_sampling_adders", &adder_configs[..]),
        ("error_sampling_multipliers", &mult_configs[..]),
    ] {
        let ops: Vec<Box<dyn ApxOperator>> = configs.iter().map(OperatorConfig::build).collect();
        let start = Instant::now();
        let mut drawn = 0u64;
        for op in &ops {
            drawn += chz.error_stats(op.as_ref()).samples();
        }
        record(&mut stages, stage, drawn, start);
    }

    // 2. random equivalence verification on a 16-bit ACA netlist, with
    // the batched expected side the characterizer itself uses
    let op = OperatorConfig::Aca { n: 16, p: 8 }.build();
    let nl = op.netlist();
    let verify_samples = 10 * settings.error_samples / 4;
    let start = Instant::now();
    verify::verify_random2_batch_with(&nl, verify_samples, settings.seed, &engine, |a, b, out| {
        op.eval_batch(a, b, out);
    })
    .map_err(|e| format!("ACA netlist must match its functional model: {e:?}"))?;
    record(&mut stages, "verification", verify_samples as u64, start);

    // 3. event-driven power vectors on the same netlist
    let start = Instant::now();
    let report = power::estimate_with(
        &nl,
        &lib,
        PowerSettings {
            vectors: settings.power_vectors,
            seed: settings.seed,
        },
        &engine,
    );
    if report.dynamic_power_mw <= 0.0 {
        return Err("power estimation produced no dynamic power".to_owned());
    }
    record(
        &mut stages,
        "power_vectors",
        settings.power_vectors as u64,
        start,
    );

    // 4. the reduced-sample Figs. 3/4 sweep, end to end
    let configs = sweeps::all_adders_16bit();
    let start = Instant::now();
    let reports = sweeps::characterize_all(&lib, settings, &configs, &engine);
    let swept: u64 = reports.iter().map(|r| r.error.samples).sum();
    record(&mut stages, "fig34_adder_sweep", swept, start);
    if !reports.iter().all(|r| r.verified) {
        return Err("a sweep operator failed verification".to_owned());
    }

    let baseline = Baseline {
        schema: "apxperf-bench-baseline/v2".to_owned(),
        threads: engine.threads(),
        error_samples: settings.error_samples,
        power_vectors: settings.power_vectors,
        seed: settings.seed,
        stages,
        total_seconds: run_start.elapsed().as_secs_f64(),
    };

    println!(
        "BENCH baseline: {} threads, {} error samples, {} power vectors",
        baseline.threads, baseline.error_samples, baseline.power_vectors
    );
    let rows: Vec<Vec<String>> = baseline
        .stages
        .iter()
        .map(|s| {
            vec![
                s.stage.clone(),
                s.samples.to_string(),
                fmt(s.seconds, 3),
                fmt(s.samples_per_sec, 0),
            ]
        })
        .collect();
    print!(
        "{}",
        render(
            args.format,
            &["stage", "samples", "seconds", "samples_per_sec"],
            &rows,
        )
    );

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&args.out, json + "\n")
        .map_err(|e| format!("cannot write {}: {e}", args.out))?;
    println!();
    println!("wrote {}", args.out);
    Ok(())
}
