//! `apxperf serve` — the characterization-as-a-service daemon. Thin
//! glue: translate the parsed CLI flags into an [`apx_serve::ServerConfig`],
//! bind, announce the actual address (stdout, flushed, so scripts piping
//! us see it immediately), install the signal handlers and serve until a
//! graceful drain completes.

use crate::args::Args;
use apx_serve::{signal, Server, ServerConfig};
use std::io::Write;

pub(crate) fn serve(args: &Args) -> Result<(), String> {
    let config = ServerConfig {
        addr: args.addr.clone(),
        queue_capacity: args.queue,
        port_file: args.port_file.clone(),
        cache: args.cache(),
        engine: args.engine(),
        defaults: args.query_params(),
        watch_signals: true,
    };
    let server = Server::bind(config)?;
    let addr = server.local_addr();
    println!(
        "apxperf serve: listening on http://{addr}/ (queue {})",
        args.queue
    );
    // stdout is block-buffered when piped; scripts poll this line
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot flush stdout: {e}"))?;
    signal::install();
    server.run();
    println!("apxperf serve: drained, bye");
    Ok(())
}
