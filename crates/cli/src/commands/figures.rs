//! The figure subcommands: the §IV adder trade-off sweeps (Figs. 3/4)
//! and the FFT/JPEG application studies (Figs. 5/6).

use super::{report_cache_use, reports_for};
use crate::args::Args;
use crate::output::{family, fmt, render};
use apx_apps::fft::FftFixture;
use apx_apps::jpeg::JpegFixture;
use apx_apps::OperatorCtx;
use apx_cells::Library;
use apx_core::{appenergy, sweeps};

/// `apxperf fig3` — MSE vs power / delay / PDP / area for every 16-bit
/// adder. Expected shape (paper §IV): fixed-point operators dominate on
/// power and area at equal MSE except at very low accuracy.
pub(super) fn fig3(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::all_adders_16bit();
    let reports = reports_for(args, &cache, &configs);
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                r.name.clone(),
                family(config).to_owned(),
                fmt(r.error.mse_db, 2),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.delay_ns, 3),
                fmt(r.hw.pdp_pj * 1e3, 3),
                fmt(r.hw.area_um2, 1),
                r.verified.to_string(),
            ]
        })
        .collect();
    println!("FIG3: 16-bit adders, MSE (dB, full-scale) vs hardware cost");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "MSE_dB", "power_mW", "delay_ns", "PDP_fJ", "area_um2", "ok"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf fig4` — BER vs hardware cost for the same adders as Fig. 3.
/// On BER the picture flips: approximate adders beat truncated/rounded
/// fixed point, whose dropped output bits flip ~50 % of the time each.
pub(super) fn fig4(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::all_adders_16bit();
    let reports = reports_for(args, &cache, &configs);
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                r.name.clone(),
                family(config).to_owned(),
                fmt(r.error.ber, 4),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.delay_ns, 3),
                fmt(r.hw.pdp_pj * 1e3, 3),
                fmt(r.hw.area_um2, 1),
            ]
        })
        .collect();
    println!("FIG4: 16-bit adders, BER vs hardware cost");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "BER", "power_mW", "delay_ns", "PDP_fJ", "area_um2"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf fig5` — FFT-32 energy (eq. (1)) vs output PSNR with 16-bit
/// adders; exact multipliers are sized to the adder width (the
/// partner-operator rule).
pub(super) fn fig5(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let lib = Library::fdsoi28();
    // legacy fixture seed of the fig5_fft_adders binary; --seed overrides
    let fixture = FftFixture::radix2_32(args.seed_or(0xF17));
    let configs = sweeps::all_adders_16bit();
    let models = appenergy::models_for_adders_cached(
        &lib,
        args.settings(),
        &configs,
        &args.engine(),
        &cache,
    );
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(Some(config.build()), None);
        let result = fixture.run(&mut ctx);
        let energy_pj = model.energy_pj(result.counts);
        rows.push(vec![
            config.to_string(),
            family(config).to_owned(),
            fmt(result.psnr_db, 2),
            fmt(energy_pj, 3),
            fmt(model.adder_pdp_pj * 1e3, 3),
            fmt(model.mult_pdp_pj * 1e3, 3),
        ]);
    }
    println!("FIG5: FFT-32 PSNR vs total PDP (pJ), partner multipliers sized to the adder");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "PSNR_dB", "E_fft_pJ", "E_add_fJ", "E_mul_fJ"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf fig6` — energy of the DCT in JPEG encoding vs output MSSIM
/// with 16-bit adders (quality-90 encoding, synthetic photographic
/// image).
pub(super) fn fig6(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let lib = Library::fdsoi28();
    let size = args.size;
    // legacy fixture seed of the fig6_jpeg_adders binary; --seed overrides
    let fixture = JpegFixture::synthetic(size, 90, args.seed_or(0x1E7A));
    let configs = sweeps::all_adders_16bit();
    let models = appenergy::models_for_adders_cached(
        &lib,
        args.settings(),
        &configs,
        &args.engine(),
        &cache,
    );
    let mut rows = Vec::new();
    for (config, model) in configs.iter().zip(&models) {
        let mut ctx = OperatorCtx::new(Some(config.build()), None);
        let (result, mssim) = fixture.run(&mut ctx);
        // per-block energy keeps numbers readable
        let blocks = (size / 8) * (size / 8);
        let energy_pj = model.energy_pj(result.counts) / blocks as f64;
        rows.push(vec![
            config.to_string(),
            family(config).to_owned(),
            fmt(mssim, 4),
            fmt(energy_pj, 3),
            result.bytes.len().to_string(),
        ]);
    }
    println!("FIG6: JPEG (q=90, {size}x{size}) MSSIM vs DCT energy per 8x8 block (pJ)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "MSSIM", "E_dct_pJ/blk", "stream_B"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}
