//! The figure subcommands: the §IV adder trade-off sweeps (Figs. 3/4)
//! and the FFT/JPEG application studies (Figs. 5/6).

use super::{report_cache_use, reports_for, workload_cells};
use crate::args::Args;
use crate::output::{family, fmt, render};
use apx_core::sweeps;

/// `apxperf fig3` — MSE vs power / delay / PDP / area for every 16-bit
/// adder. Expected shape (paper §IV): fixed-point operators dominate on
/// power and area at equal MSE except at very low accuracy.
pub(super) fn fig3(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::all_adders_16bit();
    let reports = reports_for(args, &cache, &configs);
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                r.name.clone(),
                family(config).to_owned(),
                fmt(r.error.mse_db, 2),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.delay_ns, 3),
                fmt(r.hw.pdp_pj * 1e3, 3),
                fmt(r.hw.area_um2, 1),
                r.verified.to_string(),
            ]
        })
        .collect();
    println!("FIG3: 16-bit adders, MSE (dB, full-scale) vs hardware cost");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "MSE_dB", "power_mW", "delay_ns", "PDP_fJ", "area_um2", "ok"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf fig4` — BER vs hardware cost for the same adders as Fig. 3.
/// On BER the picture flips: approximate adders beat truncated/rounded
/// fixed point, whose dropped output bits flip ~50 % of the time each.
pub(super) fn fig4(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::all_adders_16bit();
    let reports = reports_for(args, &cache, &configs);
    let rows: Vec<Vec<String>> = configs
        .iter()
        .zip(&reports)
        .map(|(config, r)| {
            vec![
                r.name.clone(),
                family(config).to_owned(),
                fmt(r.error.ber, 4),
                fmt(r.hw.power_mw, 5),
                fmt(r.hw.delay_ns, 3),
                fmt(r.hw.pdp_pj * 1e3, 3),
                fmt(r.hw.area_um2, 1),
            ]
        })
        .collect();
    println!("FIG4: 16-bit adders, BER vs hardware cost");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "BER", "power_mW", "delay_ns", "PDP_fJ", "area_um2"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf fig5` — FFT-32 energy (eq. (1)) vs output PSNR with 16-bit
/// adders; exact multipliers are sized to the adder width (the
/// partner-operator rule). A thin alias over the `fft` workload of the
/// registry — the default output is byte-identical to the pre-registry
/// implementation (pinned by `tests/cli_golden.rs`).
pub(super) fn fig5(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let configs = sweeps::all_adders_16bit();
    let (_, cells) = workload_cells(args, &cache, "fft", &configs)?;
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                family(&cell.config).to_owned(),
                fmt(cell.run.score.value(), 2),
                fmt(cell.model.energy_pj(cell.run.counts), 3),
                fmt(cell.model.adder_pdp_pj * 1e3, 3),
                fmt(cell.model.mult_pdp_pj * 1e3, 3),
            ]
        })
        .collect();
    println!("FIG5: FFT-32 PSNR vs total PDP (pJ), partner multipliers sized to the adder");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "PSNR_dB", "E_fft_pJ", "E_add_fJ", "E_mul_fJ"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf fig6` — energy of the DCT in JPEG encoding vs output MSSIM
/// with 16-bit adders (quality-90 encoding, synthetic photographic
/// image). A thin alias over the `jpeg` workload of the registry; the
/// stream length rides on the workload's `stream_bytes` aux output.
pub(super) fn fig6(args: &Args) -> Result<(), String> {
    let cache = args.cache();
    let size = args.size;
    let configs = sweeps::all_adders_16bit();
    let (_, cells) = workload_cells(args, &cache, "jpeg", &configs)?;
    // per-block energy keeps numbers readable
    let blocks = (size / 8) * (size / 8);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|cell| {
            vec![
                cell.config.to_string(),
                family(&cell.config).to_owned(),
                fmt(cell.run.score.value(), 4),
                fmt(cell.model.energy_pj(cell.run.counts) / blocks as f64, 3),
                (cell.run.aux("stream_bytes").unwrap_or(0.0) as u64).to_string(),
            ]
        })
        .collect();
    println!("FIG6: JPEG (q=90, {size}x{size}) MSSIM vs DCT energy per 8x8 block (pJ)");
    print!(
        "{}",
        render(
            args.format,
            &["operator", "family", "MSSIM", "E_dct_pJ/blk", "stream_B"],
            &rows,
        )
    );
    report_cache_use(&cache);
    Ok(())
}
