//! `apxperf pareto` — the paper's headline comparison as one command:
//! sweep a workload over approximate families **and** the `Sized`
//! data-sizing baseline, compute the strict-dominance quality–energy
//! front, and flag every approximate configuration that a sized-exact
//! operator dominates.

use super::{report_cache_use, resolve_workload};
use crate::args::Args;
use crate::output::{family, fmt, render};
use apx_cells::Library;
use apx_core::pareto::{workload_pareto, ParetoEntry};
use apx_core::sweeps;
use apx_operators::OperatorConfig;

/// Assembles the overlay configuration list: the selected approximate
/// family (or everything under `--all`) plus the full Sized baseline,
/// first occurrence winning on duplicates (the exact operators belong to
/// both sides).
fn overlay_configs(args: &Args) -> Result<Vec<OperatorConfig>, String> {
    if args.all && args.was_set("family") {
        return Err("--family and --all are mutually exclusive".to_owned());
    }
    let family_name = if args.all {
        "all"
    } else {
        args.family_or("points")
    };
    let sweep_family = sweeps::find_family(family_name).ok_or_else(|| {
        format!("--family: `{family_name}` is not a registered family — see `apxperf list`")
    })?;
    let mut configs = (sweep_family.configs)();
    configs.extend(sweeps::sized_baseline_16bit());
    let mut seen = Vec::with_capacity(configs.len());
    configs.retain(|config| {
        let fresh = !seen.contains(config);
        if fresh {
            seen.push(*config);
        }
        fresh
    });
    Ok(configs)
}

/// Renders the overlay table: one row per configuration with its role
/// (sized baseline vs approximation), quality/energy coordinates, front
/// membership and — for dominated rows — the dominating config's name.
fn render_overlay(args: &Args, entries: &[ParetoEntry]) -> String {
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|entry| {
            let dominated_by = entry
                .verdict
                .dominated_by
                .map_or_else(|| "-".to_owned(), |i| entries[i].cell.config.to_string());
            vec![
                entry.cell.config.to_string(),
                family(&entry.cell.config).to_owned(),
                if entry.sized { "sized" } else { "approx" }.to_owned(),
                entry.cell.run.score.metric().to_owned(),
                fmt(entry.sample.quality, 4),
                fmt(entry.sample.energy, 3),
                if entry.verdict.on_front { "yes" } else { "no" }.to_owned(),
                dominated_by,
            ]
        })
        .collect();
    render(
        args.format,
        &[
            "operator",
            "family",
            "role",
            "metric",
            "score",
            "E_app_pJ",
            "front",
            "dominated_by",
        ],
        &rows,
    )
}

/// `apxperf pareto --workload NAME [--family F|--all]` — overlays the
/// approximate families against the sized-exact baseline on one
/// quality–energy plot and reports the strict-dominance front. The
/// summary counts how many approximate configurations a sized-exact
/// operator dominates: the paper's "hidden cost", as a number.
pub(super) fn pareto(args: &Args) -> Result<(), String> {
    let name = args.workload.as_deref().ok_or_else(|| {
        "pareto needs --workload <NAME>, e.g. `apxperf pareto --workload fir --all` \
         (see `apxperf list`)"
            .to_owned()
    })?;
    let configs = overlay_configs(args)?;
    let cache = args.cache();
    let (workload, seed) = resolve_workload(args, name)?;
    let lib = Library::fdsoi28();
    let entries = workload_pareto(
        workload.as_ref(),
        seed,
        &lib,
        args.settings(),
        &configs,
        &args.engine(),
        &cache,
    );
    println!(
        "PARETO {} over {} + sized baseline ({} configs)",
        workload.fingerprint(),
        if args.all {
            "`all` families".to_owned()
        } else {
            format!("family `{}`", args.family_or("points"))
        },
        entries.len()
    );
    print!("{}", render_overlay(args, &entries));
    let front = entries.iter().filter(|e| e.verdict.on_front).count();
    let sized_dominated = entries
        .iter()
        .filter(|e| !e.sized && e.verdict.dominated_by.is_some_and(|i| entries[i].sized))
        .count();
    println!(
        "front: {front} of {} configs; {sized_dominated} approximate configs dominated by the \
         sized baseline",
        entries.len()
    );
    report_cache_use(&cache);
    Ok(())
}
