//! `apxperf pareto` — the paper's headline comparison as one command:
//! sweep a workload over approximate families **and** the `Sized`
//! data-sizing baseline, compute the strict-dominance quality–energy
//! front, and flag every approximate configuration that a sized-exact
//! operator dominates.

use super::report_cache_use;
use crate::args::Args;
use apx_cells::Library;
use apx_core::query;

/// `apxperf pareto --workload NAME [--family F|--all]` — overlays the
/// approximate families against the sized-exact baseline on one
/// quality–energy plot and reports the strict-dominance front. The
/// summary counts how many approximate configurations a sized-exact
/// operator dominates: the paper's "hidden cost", as a number. The whole
/// output comes from [`query::pareto_text`] — the same function the
/// serve daemon answers `POST /pareto` with, so served bodies match this
/// stdout byte for byte.
pub(super) fn pareto(args: &Args) -> Result<(), String> {
    let name = args.workload.as_deref().ok_or_else(|| {
        "pareto needs --workload <NAME>, e.g. `apxperf pareto --workload fir --all` \
         (see `apxperf list`)"
            .to_owned()
    })?;
    let cache = args.cache();
    let text = query::pareto_text(
        &Library::fdsoi28(),
        &args.query_params(),
        name,
        args.was_set("family").then_some(args.family.as_str()),
        args.all,
        args.format,
        &args.engine(),
        &cache,
    )?;
    print!("{text}");
    report_cache_use(&cache);
    Ok(())
}
