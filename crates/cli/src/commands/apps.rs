//! The workload subcommands: `apxperf app <NAME>` runs any registered
//! application workload over an operator family, and `apxperf list`
//! prints both registries — the discoverability entry point.

use super::{report_cache_use, workload_cells};
use crate::args::Args;
use apx_core::appenergy::WorkloadCell;
use apx_core::{query, sweeps};

/// The uniform workload result table shared by `app` and
/// `sweep --workload` — rendered by [`query::workload_table`], the same
/// function the serve daemon uses, so served sweeps match this stdout
/// byte for byte.
pub(super) fn render_workload_table(args: &Args, cells: &[WorkloadCell]) -> String {
    query::workload_table(args.format, cells)
}

/// `apxperf app <WORKLOAD>` — runs one registered workload over an
/// operator family (default: the named operating points of Tables
/// III/V, the small representative set) and prints the scored sweep.
/// Everything a figure/table alias does, for any workload in the
/// registry — new case studies get this command for free.
pub(super) fn app(args: &Args) -> Result<(), String> {
    let name = args.positional.first().ok_or_else(|| {
        "expected a workload name, e.g. `apxperf app fir` (see `apxperf list`)".to_owned()
    })?;
    let family_name = args.family_or("points");
    let sweep_family = sweeps::find_family(family_name).ok_or_else(|| {
        format!("--family: `{family_name}` is not a registered family — see `apxperf list`")
    })?;
    let configs = (sweep_family.configs)();
    let cache = args.cache();
    let (workload, cells) = workload_cells(args, &cache, name, &configs)?;
    println!(
        "APP {} over family `{}` ({} configs)",
        workload.fingerprint(),
        sweep_family.name,
        configs.len()
    );
    print!("{}", render_workload_table(args, &cells));
    report_cache_use(&cache);
    Ok(())
}

/// `apxperf list` — the registered workloads and operator families with
/// their one-line descriptions, driven by the same registries the
/// subcommands resolve against (so the listing cannot drift from what
/// actually runs). With `--sites`, prints each workload's declared
/// call-sites and op classes instead — the assignment targets of
/// `apxperf tune`.
pub(super) fn list(args: &Args) -> Result<(), String> {
    if args.sites {
        return list_sites();
    }
    println!("Workloads (apxperf app <NAME>, or sweep --workload <NAME>):");
    for entry in apx_apps::WORKLOADS {
        println!("  {:<12}{}", entry.name, entry.summary);
    }
    println!();
    println!("Operator families (--family <NAME>):");
    for sweep_family in sweeps::FAMILIES {
        println!("  {:<12}{}", sweep_family.name, sweep_family.summary);
    }
    Ok(())
}

/// `apxperf list --sites` — every workload's declared call-sites, with
/// the op classes that may fire there. Driven by [`Workload::sites`],
/// the same declaration `tune` assigns over, so the listing cannot
/// drift from what the search actually tunes.
///
/// [`Workload::sites`]: apx_apps::Workload::sites
fn list_sites() -> Result<(), String> {
    println!("Workload call-sites (the assignment targets of `apxperf tune`):");
    for entry in apx_apps::WORKLOADS {
        let workload = (entry.build)(&apx_apps::WorkloadParams::default())?;
        println!("  {}", entry.name);
        for spec in workload.sites() {
            println!(
                "    {:<18}{:<9}{}",
                spec.tag,
                spec.ops.label(),
                spec.summary
            );
        }
    }
    Ok(())
}
