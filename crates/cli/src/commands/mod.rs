//! The `apxperf` subcommand registry: one entry per paper figure/table
//! plus the sweep/report/cache utilities — the twelve former standalone
//! binaries as cached subcommands of a single CLI.

use crate::args::Args;
use apx_apps::Workload;
use apx_cache::Cache;
use apx_cells::Library;
use apx_core::appenergy::{self, WorkloadCell};
use apx_core::{sweeps, OperatorReport};
use apx_operators::OperatorConfig;

mod apps;
mod baseline;
mod figures;
mod pareto;
mod serve;
mod tables;
mod tools;
mod tune;

/// One registered subcommand.
#[derive(Clone, Copy)]
pub struct Command {
    /// Subcommand name as typed on the command line.
    pub name: &'static str,
    /// One-line description (global help and the README table).
    pub summary: &'static str,
    /// Usage text of the positional arguments (empty when none).
    pub positional: &'static str,
    /// Maximum number of positional arguments accepted.
    pub max_positional: usize,
    /// Flags this subcommand accepts (names into [`crate::args::FLAGS`]).
    pub flags: &'static [&'static str],
    /// Entry point. `Err` carries a user-facing message.
    pub run: fn(&Args) -> Result<(), String>,
}

/// Flags of the pure characterization sweeps (figures and operator
/// tables).
const SWEEP_FLAGS: &[&str] = &[
    "samples",
    "vectors",
    "seed",
    "threads",
    "cache-dir",
    "no-cache",
    "format",
];

/// Sweep flags plus the workload-size knob (image-based applications).
const SIZED_FLAGS: &[&str] = &[
    "samples",
    "vectors",
    "seed",
    "threads",
    "size",
    "cache-dir",
    "no-cache",
    "format",
];

/// Sweep flags plus the K-means workload knobs.
const KMEANS_FLAGS: &[&str] = &[
    "samples",
    "vectors",
    "seed",
    "threads",
    "sets",
    "points",
    "cache-dir",
    "no-cache",
    "format",
];

/// Every `apxperf` subcommand, in help order.
pub const COMMANDS: &[Command] = &[
    Command {
        name: "fig3",
        summary: "Fig. 3 — 16-bit adder MSE (dB) vs. hardware cost",
        positional: "",
        max_positional: 0,
        flags: SWEEP_FLAGS,
        run: figures::fig3,
    },
    Command {
        name: "fig4",
        summary: "Fig. 4 — 16-bit adder BER vs. hardware cost",
        positional: "",
        max_positional: 0,
        flags: SWEEP_FLAGS,
        run: figures::fig4,
    },
    Command {
        name: "fig5",
        summary: "Fig. 5 — FFT-32 PSNR vs. adder energy (sized partners)",
        positional: "",
        max_positional: 0,
        flags: SWEEP_FLAGS,
        run: figures::fig5,
    },
    Command {
        name: "fig6",
        summary: "Fig. 6 — JPEG MSSIM vs. DCT energy per block",
        positional: "",
        max_positional: 0,
        flags: SIZED_FLAGS,
        run: figures::fig6,
    },
    Command {
        name: "table1",
        summary: "Table I — 16-bit fixed-width multipliers",
        positional: "",
        max_positional: 0,
        flags: SWEEP_FLAGS,
        run: tables::table1,
    },
    Command {
        name: "table2",
        summary: "Table II — FFT-32 with 16-bit multipliers",
        positional: "",
        max_positional: 0,
        flags: SWEEP_FLAGS,
        run: tables::table2,
    },
    Command {
        name: "table3",
        summary: "Table III — HEVC MC filter with 16-bit adders",
        positional: "",
        max_positional: 0,
        flags: SIZED_FLAGS,
        run: tables::table3,
    },
    Command {
        name: "table4",
        summary: "Table IV — HEVC MC filter with 16-bit multipliers",
        positional: "",
        max_positional: 0,
        flags: SIZED_FLAGS,
        run: tables::table4,
    },
    Command {
        name: "table5",
        summary: "Table V — K-means with 16-bit adders",
        positional: "",
        max_positional: 0,
        flags: KMEANS_FLAGS,
        run: tables::table5,
    },
    Command {
        name: "table6",
        summary: "Table VI — K-means with 16-bit multipliers",
        positional: "",
        max_positional: 0,
        flags: KMEANS_FLAGS,
        run: tables::table6,
    },
    Command {
        name: "app",
        summary: "Run any registered workload over an operator family",
        positional: "<WORKLOAD>",
        max_positional: 1,
        flags: &[
            "family",
            "samples",
            "vectors",
            "seed",
            "threads",
            "size",
            "sets",
            "points",
            "cache-dir",
            "no-cache",
            "format",
        ],
        run: apps::app,
    },
    Command {
        name: "pareto",
        summary: "Quality-energy Pareto overlay: approximate families vs the Sized baseline",
        positional: "",
        max_positional: 0,
        flags: &[
            "workload",
            "family",
            "all",
            "samples",
            "vectors",
            "seed",
            "threads",
            "size",
            "sets",
            "points",
            "cache-dir",
            "no-cache",
            "format",
        ],
        run: pareto::pareto,
    },
    Command {
        name: "tune",
        summary: "Quality-budget auto-tuner: cheapest per-call-site operator assignment",
        positional: "",
        max_positional: 0,
        flags: &[
            "workload",
            "budget",
            "families",
            "samples",
            "vectors",
            "seed",
            "threads",
            "size",
            "sets",
            "points",
            "cache-dir",
            "no-cache",
            "format",
        ],
        run: tune::tune,
    },
    Command {
        name: "list",
        summary: "List registered workloads, operator families and call-sites",
        positional: "",
        max_positional: 0,
        flags: &["sites"],
        run: apps::list,
    },
    Command {
        name: "ablations",
        summary: "Substrate ablations (compression, ABM correction, nodes)",
        positional: "",
        max_positional: 0,
        flags: SWEEP_FLAGS,
        run: baseline::ablations,
    },
    Command {
        name: "bench-baseline",
        summary:
            "Timed sweep -> BENCH_baseline.json (defaults reduced: 20000 samples, 300 vectors)",
        positional: "",
        max_positional: 0,
        flags: &["samples", "vectors", "seed", "threads", "out", "format"],
        run: baseline::bench_baseline,
    },
    Command {
        name: "sweep",
        summary: "Characterize a whole operator family (CSV/JSON-friendly)",
        positional: "",
        max_positional: 0,
        flags: &[
            "family",
            "workload",
            "samples",
            "vectors",
            "seed",
            "threads",
            "size",
            "sets",
            "points",
            "cache-dir",
            "no-cache",
            "format",
        ],
        run: tools::sweep,
    },
    Command {
        name: "report",
        summary: "Characterize one operator (paper notation) -> full JSON report",
        positional: "<CONFIG>",
        max_positional: 1,
        flags: SWEEP_FLAGS,
        run: tools::report,
    },
    Command {
        name: "cache",
        summary: "Report-cache fleet ops (stats | clear | dir | pack | fetch | merge | gc)",
        positional: "<stats|clear|dir|pack|fetch|merge|gc> [ARCHIVE]",
        max_positional: 2,
        flags: &[
            "cache-dir",
            "cache-capacity",
            "max-bytes",
            "format",
            "family",
            "workload",
            "samples",
            "vectors",
            "seed",
            "size",
            "sets",
            "points",
        ],
        run: tools::cache,
    },
    Command {
        name: "serve",
        summary: "Characterization-as-a-service HTTP daemon (report/sweep/pareto/stats)",
        positional: "",
        max_positional: 0,
        flags: &[
            "addr",
            "port-file",
            "queue",
            "samples",
            "vectors",
            "seed",
            "threads",
            "cache-dir",
            "cache-capacity",
            "no-cache",
        ],
        run: serve::serve,
    },
];

/// Looks a subcommand up by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static Command> {
    COMMANDS.iter().find(|c| c.name == name)
}

/// The standard sweep runner behind the figure/table subcommands:
/// characterize `configs` against the paper's library on the selected
/// engine, through the caller's cache handle (one handle per run, so the
/// end-of-run stats cover everything).
pub(crate) fn reports_for(
    args: &Args,
    cache: &Cache,
    configs: &[OperatorConfig],
) -> Vec<OperatorReport> {
    let lib = Library::fdsoi28();
    sweeps::characterize_all_cached(&lib, args.settings(), configs, &args.engine(), cache)
}

/// Resolves a workload name against the registry, builds the instance
/// from the shared CLI parameters, and picks its legacy fixture seed
/// unless `--seed` was given explicitly — the common front half of
/// [`workload_cells`] and the `pareto` overlay.
pub(crate) fn resolve_workload(
    args: &Args,
    name: &str,
) -> Result<(Box<dyn Workload>, u64), String> {
    apx_core::query::resolve_workload(&args.query_params(), name)
}

/// The standard application-sweep runner behind `app`, `sweep
/// --workload` and every figure/table case-study alias: resolve the
/// named workload ([`resolve_workload`]) and run the engine-parallel,
/// cache-aware cell sweep of `apx_core::appenergy`.
pub(crate) fn workload_cells(
    args: &Args,
    cache: &Cache,
    name: &str,
    configs: &[OperatorConfig],
) -> Result<(Box<dyn Workload>, Vec<WorkloadCell>), String> {
    let (workload, seed) = resolve_workload(args, name)?;
    let lib = Library::fdsoi28();
    let cells = appenergy::sweep_workload_cached(
        workload.as_ref(),
        seed,
        &lib,
        args.settings(),
        configs,
        &args.engine(),
        cache,
    );
    Ok((workload, cells))
}

/// Prints the end-of-run cache summary to **stderr** — stdout carries
/// only the results, so cold and warm runs remain byte-identical there
/// (CI diffs them) while the operator still sees what the cache did —
/// and persists the counters into the cache directory so a later
/// `apxperf cache stats --format json` can report the last run's
/// traffic machine-readably (the CI assertion path).
pub(crate) fn report_cache_use(cache: &Cache) {
    if !cache.is_enabled() {
        return;
    }
    let stats = cache.stats();
    if stats.hits + stats.misses + stats.writes == 0 {
        return;
    }
    cache.persist_run_stats();
    eprintln!(
        "cache: {} hits, {} misses, {} writes ({})",
        stats.hits,
        stats.misses,
        stats.writes,
        cache
            .dir()
            .map_or_else(|| "?".to_owned(), |d| d.display().to_string()),
    );
}
