//! The one shared argument parser behind every `apxperf` subcommand.
//!
//! Before the unified CLI, each of the twelve repro binaries hand-rolled
//! its own `--key value` loop with slightly different flag sets and help
//! text. This module replaces all of them: flags are declared once in
//! [`FLAGS`] with their defaults and help strings, every subcommand names
//! the subset it accepts, and both parsing and `--help` rendering are
//! derived from the same table — so usage output is consistent by
//! construction.

use apx_apps::WorkloadParams;
use apx_cache::Cache;
use apx_core::query::QueryParams;
use apx_core::{CharacterizerSettings, Engine};
use std::path::PathBuf;

pub use apx_core::output::Format;

/// One declared flag: spelling, value placeholder (empty for boolean
/// switches), default shown in help, and help text.
#[derive(Debug, Clone, Copy)]
pub struct FlagSpec {
    /// Flag name without the leading `--`.
    pub name: &'static str,
    /// Placeholder for the value in usage text; `""` marks a boolean
    /// switch that takes no value.
    pub value: &'static str,
    /// Default rendered in help text.
    pub default: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// Every flag any subcommand accepts — the single source of truth for
/// parsing and help rendering.
pub const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "samples",
        value: "N",
        default: "100000",
        help: "error-characterization samples per operator",
    },
    FlagSpec {
        name: "vectors",
        value: "N",
        default: "1500",
        help: "gate-level power-estimation vectors per operator",
    },
    FlagSpec {
        name: "seed",
        value: "N",
        default: "0xDA7E2017",
        help: "master seed (decimal or 0x-hex); every number derives from it",
    },
    FlagSpec {
        name: "threads",
        value: "N",
        default: "auto",
        help: "engine workers; never changes any reported number, only the wall-clock",
    },
    FlagSpec {
        name: "size",
        value: "N",
        default: "128",
        help: "workload size where applicable (image edge length)",
    },
    FlagSpec {
        name: "sets",
        value: "N",
        default: "5",
        help: "K-means data sets",
    },
    FlagSpec {
        name: "points",
        value: "N",
        default: "500",
        help: "K-means points per set",
    },
    FlagSpec {
        name: "cache-dir",
        value: "PATH",
        default: "~/.cache/apxperf",
        help: "report-cache directory (also via APXPERF_CACHE_DIR)",
    },
    FlagSpec {
        name: "no-cache",
        value: "",
        default: "",
        help: "disable the report cache for this run",
    },
    FlagSpec {
        name: "cache-capacity",
        value: "BYTES",
        default: "off",
        help: "cap the cache dir: every write evicts LRU blobs down to this budget (K/M/G suffixes; also via APXPERF_CACHE_CAPACITY)",
    },
    FlagSpec {
        name: "max-bytes",
        value: "BYTES",
        default: "none",
        help: "cache gc: evict least-recently-used blobs until the dir is at most this size (K/M/G suffixes)",
    },
    FlagSpec {
        name: "format",
        value: "json|csv|tty",
        default: "tty",
        help: "output format for tables",
    },
    FlagSpec {
        name: "out",
        value: "PATH",
        default: "BENCH_baseline.json",
        help: "output file of the bench-baseline record",
    },
    FlagSpec {
        name: "family",
        value: "NAME",
        default: "adders",
        help: "operator family to sweep (see `apxperf list`)",
    },
    FlagSpec {
        name: "workload",
        value: "NAME",
        default: "off",
        help: "also score the named application workload over the swept configs",
    },
    FlagSpec {
        name: "all",
        value: "",
        default: "",
        help: "overlay every approximate family (adders + multipliers) at once",
    },
    FlagSpec {
        name: "budget",
        value: "EXPR",
        default: "none",
        help: "quality budget for tune: `>=30dB`, `<=1dB`, `>=95%` or `<=2%`",
    },
    FlagSpec {
        name: "families",
        value: "LIST",
        default: "points,sized",
        help: "comma-separated candidate families for tune (see `apxperf list`)",
    },
    FlagSpec {
        name: "sites",
        value: "",
        default: "",
        help: "list each workload's declared call-sites and op classes instead",
    },
    FlagSpec {
        name: "addr",
        value: "HOST:PORT",
        default: "127.0.0.1:8787",
        help: "serve: listen address (port 0 binds an ephemeral port)",
    },
    FlagSpec {
        name: "port-file",
        value: "PATH",
        default: "off",
        help: "serve: write the actual bound address to PATH once listening",
    },
    FlagSpec {
        name: "queue",
        value: "N",
        default: "32",
        help: "serve: bounded job-queue capacity for POST /sweep and /pareto",
    },
];

fn spec(name: &str) -> Option<&'static FlagSpec> {
    FLAGS.iter().find(|f| f.name == name)
}

/// Fully parsed arguments of one subcommand invocation.
#[derive(Debug, Clone)]
pub struct Args {
    /// `--samples`.
    pub samples: usize,
    /// `--vectors`.
    pub vectors: usize,
    /// `--seed`.
    pub seed: u64,
    /// `--threads` (0 = auto: `APXPERF_THREADS` / machine parallelism).
    pub threads: usize,
    /// `--size`.
    pub size: usize,
    /// `--sets`.
    pub sets: usize,
    /// `--points`.
    pub points: usize,
    /// `--cache-dir`.
    pub cache_dir: Option<PathBuf>,
    /// `--no-cache`.
    pub no_cache: bool,
    /// `--cache-capacity` (`None` when uncapped).
    pub cache_capacity: Option<u64>,
    /// `--max-bytes` (`None` when not requested; `cache gc` requires it).
    pub max_bytes: Option<u64>,
    /// `--format`.
    pub format: Format,
    /// `--out`.
    pub out: String,
    /// `--family`.
    pub family: String,
    /// `--workload` (`None` when not requested).
    pub workload: Option<String>,
    /// `--all`.
    pub all: bool,
    /// `--budget` (`None` when not requested).
    pub budget: Option<String>,
    /// `--families` (`None` when not requested).
    pub families: Option<String>,
    /// `--sites`.
    pub sites: bool,
    /// `--addr` (the serve listen address).
    pub addr: String,
    /// `--port-file` (`None` when not requested).
    pub port_file: Option<PathBuf>,
    /// `--queue` (serve job-queue capacity).
    pub queue: usize,
    /// Positional (non-flag) arguments, in order.
    pub positional: Vec<String>,
    /// Names of the flags the user explicitly passed (lets commands
    /// distinguish "defaulted" from "deliberately set to the default").
    explicit: Vec<&'static str>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            samples: 100_000,
            vectors: 1_500,
            seed: 0xDA7E_2017,
            threads: 0,
            size: 128,
            sets: 5,
            points: 500,
            cache_dir: None,
            no_cache: false,
            cache_capacity: None,
            max_bytes: None,
            format: Format::Tty,
            out: "BENCH_baseline.json".to_owned(),
            family: "adders".to_owned(),
            workload: None,
            all: false,
            budget: None,
            families: None,
            sites: false,
            addr: "127.0.0.1:8787".to_owned(),
            port_file: None,
            queue: 32,
            positional: Vec::new(),
            explicit: Vec::new(),
        }
    }
}

fn parse_int(flag: &str, value: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse::<u64>()
    };
    parsed.map_err(|_| format!("--{flag}: `{value}` is not an integer"))
}

/// A byte size: a plain integer (decimal or 0x-hex) with an optional
/// `K`/`M`/`G`/`T` suffix (powers of 1024, case-insensitive) — so cache
/// budgets read naturally: `--max-bytes 64M`.
fn parse_bytes(flag: &str, value: &str) -> Result<u64, String> {
    let (number, shift) = match value.chars().last().map(|c| c.to_ascii_uppercase()) {
        Some('K') => (&value[..value.len() - 1], 10),
        Some('M') => (&value[..value.len() - 1], 20),
        Some('G') => (&value[..value.len() - 1], 30),
        Some('T') => (&value[..value.len() - 1], 40),
        _ => (value, 0),
    };
    let base = parse_int(flag, number)
        .map_err(|_| format!("--{flag}: `{value}` is not a byte size (e.g. 1048576 or 64M)"))?;
    base.checked_shl(shift)
        .filter(|scaled| scaled >> shift == base)
        .ok_or_else(|| format!("--{flag}: `{value}` overflows"))
}

/// [`parse_int`] for engine knobs that cannot meaningfully be zero
/// (`--threads 0`, `--samples 0`, `--vectors 0` would panic or produce
/// NaN metrics deep in the pipeline — reject them at the door instead).
fn parse_positive(flag: &str, value: &str) -> Result<u64, String> {
    match parse_int(flag, value)? {
        0 => Err(format!(
            "--{flag}: must be at least 1 (omit the flag for the default)"
        )),
        n => Ok(n),
    }
}

impl Args {
    /// Parses `argv` (everything after the subcommand name), accepting
    /// only the flags named in `accepted` plus up to `max_positional`
    /// positional arguments. Errors carry a user-facing message; callers
    /// append the subcommand usage.
    pub fn parse(
        argv: &[String],
        accepted: &[&str],
        max_positional: usize,
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = argv.iter();
        while let Some(token) = iter.next() {
            let Some(name) = token.strip_prefix("--") else {
                if args.positional.len() >= max_positional {
                    return Err(format!("unexpected argument `{token}`"));
                }
                args.positional.push(token.clone());
                continue;
            };
            let Some(known) = spec(name) else {
                return Err(format!("unknown flag --{name}"));
            };
            if !accepted.contains(&name) {
                return Err(format!("--{name} is not accepted by this subcommand"));
            }
            args.explicit.push(known.name);
            if name == "no-cache" {
                args.no_cache = true;
                continue;
            }
            if name == "all" {
                args.all = true;
                continue;
            }
            if name == "sites" {
                args.sites = true;
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("--{name} expects a value"))?;
            match name {
                "samples" => args.samples = parse_positive(name, value)? as usize,
                "vectors" => args.vectors = parse_positive(name, value)? as usize,
                "seed" => args.seed = parse_int(name, value)?,
                "threads" => args.threads = parse_positive(name, value)? as usize,
                "size" => args.size = parse_int(name, value)? as usize,
                "sets" => args.sets = parse_int(name, value)? as usize,
                "points" => args.points = parse_int(name, value)? as usize,
                "cache-dir" => args.cache_dir = Some(PathBuf::from(value)),
                "cache-capacity" => args.cache_capacity = Some(parse_bytes(name, value)?),
                "max-bytes" => args.max_bytes = Some(parse_bytes(name, value)?),
                "format" => args.format = Format::parse(value)?,
                "out" => args.out = value.clone(),
                "family" => args.family = value.clone(),
                "workload" => args.workload = Some(value.clone()),
                "budget" => args.budget = Some(value.clone()),
                "families" => args.families = Some(value.clone()),
                "addr" => args.addr = value.clone(),
                "port-file" => args.port_file = Some(PathBuf::from(value)),
                "queue" => args.queue = parse_positive(name, value)? as usize,
                other => return Err(format!("unknown flag --{other}")),
            }
        }
        Ok(args)
    }

    /// Whether the user explicitly passed `--<name>` (as opposed to the
    /// value being the built-in default).
    #[must_use]
    pub fn was_set(&self, name: &str) -> bool {
        self.explicit.contains(&name)
    }

    /// `--seed` when explicitly given, otherwise `default` — used by the
    /// application subcommands to keep the workload-fixture seeds of the
    /// former standalone binaries, so default outputs stay comparable
    /// run over run and PR over PR.
    #[must_use]
    pub fn seed_or(&self, default: u64) -> u64 {
        if self.was_set("seed") {
            self.seed
        } else {
            default
        }
    }

    /// `--family` when explicitly given, otherwise `default` — lets the
    /// `app` subcommand default to the small named-operating-points
    /// family while `sweep` keeps its historical `adders` default.
    #[must_use]
    pub fn family_or<'a>(&'a self, default: &'a str) -> &'a str {
        if self.was_set("family") {
            &self.family
        } else {
            default
        }
    }

    /// The shared query parameters these arguments select — the same
    /// [`QueryParams`] the serve daemon resolves request bodies into, so
    /// CLI and server derive identical settings (and cache keys) from
    /// identical inputs.
    #[must_use]
    pub fn query_params(&self) -> QueryParams {
        QueryParams {
            samples: self.samples,
            vectors: self.vectors,
            seed: self.was_set("seed").then_some(self.seed),
            size: self.size,
            sets: self.sets,
            points: self.points,
        }
    }

    /// The workload-shaping parameters these arguments select
    /// (`--size`/`--sets`/`--points` mapped onto the shared
    /// [`WorkloadParams`] every registry constructor takes).
    #[must_use]
    pub fn workload_params(&self) -> WorkloadParams {
        self.query_params().workload_params()
    }

    /// The characterizer settings these arguments select (the repro
    /// preset: 2 000 verification vectors, exhaustive up to 16 operand
    /// bits).
    #[must_use]
    pub fn settings(&self) -> CharacterizerSettings {
        CharacterizerSettings {
            seed: self.seed,
            ..self.query_params().settings()
        }
    }

    /// The execution engine: `--threads N` wins, otherwise
    /// `APXPERF_THREADS` / machine parallelism.
    #[must_use]
    pub fn engine(&self) -> Engine {
        match self.threads {
            0 => Engine::from_env(),
            n => Engine::new(n),
        }
    }

    /// The report cache: `--no-cache` disables it, `--cache-dir` pins the
    /// directory (otherwise `APXPERF_CACHE_DIR` / `~/.cache/apxperf`;
    /// disabled when no location can be derived), and `--cache-capacity`
    /// caps it at write time (otherwise `APXPERF_CACHE_CAPACITY`).
    #[must_use]
    pub fn cache(&self) -> Cache {
        if self.no_cache {
            return Cache::default();
        }
        let mut config = Cache::builder().from_env();
        if let Some(dir) = &self.cache_dir {
            config = config.dir(dir);
        }
        if let Some(capacity) = self.cache_capacity {
            config = config.capacity_bytes(capacity);
        }
        config.open()
    }
}

/// Renders the uniform usage text of one subcommand: name, summary,
/// positional arguments, and the accepted flags with their defaults —
/// always in [`FLAGS`] order, so every subcommand's help reads the same.
#[must_use]
pub fn usage(name: &str, summary: &str, positional: &str, accepted: &[&str]) -> String {
    let mut text = String::new();
    text.push_str(&format!("{summary}\n\nUsage: apxperf {name}"));
    if !positional.is_empty() {
        text.push_str(&format!(" {positional}"));
    }
    text.push_str(" [OPTIONS]\n\nOptions:\n");
    for flag in FLAGS.iter().filter(|f| accepted.contains(&f.name)) {
        let head = if flag.value.is_empty() {
            format!("  --{}", flag.name)
        } else {
            format!("  --{} <{}>", flag.name, flag.value)
        };
        let default = if flag.default.is_empty() {
            String::new()
        } else {
            format!(" [default: {}]", flag.default)
        };
        text.push_str(&format!("{head:<26}{}{default}\n", flag.help));
    }
    text.push_str("  --help                  print this help\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[&str] = &[
        "samples",
        "vectors",
        "seed",
        "threads",
        "cache-dir",
        "no-cache",
        "format",
    ];

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_match_the_documented_values() {
        let args = Args::parse(&[], ALL, 0).unwrap();
        assert_eq!(args.samples, 100_000);
        assert_eq!(args.vectors, 1_500);
        assert_eq!(args.seed, 0xDA7E_2017);
        assert_eq!(args.threads, 0);
        assert_eq!(args.format, Format::Tty);
        assert!(!args.no_cache);
        let settings = args.settings();
        assert_eq!(settings.error_samples, 100_000);
        assert_eq!(settings.seed, 0xDA7E_2017);
    }

    #[test]
    fn flags_parse_including_hex_seeds_and_switches() {
        let args = Args::parse(
            &argv(&[
                "--samples",
                "2000",
                "--seed",
                "0xBEEF",
                "--no-cache",
                "--format",
                "csv",
                "--threads",
                "4",
            ]),
            ALL,
            0,
        )
        .unwrap();
        assert_eq!(args.samples, 2000);
        assert_eq!(args.seed, 0xBEEF);
        assert!(args.no_cache);
        assert_eq!(args.format, Format::Csv);
        assert_eq!(args.engine().threads(), 4);
        assert!(!args.cache().is_enabled());
    }

    #[test]
    fn rejects_unknown_and_unaccepted_flags() {
        let err = Args::parse(&argv(&["--bogus", "1"]), ALL, 0).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        let err = Args::parse(&argv(&["--size", "64"]), ALL, 0).unwrap_err();
        assert!(err.contains("not accepted"), "{err}");
        let err = Args::parse(&argv(&["--samples"]), ALL, 0).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
        let err = Args::parse(&argv(&["--samples", "many"]), ALL, 0).unwrap_err();
        assert!(err.contains("not an integer"), "{err}");
        let err = Args::parse(&argv(&["--format", "xml"]), ALL, 0).unwrap_err();
        assert!(err.contains("json, csv or tty"), "{err}");
    }

    #[test]
    fn zero_engine_knobs_are_clean_errors_not_panics_or_fallthroughs() {
        // --threads 0 used to silently fall through to "auto"; now every
        // zero engine knob is rejected at parse time with a message
        for flag in ["threads", "samples", "vectors"] {
            let err = Args::parse(&argv(&[&format!("--{flag}"), "0"]), ALL, 0).unwrap_err();
            assert!(err.contains("at least 1"), "--{flag} 0: {err}");
        }
        // 1 stays valid, and the default threads=0 still means "auto"
        let args = Args::parse(&argv(&["--threads", "1"]), ALL, 0).unwrap();
        assert_eq!(args.engine().threads(), 1);
        assert_eq!(Args::parse(&[], ALL, 0).unwrap().threads, 0);
    }

    #[test]
    fn all_switch_parses() {
        let args = Args::parse(&argv(&["--all"]), &["all"], 0).unwrap();
        assert!(args.all);
        assert!(args.was_set("all"));
        assert!(!Args::parse(&[], &["all"], 0).unwrap().all);
    }

    #[test]
    fn tune_flags_and_sites_switch_parse() {
        let args = Args::parse(
            &argv(&["--budget", ">=30dB", "--families", "points,sized"]),
            &["budget", "families"],
            0,
        )
        .unwrap();
        assert_eq!(args.budget.as_deref(), Some(">=30dB"));
        assert_eq!(args.families.as_deref(), Some("points,sized"));
        let defaulted = Args::parse(&[], &["budget", "families"], 0).unwrap();
        assert_eq!(defaulted.budget, None);
        assert_eq!(defaulted.families, None);
        let args = Args::parse(&argv(&["--sites"]), &["sites"], 0).unwrap();
        assert!(args.sites);
        assert!(!Args::parse(&[], &["sites"], 0).unwrap().sites);
    }

    #[test]
    fn positional_arguments_are_bounded() {
        let args = Args::parse(&argv(&["ACA(16,4)"]), ALL, 1).unwrap();
        assert_eq!(args.positional, vec!["ACA(16,4)".to_owned()]);
        let err = Args::parse(&argv(&["a", "b"]), ALL, 1).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn workload_flag_and_param_helpers() {
        let args = Args::parse(
            &argv(&["--workload", "fir", "--size", "64", "--family", "all"]),
            &["workload", "size", "family"],
            0,
        )
        .unwrap();
        assert_eq!(args.workload.as_deref(), Some("fir"));
        assert_eq!(args.family_or("points"), "all", "explicit --family wins");
        let params = args.workload_params();
        assert_eq!(params.size, 64);
        assert_eq!(params.sets, 5);
        let defaulted = Args::parse(&[], &["family"], 0).unwrap();
        assert_eq!(defaulted.workload, None);
        assert_eq!(defaulted.family_or("points"), "points");
    }

    #[test]
    fn cache_dir_flag_pins_the_directory() {
        let args = Args::parse(&argv(&["--cache-dir", "/tmp/apx"]), ALL, 0).unwrap();
        let cache = args.cache();
        assert!(cache.is_enabled());
        assert_eq!(cache.dir(), Some(std::path::Path::new("/tmp/apx")));
    }

    #[test]
    fn byte_size_flags_parse_with_suffixes() {
        let accepted = &["cache-capacity", "max-bytes"][..];
        let args = Args::parse(
            &argv(&["--cache-capacity", "64M", "--max-bytes", "1048576"]),
            accepted,
            0,
        )
        .unwrap();
        assert_eq!(args.cache_capacity, Some(64 << 20));
        assert_eq!(args.max_bytes, Some(1 << 20));
        let args = Args::parse(&argv(&["--max-bytes", "2g"]), accepted, 0).unwrap();
        assert_eq!(args.max_bytes, Some(2 << 30));
        let args = Args::parse(&argv(&["--max-bytes", "0x10K"]), accepted, 0).unwrap();
        assert_eq!(args.max_bytes, Some(16 << 10));
        let err = Args::parse(&argv(&["--max-bytes", "lots"]), accepted, 0).unwrap_err();
        assert!(err.contains("byte size"), "{err}");
        let err = Args::parse(&argv(&["--max-bytes", "99999999T"]), accepted, 0).unwrap_err();
        assert!(err.contains("overflows"), "{err}");
        // defaults: uncapped, no gc budget
        let defaulted = Args::parse(&[], accepted, 0).unwrap();
        assert_eq!(defaulted.cache_capacity, None);
        assert_eq!(defaulted.max_bytes, None);
    }

    #[test]
    fn usage_lists_exactly_the_accepted_flags() {
        let text = usage("demo", "Demo command.", "", &["samples", "no-cache"]);
        assert!(text.contains("--samples <N>"));
        assert!(text.contains("--no-cache"));
        assert!(text.contains("--help"));
        assert!(!text.contains("--vectors"));
        assert!(text.contains("Usage: apxperf demo [OPTIONS]"));
    }

    #[test]
    fn every_flag_spec_is_well_formed() {
        for flag in FLAGS {
            assert!(!flag.name.is_empty());
            assert!(!flag.help.is_empty());
            // switches have no default; valued flags document theirs
            assert_eq!(
                flag.value.is_empty(),
                flag.default.is_empty(),
                "{}",
                flag.name
            );
        }
    }
}
