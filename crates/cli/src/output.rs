//! Table rendering — since the serve daemon landed this lives in
//! [`apx_core::output`] so the CLI and the server render through the
//! same code (byte-identical output by construction); this module
//! re-exports it for the CLI's historical paths.

pub use apx_core::output::{family, fmt, render, Format};
