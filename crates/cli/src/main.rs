//! The `apxperf` binary: a thin shell over [`apx_cli::run`].

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(apx_cli::run(&argv));
}
