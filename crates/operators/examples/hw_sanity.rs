//! Prints hardware characterization of the paper's Table I operators plus
//! the 16-bit adder anchors — used to calibrate the cell library.

use apx_cells::Library;
use apx_netlist::{AnalysisSettings, HwAnalyzer};
use apx_operators::OperatorConfig;

fn main() {
    let lib = Library::fdsoi28();
    let analyzer = HwAnalyzer::new(&lib).with_settings(AnalysisSettings {
        power_vectors: 1000,
        seed: 7,
    });
    let configs = [
        OperatorConfig::AddExact { n: 16 },
        OperatorConfig::AddTrunc { n: 16, q: 8 },
        OperatorConfig::Aca { n: 16, p: 4 },
        OperatorConfig::EtaIv { n: 16, x: 4 },
        OperatorConfig::RcaApx {
            n: 16,
            m: 8,
            fa_type: apx_operators::FaType::One,
        },
        OperatorConfig::MulTrunc { n: 16, q: 16 },
        OperatorConfig::Aam { n: 16 },
        OperatorConfig::Abm { n: 16 },
        OperatorConfig::AbmUncorrected { n: 16 },
    ];
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "op", "area um2", "delay ns", "power mW", "pdp pJ", "gates"
    );
    for config in configs {
        let op = config.build();
        let r = analyzer.analyze(&op.netlist());
        println!(
            "{:<16} {:>9.1} {:>9.3} {:>9.4} {:>9.4} {:>7}",
            op.name(),
            r.area_um2,
            r.delay_ns,
            r.power_mw,
            r.pdp_pj,
            r.num_gates
        );
    }
}
