//! The operator abstraction shared by fixed-point and approximate
//! arithmetic units.

use crate::util::{mask_u, sext, to_u};
use apx_netlist::Netlist;
use serde::{Deserialize, Serialize};

/// Whether an operator is an adder or a multiplier — this determines the
/// exact reference and the full-scale normalization of error metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Two-operand adder: reference is the mod-2ⁿ sum (the paper uses the
    /// N-bit output of the accurate adder as reference).
    Adder,
    /// Two-operand signed multiplier: reference is the full 2N-bit
    /// two's-complement product.
    Multiplier,
}

/// A two-operand arithmetic operator with a bit-accurate functional model
/// and a structural hardware model.
///
/// Implementors are the concrete operator types of this crate
/// ([`crate::AddTrunc`], [`crate::Aca`], [`crate::Aam`], …). The
/// characterization framework treats them uniformly through this trait.
///
/// # Example
/// ```
/// use apx_operators::{Aca, ApxOperator};
/// let aca = Aca::new(8, 3);
/// // speculative carry may fail: compare against the exact sum
/// let wrong = (0..=255u64)
///     .flat_map(|a| (0..=255u64).map(move |b| (a, b)))
///     .filter(|&(a, b)| aca.aligned_u(a, b) != aca.reference_u(a, b))
///     .count();
/// assert!(wrong > 0); // it is approximate...
/// assert!(wrong < 65536 / 4); // ...but mostly correct
/// ```
pub trait ApxOperator: Send + Sync {
    /// Short unique name, e.g. `"ADDt(16,12)"`, matching the paper's
    /// notation where one exists.
    fn name(&self) -> String;

    /// Adder or multiplier.
    fn op_class(&self) -> OpClass;

    /// Width `n` of each input operand in bits.
    fn input_bits(&self) -> u32;

    /// Width of the raw operator output in bits.
    fn output_bits(&self) -> u32;

    /// Left shift aligning the raw output to the reference scale.
    fn output_shift(&self) -> u32 {
        0
    }

    /// Width of the exact reference output
    /// (`n` for adders, `2n` for multipliers).
    fn ref_bits(&self) -> u32 {
        match self.op_class() {
            OpClass::Adder => self.input_bits(),
            OpClass::Multiplier => 2 * self.input_bits(),
        }
    }

    /// Full-scale exponent used for MSE normalization: errors are measured
    /// relative to `2^fullscale_bits` (the Q-format full scale: `n-1` for
    /// adders, `2n-2` for multipliers — see DESIGN.md §4).
    fn fullscale_bits(&self) -> u32 {
        match self.op_class() {
            OpClass::Adder => self.input_bits() - 1,
            OpClass::Multiplier => 2 * self.input_bits() - 2,
        }
    }

    /// Raw output of the operator for masked unsigned operand patterns.
    fn eval_u(&self, a: u64, b: u64) -> u64;

    /// Batched form of [`ApxOperator::eval_u`]: `out[i] = eval_u(a[i],
    /// b[i])`.
    ///
    /// The default is the scalar loop; operators whose scalar model walks
    /// the bits one by one (the speculative and approximate-cell adders)
    /// override it with a 64-lane bitsliced kernel — the same
    /// transpose-and-sweep trick as the gate-level
    /// [`apx_netlist::Sim64`], applied to the functional model. Overrides
    /// must be extensionally equal to the scalar loop; a property test
    /// pins this for every operator family.
    ///
    /// # Panics
    /// Panics unless `a`, `b` and `out` have equal lengths.
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = self.eval_u(ai, bi);
        }
    }

    /// Whether [`ApxOperator::eval_batch`] is an accelerated override
    /// (64-lane bitsliced or word-parallel) rather than the scalar
    /// fallback loop above.
    ///
    /// Purely introspective — callers must not branch on it for
    /// correctness. It exists so the batch-coverage test can enumerate
    /// every [`crate::OperatorConfig`] family and fail the build when a
    /// family ships with the scalar default path.
    fn batch_accelerated(&self) -> bool {
        false
    }

    /// Batched form of [`ApxOperator::reference_u`].
    ///
    /// # Panics
    /// Panics unless `a`, `b` and `out` have equal lengths.
    fn reference_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = self.reference_u(ai, bi);
        }
    }

    /// Batched form of [`ApxOperator::aligned_u`], built on
    /// [`ApxOperator::eval_batch`] so bitsliced overrides accelerate the
    /// error-characterization path for free.
    ///
    /// # Panics
    /// Panics unless `a`, `b` and `out` have equal lengths.
    fn aligned_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        self.eval_batch(a, b, out);
        let shift = self.output_shift();
        let mask = mask_u(self.ref_bits());
        for o in out.iter_mut() {
            *o = (*o << shift) & mask;
        }
    }

    /// Exact reference output at [`ApxOperator::ref_bits`] width.
    fn reference_u(&self, a: u64, b: u64) -> u64 {
        let n = self.input_bits();
        match self.op_class() {
            OpClass::Adder => a.wrapping_add(b) & mask_u(n),
            OpClass::Multiplier => {
                let p = sext(a, n).wrapping_mul(sext(b, n));
                to_u(p, self.ref_bits())
            }
        }
    }

    /// Raw output aligned to the reference scale
    /// (`eval_u << output_shift`, masked to `ref_bits`).
    fn aligned_u(&self, a: u64, b: u64) -> u64 {
        (self.eval_u(a, b) << self.output_shift()) & mask_u(self.ref_bits())
    }

    /// Structural gate-level netlist with input buses `a`, `b` (each
    /// [`ApxOperator::input_bits`] wide) and output bus `y`
    /// ([`ApxOperator::output_bits`] wide).
    fn netlist(&self) -> Netlist;

    /// Signed evaluation convenience: interprets operands as signed,
    /// applies the operator and sign-extends the aligned result.
    fn eval_signed(&self, a: i64, b: i64) -> i64 {
        let n = self.input_bits();
        let aligned = self.aligned_u(to_u(a, n), to_u(b, n));
        sext(aligned, self.ref_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AddExact;

    #[test]
    fn reference_of_adder_wraps_mod_2n() {
        let op = AddExact::new(8);
        assert_eq!(op.reference_u(0xFF, 0x01), 0x00);
        assert_eq!(op.reference_u(0x7F, 0x01), 0x80);
    }

    #[test]
    fn reference_of_multiplier_is_signed() {
        let op = crate::MulExact::new(4);
        // -1 * -1 = 1
        assert_eq!(op.reference_u(0xF, 0xF), 1);
        // -8 * 7 = -56 -> two's complement at 8 bits
        assert_eq!(op.reference_u(0x8, 0x7), to_u(-56, 8));
    }

    #[test]
    fn eval_signed_matches_reference_for_exact_ops() {
        let add = AddExact::new(16);
        assert_eq!(add.eval_signed(100, -300), -200);
        let mul = crate::MulExact::new(16);
        assert_eq!(mul.eval_signed(-1234, 567), -1234 * 567);
    }
}
