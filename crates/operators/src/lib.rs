//! Functional and hardware models of every operator compared in the paper.
//!
//! Two families are implemented, mirroring §II of Barrois et al. (DATE 2017):
//!
//! * **Fixed-point (FxP) operators** — accurate adders/multipliers whose
//!   data bit-width is *carefully sized*: [`AddExact`], [`AddTrunc`],
//!   [`AddRound`], [`MulExact`], [`MulTrunc`], [`MulRound`],
//!   [`MulBoothExact`]. Their only error source is quantization
//!   (truncation/rounding of dropped LSBs).
//! * **Approximate operators** — structurally simplified hardware:
//!   the adders [`Aca`] (Almost Correct Adder, Verma et al.), [`EtaIv`]
//!   (Error-Tolerant Adder IV, Zhu et al.), [`RcaApx`] (approximate
//!   ripple-carry adder with IMPACT-style approximate full-adder cells,
//!   Gupta et al.), and the multipliers [`Aam`] (fixed-width array
//!   multiplier with diagonal compensation, Van et al.) and [`Abm`]
//!   (pruned modified-Booth multiplier, Juang & Hsiao; plus the
//!   [`AbmUncorrected`] variant reproducing the catastrophic instance
//!   measured in the paper).
//!
//! Every operator exposes **both** a bit-accurate functional model
//! ([`ApxOperator::eval_u`]) and a structural gate-level netlist
//! ([`ApxOperator::netlist`]); the two are cross-verified by the
//! framework, exactly like the C vs. VHDL equivalence check of APXPERF.
//!
//! # Conventions
//!
//! Operands are `n`-bit two's-complement values carried in the low bits of
//! `u64`. Adders are bit-level sign-agnostic (mod-2ⁿ); multipliers are
//! signed (Baugh-Wooley / modified-Booth). The raw operator output is
//! [`ApxOperator::output_bits`] wide and must be left-shifted by
//! [`ApxOperator::output_shift`] to sit at the scale of the exact
//! reference, which is [`ApxOperator::ref_bits`] wide.
//!
//! # Example
//!
//! ```
//! use apx_operators::{AddTrunc, ApxOperator};
//!
//! let op = AddTrunc::new(16, 12); // 16-bit operands, 12-bit output
//! let (a, b) = (0x1234, 0x0FF7);
//! let approx = op.aligned_u(a, b);
//! let exact = op.reference_u(a, b);
//! assert_eq!(exact, 0x222B);
//! assert_eq!(approx, 0x2220); // 4 LSBs truncated away
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adders;
mod config;
mod context;
mod mul_array;
mod mul_booth;
mod sized;
mod traits;
pub(crate) mod util;

pub use adders::{Aca, AddExact, AddRound, AddTrunc, EtaIi, EtaIv, FaType, RcaApx};
pub use config::{OperatorConfig, ParseConfigError};
pub use context::{
    ArithContext, CountingCtx, ExactCtx, HeteroCtx, OpCounts, OperatorCtx, SiteCounts, SiteMap,
    SiteOps, SiteSpec, DEFAULT_SITE,
};
pub use mul_array::{Aam, MulExact, MulRound, MulTrunc};
pub use mul_booth::{Abm, AbmUncorrected, MulBoothExact};
pub use sized::{QuantMode, SizedAdd, SizedMul};
pub use traits::{ApxOperator, OpClass};
pub use util::{centered_diff, mask_u, sext, to_u};
