//! Serializable operator configurations — the sweep currency of the
//! framework (the paper sweeps "all possible combinations of parameters",
//! §IV).

use crate::adders::{Aca, AddExact, AddRound, AddTrunc, EtaIi, EtaIv, FaType, RcaApx};
use crate::mul_array::{Aam, MulExact, MulRound, MulTrunc};
use crate::mul_booth::{Abm, AbmUncorrected, MulBoothExact};
use crate::traits::{ApxOperator, OpClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value-level description of one operator instance.
///
/// `OperatorConfig` is what sweeps enumerate, what reports record, and what
/// [`OperatorConfig::build`] turns into a live [`ApxOperator`].
///
/// # Example
/// ```
/// use apx_operators::OperatorConfig;
/// let op = OperatorConfig::Aca { n: 16, p: 4 }.build();
/// assert_eq!(op.name(), "ACA(16,4)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorConfig {
    /// Exact `n`-bit adder.
    AddExact {
        /// Operand width.
        n: u32,
    },
    /// Truncated fixed-point adder (`q` output bits kept).
    AddTrunc {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Rounded fixed-point adder (`q` output bits kept).
    AddRound {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Almost Correct Adder with carry speculation length `p`.
    Aca {
        /// Operand width.
        n: u32,
        /// Carry speculation window.
        p: u32,
    },
    /// Error-Tolerant Adder IV with block size `x`.
    EtaIv {
        /// Operand width.
        n: u32,
        /// Block size (divides `n`).
        x: u32,
    },
    /// Error-Tolerant Adder II (one-block speculation, ETAIV's
    /// predecessor).
    EtaIi {
        /// Operand width.
        n: u32,
        /// Block size (divides `n`).
        x: u32,
    },
    /// IMPACT approximate ripple-carry adder with `m` accurate MSBs.
    RcaApx {
        /// Operand width.
        n: u32,
        /// Accurate MSB count.
        m: u32,
        /// Approximate full-adder flavour.
        fa_type: FaType,
    },
    /// Exact `n×n → 2n` array multiplier.
    MulExact {
        /// Operand width.
        n: u32,
    },
    /// Truncated fixed-width multiplier (`q` of `2n` bits kept).
    MulTrunc {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Rounded fixed-width multiplier.
    MulRound {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Exact radix-4 modified-Booth multiplier.
    MulBooth {
        /// Operand width (even).
        n: u32,
    },
    /// Van-style approximate array multiplier (fixed width `n`).
    Aam {
        /// Operand width.
        n: u32,
    },
    /// Juang-style pruned Booth multiplier (sign-correct).
    Abm {
        /// Operand width (even).
        n: u32,
    },
    /// Pruned Booth multiplier without sign correction (paper-shape ABM).
    AbmUncorrected {
        /// Operand width (even).
        n: u32,
    },
}

impl OperatorConfig {
    /// Instantiates the operator.
    ///
    /// # Panics
    /// Panics if the parameters are out of range for the operator family
    /// (see the constructors of the concrete types).
    #[must_use]
    pub fn build(&self) -> Box<dyn ApxOperator> {
        match *self {
            OperatorConfig::AddExact { n } => Box::new(AddExact::new(n)),
            OperatorConfig::AddTrunc { n, q } => Box::new(AddTrunc::new(n, q)),
            OperatorConfig::AddRound { n, q } => Box::new(AddRound::new(n, q)),
            OperatorConfig::Aca { n, p } => Box::new(Aca::new(n, p)),
            OperatorConfig::EtaIv { n, x } => Box::new(EtaIv::new(n, x)),
            OperatorConfig::EtaIi { n, x } => Box::new(EtaIi::new(n, x)),
            OperatorConfig::RcaApx { n, m, fa_type } => Box::new(RcaApx::new(n, m, fa_type)),
            OperatorConfig::MulExact { n } => Box::new(MulExact::new(n)),
            OperatorConfig::MulTrunc { n, q } => Box::new(MulTrunc::new(n, q)),
            OperatorConfig::MulRound { n, q } => Box::new(MulRound::new(n, q)),
            OperatorConfig::MulBooth { n } => Box::new(MulBoothExact::new(n)),
            OperatorConfig::Aam { n } => Box::new(Aam::new(n)),
            OperatorConfig::Abm { n } => Box::new(Abm::new(n)),
            OperatorConfig::AbmUncorrected { n } => Box::new(AbmUncorrected::new(n)),
        }
    }

    /// Adder or multiplier (without building the operator).
    #[must_use]
    pub fn op_class(&self) -> OpClass {
        match self {
            OperatorConfig::AddExact { .. }
            | OperatorConfig::AddTrunc { .. }
            | OperatorConfig::AddRound { .. }
            | OperatorConfig::Aca { .. }
            | OperatorConfig::EtaIv { .. }
            | OperatorConfig::EtaIi { .. }
            | OperatorConfig::RcaApx { .. } => OpClass::Adder,
            _ => OpClass::Multiplier,
        }
    }

    /// Whether this is a carefully-sized fixed-point operator (the
    /// truncation/rounding family) as opposed to a functional
    /// approximation.
    #[must_use]
    pub fn is_fixed_point(&self) -> bool {
        matches!(
            self,
            OperatorConfig::AddExact { .. }
                | OperatorConfig::AddTrunc { .. }
                | OperatorConfig::AddRound { .. }
                | OperatorConfig::MulExact { .. }
                | OperatorConfig::MulTrunc { .. }
                | OperatorConfig::MulRound { .. }
                | OperatorConfig::MulBooth { .. }
        )
    }

    /// Operand width `n`.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        match *self {
            OperatorConfig::AddExact { n }
            | OperatorConfig::AddTrunc { n, .. }
            | OperatorConfig::AddRound { n, .. }
            | OperatorConfig::Aca { n, .. }
            | OperatorConfig::EtaIv { n, .. }
            | OperatorConfig::EtaIi { n, .. }
            | OperatorConfig::RcaApx { n, .. }
            | OperatorConfig::MulExact { n }
            | OperatorConfig::MulTrunc { n, .. }
            | OperatorConfig::MulRound { n, .. }
            | OperatorConfig::MulBooth { n }
            | OperatorConfig::Aam { n }
            | OperatorConfig::Abm { n }
            | OperatorConfig::AbmUncorrected { n } => n,
        }
    }
}

impl fmt::Display for OperatorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.build().name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_roundtrips_names() {
        let configs = [
            (OperatorConfig::AddTrunc { n: 16, q: 10 }, "ADDt(16,10)"),
            (OperatorConfig::Aca { n: 16, p: 12 }, "ACA(16,12)"),
            (OperatorConfig::EtaIv { n: 16, x: 4 }, "ETAIV(16,4)"),
            (
                OperatorConfig::RcaApx {
                    n: 16,
                    m: 6,
                    fa_type: FaType::Three,
                },
                "RCAApx(16,6,3)",
            ),
            (OperatorConfig::MulTrunc { n: 16, q: 16 }, "MULt(16,16)"),
            (OperatorConfig::Aam { n: 16 }, "AAM(16)"),
            (OperatorConfig::Abm { n: 16 }, "ABM(16)"),
            (OperatorConfig::AbmUncorrected { n: 16 }, "ABMu(16)"),
        ];
        for (config, name) in configs {
            assert_eq!(config.to_string(), name);
        }
    }

    #[test]
    fn class_partitioning_is_consistent_with_built_operator() {
        let configs = [
            OperatorConfig::AddExact { n: 8 },
            OperatorConfig::Aca { n: 8, p: 2 },
            OperatorConfig::MulExact { n: 8 },
            OperatorConfig::Abm { n: 8 },
        ];
        for config in configs {
            assert_eq!(config.op_class(), config.build().op_class());
            assert_eq!(config.input_bits(), config.build().input_bits());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let config = OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Two,
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: OperatorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
