//! Serializable operator configurations — the sweep currency of the
//! framework (the paper sweeps "all possible combinations of parameters",
//! §IV).

use crate::adders::{Aca, AddExact, AddRound, AddTrunc, EtaIi, EtaIv, FaType, RcaApx};
use crate::mul_array::{Aam, MulExact, MulRound, MulTrunc};
use crate::mul_booth::{Abm, AbmUncorrected, MulBoothExact};
use crate::sized::{QuantMode, SizedAdd, SizedMul};
use crate::traits::{ApxOperator, OpClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A value-level description of one operator instance.
///
/// `OperatorConfig` is what sweeps enumerate, what reports record, and what
/// [`OperatorConfig::build`] turns into a live [`ApxOperator`].
///
/// # Example
/// ```
/// use apx_operators::OperatorConfig;
/// let op = OperatorConfig::Aca { n: 16, p: 4 }.build();
/// assert_eq!(op.name(), "ACA(16,4)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorConfig {
    /// Exact `n`-bit adder.
    AddExact {
        /// Operand width.
        n: u32,
    },
    /// Truncated fixed-point adder (`q` output bits kept).
    AddTrunc {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Rounded fixed-point adder (`q` output bits kept).
    AddRound {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Almost Correct Adder with carry speculation length `p`.
    Aca {
        /// Operand width.
        n: u32,
        /// Carry speculation window.
        p: u32,
    },
    /// Error-Tolerant Adder IV with block size `x`.
    EtaIv {
        /// Operand width.
        n: u32,
        /// Block size (divides `n`).
        x: u32,
    },
    /// Error-Tolerant Adder II (one-block speculation, ETAIV's
    /// predecessor).
    EtaIi {
        /// Operand width.
        n: u32,
        /// Block size (divides `n`).
        x: u32,
    },
    /// IMPACT approximate ripple-carry adder with `m` accurate MSBs.
    RcaApx {
        /// Operand width.
        n: u32,
        /// Accurate MSB count.
        m: u32,
        /// Approximate full-adder flavour.
        fa_type: FaType,
    },
    /// Exact `n×n → 2n` array multiplier.
    MulExact {
        /// Operand width.
        n: u32,
    },
    /// Truncated fixed-width multiplier (`q` of `2n` bits kept).
    MulTrunc {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Rounded fixed-width multiplier.
    MulRound {
        /// Operand width.
        n: u32,
        /// Kept output bits.
        q: u32,
    },
    /// Exact radix-4 modified-Booth multiplier.
    MulBooth {
        /// Operand width (even).
        n: u32,
    },
    /// Van-style approximate array multiplier (fixed width `n`).
    Aam {
        /// Operand width.
        n: u32,
    },
    /// Juang-style pruned Booth multiplier (sign-correct).
    Abm {
        /// Operand width (even).
        n: u32,
    },
    /// Pruned Booth multiplier without sign correction (paper-shape ABM).
    AbmUncorrected {
        /// Operand width (even).
        n: u32,
    },
    /// Sized exact adder: inputs quantized to `w` effective bits
    /// (truncation or round-to-nearest), then an exact `w`-bit addition —
    /// the data-sizing baseline family.
    AddSized {
        /// Interface operand width.
        n: u32,
        /// Effective operand width after input quantization.
        w: u32,
        /// Input quantization mode.
        mode: QuantMode,
    },
    /// Sized exact multiplier: inputs quantized to `w` effective bits,
    /// then an exact `w×w → 2w` multiplication (the array itself
    /// shrinks, unlike the output-truncated `MULt`).
    MulSized {
        /// Interface operand width.
        n: u32,
        /// Effective operand width after input quantization.
        w: u32,
        /// Input quantization mode.
        mode: QuantMode,
    },
}

impl OperatorConfig {
    /// Instantiates the operator.
    ///
    /// # Panics
    /// Panics if the parameters are out of range for the operator family
    /// (see the constructors of the concrete types).
    #[must_use]
    pub fn build(&self) -> Box<dyn ApxOperator> {
        match *self {
            OperatorConfig::AddExact { n } => Box::new(AddExact::new(n)),
            OperatorConfig::AddTrunc { n, q } => Box::new(AddTrunc::new(n, q)),
            OperatorConfig::AddRound { n, q } => Box::new(AddRound::new(n, q)),
            OperatorConfig::Aca { n, p } => Box::new(Aca::new(n, p)),
            OperatorConfig::EtaIv { n, x } => Box::new(EtaIv::new(n, x)),
            OperatorConfig::EtaIi { n, x } => Box::new(EtaIi::new(n, x)),
            OperatorConfig::RcaApx { n, m, fa_type } => Box::new(RcaApx::new(n, m, fa_type)),
            OperatorConfig::MulExact { n } => Box::new(MulExact::new(n)),
            OperatorConfig::MulTrunc { n, q } => Box::new(MulTrunc::new(n, q)),
            OperatorConfig::MulRound { n, q } => Box::new(MulRound::new(n, q)),
            OperatorConfig::MulBooth { n } => Box::new(MulBoothExact::new(n)),
            OperatorConfig::Aam { n } => Box::new(Aam::new(n)),
            OperatorConfig::Abm { n } => Box::new(Abm::new(n)),
            OperatorConfig::AbmUncorrected { n } => Box::new(AbmUncorrected::new(n)),
            OperatorConfig::AddSized { n, w, mode } => Box::new(SizedAdd::new(n, w, mode)),
            OperatorConfig::MulSized { n, w, mode } => Box::new(SizedMul::new(n, w, mode)),
        }
    }

    /// Adder or multiplier (without building the operator).
    #[must_use]
    pub fn op_class(&self) -> OpClass {
        match self {
            OperatorConfig::AddExact { .. }
            | OperatorConfig::AddTrunc { .. }
            | OperatorConfig::AddRound { .. }
            | OperatorConfig::Aca { .. }
            | OperatorConfig::EtaIv { .. }
            | OperatorConfig::EtaIi { .. }
            | OperatorConfig::RcaApx { .. }
            | OperatorConfig::AddSized { .. } => OpClass::Adder,
            _ => OpClass::Multiplier,
        }
    }

    /// Whether this is a carefully-sized fixed-point operator (the
    /// truncation/rounding family) as opposed to a functional
    /// approximation.
    #[must_use]
    pub fn is_fixed_point(&self) -> bool {
        matches!(
            self,
            OperatorConfig::AddExact { .. }
                | OperatorConfig::AddTrunc { .. }
                | OperatorConfig::AddRound { .. }
                | OperatorConfig::MulExact { .. }
                | OperatorConfig::MulTrunc { .. }
                | OperatorConfig::MulRound { .. }
                | OperatorConfig::MulBooth { .. }
                | OperatorConfig::AddSized { .. }
                | OperatorConfig::MulSized { .. }
        )
    }

    /// Checks the parameters against the constructor constraints without
    /// building the operator: [`OperatorConfig::build`] panics on a
    /// violation, `validate` reports it — the right form for input that
    /// arrives from outside (CLI arguments, config files).
    ///
    /// # Errors
    /// A human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let adder_n = |n: u32| -> Result<(), String> {
            if (2..=32).contains(&n) {
                Ok(())
            } else {
                Err(format!("adder width n={n} out of range 2..=32"))
            }
        };
        let mult_n = |n: u32| -> Result<(), String> {
            if (2..=24).contains(&n) {
                Ok(())
            } else {
                Err(format!("multiplier width n={n} out of range 2..=24"))
            }
        };
        let sized_w = |n: u32, w: u32, mode: QuantMode| -> Result<(), String> {
            let ok = match mode {
                QuantMode::Trunc => (2..=n).contains(&w),
                QuantMode::Round => (2..n).contains(&w),
            };
            if ok {
                Ok(())
            } else {
                Err(format!(
                    "effective width w={w} out of range 2..{}{n} for mode `{mode}`",
                    if mode == QuantMode::Trunc { "=" } else { "" }
                ))
            }
        };
        let booth_n = |n: u32| -> Result<(), String> {
            if (4..=24).contains(&n) && n.is_multiple_of(2) {
                Ok(())
            } else {
                Err(format!("Booth width n={n} must be even, in 4..=24"))
            }
        };
        match *self {
            OperatorConfig::AddExact { n } => adder_n(n),
            OperatorConfig::AddTrunc { n, q } => {
                adder_n(n)?;
                if (1..=n).contains(&q) {
                    Ok(())
                } else {
                    Err(format!("kept bits q={q} out of range 1..={n}"))
                }
            }
            OperatorConfig::AddRound { n, q } => {
                adder_n(n)?;
                if (1..n).contains(&q) {
                    Ok(())
                } else {
                    Err(format!("kept bits q={q} out of range 1..{n}"))
                }
            }
            OperatorConfig::Aca { n, p } => {
                adder_n(n)?;
                if (1..=n).contains(&p) {
                    Ok(())
                } else {
                    Err(format!("speculation window p={p} out of range 1..={n}"))
                }
            }
            OperatorConfig::EtaIv { n, x } | OperatorConfig::EtaIi { n, x } => {
                adder_n(n)?;
                if x >= 1 && n.is_multiple_of(x) {
                    Ok(())
                } else {
                    Err(format!("block size x={x} must divide n={n}"))
                }
            }
            OperatorConfig::RcaApx { n, m, .. } => {
                adder_n(n)?;
                if m <= n {
                    Ok(())
                } else {
                    Err(format!("accurate MSBs m={m} out of range 0..={n}"))
                }
            }
            OperatorConfig::MulExact { n } => mult_n(n),
            OperatorConfig::MulTrunc { n, q } => {
                mult_n(n)?;
                if (1..=2 * n).contains(&q) {
                    Ok(())
                } else {
                    Err(format!("kept bits q={q} out of range 1..={}", 2 * n))
                }
            }
            OperatorConfig::MulRound { n, q } => {
                mult_n(n)?;
                if (1..2 * n).contains(&q) {
                    Ok(())
                } else {
                    Err(format!("kept bits q={q} out of range 1..{}", 2 * n))
                }
            }
            OperatorConfig::Aam { n } => {
                if (4..=24).contains(&n) {
                    Ok(())
                } else {
                    Err(format!("AAM width n={n} out of range 4..=24"))
                }
            }
            OperatorConfig::MulBooth { n }
            | OperatorConfig::Abm { n }
            | OperatorConfig::AbmUncorrected { n } => booth_n(n),
            OperatorConfig::AddSized { n, w, mode } => {
                adder_n(n)?;
                sized_w(n, w, mode)
            }
            OperatorConfig::MulSized { n, w, mode } => {
                mult_n(n)?;
                sized_w(n, w, mode)
            }
        }
    }

    /// Operand width `n`.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        match *self {
            OperatorConfig::AddExact { n }
            | OperatorConfig::AddTrunc { n, .. }
            | OperatorConfig::AddRound { n, .. }
            | OperatorConfig::Aca { n, .. }
            | OperatorConfig::EtaIv { n, .. }
            | OperatorConfig::EtaIi { n, .. }
            | OperatorConfig::RcaApx { n, .. }
            | OperatorConfig::MulExact { n }
            | OperatorConfig::MulTrunc { n, .. }
            | OperatorConfig::MulRound { n, .. }
            | OperatorConfig::MulBooth { n }
            | OperatorConfig::Aam { n }
            | OperatorConfig::Abm { n }
            | OperatorConfig::AbmUncorrected { n }
            | OperatorConfig::AddSized { n, .. }
            | OperatorConfig::MulSized { n, .. } => n,
        }
    }
}

impl fmt::Display for OperatorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.build().name())
    }
}

/// Error returned by the [`OperatorConfig`] `FromStr` impl: the input
/// does not name an operator in the paper notation, or its parameters
/// violate a constructor constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseConfigError {}

impl std::str::FromStr for OperatorConfig {
    type Err = ParseConfigError;

    /// Parses the paper notation emitted by [`OperatorConfig`]'s
    /// `Display` impl (round-trip guaranteed), with two conveniences:
    /// family names are case-insensitive, and the redundant output width
    /// of `ADD(n,n)` / `MUL(n,2n)` / `MULbooth(n,2n)` may be omitted
    /// (`ADD(16)`, `MUL(16)`).
    ///
    /// # Example
    /// ```
    /// use apx_operators::OperatorConfig;
    /// let config: OperatorConfig = "ADDt(16,10)".parse().unwrap();
    /// assert_eq!(config, OperatorConfig::AddTrunc { n: 16, q: 10 });
    /// assert_eq!(config.to_string().parse::<OperatorConfig>(), Ok(config));
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || {
            ParseConfigError(format!(
                "invalid operator `{s}` — expected paper notation like \
                 ADDt(16,10), ADDst(16,10), ACA(16,4), ETAIV(16,4), \
                 RCAApx(16,6,3), MULt(16,16), MULsr(16,10), AAM(16), ABM(16)"
            ))
        };
        let text = s.trim();
        let (head, rest) = text.split_once('(').ok_or_else(err)?;
        let body = rest.strip_suffix(')').ok_or_else(err)?;
        let params: Vec<u32> = body
            .split(',')
            .map(|p| p.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| err())?;
        let one = || -> Result<u32, ParseConfigError> {
            match params[..] {
                [n] => Ok(n),
                _ => Err(err()),
            }
        };
        let two = || -> Result<(u32, u32), ParseConfigError> {
            match params[..] {
                [a, b] => Ok((a, b)),
                _ => Err(err()),
            }
        };
        let config = match head.trim().to_ascii_lowercase().as_str() {
            "add" => {
                // ADD(n) or the printed ADD(n,n)
                match params[..] {
                    [n] => Ok(OperatorConfig::AddExact { n }),
                    [n, q] if n == q => Ok(OperatorConfig::AddExact { n }),
                    _ => Err(err()),
                }
            }
            "addt" => two().map(|(n, q)| OperatorConfig::AddTrunc { n, q }),
            "addr" => two().map(|(n, q)| OperatorConfig::AddRound { n, q }),
            "aca" => two().map(|(n, p)| OperatorConfig::Aca { n, p }),
            "etaiv" => two().map(|(n, x)| OperatorConfig::EtaIv { n, x }),
            "etaii" => two().map(|(n, x)| OperatorConfig::EtaIi { n, x }),
            "rcaapx" => match params[..] {
                [n, m, fa] => {
                    let fa_type = match fa {
                        1 => FaType::One,
                        2 => FaType::Two,
                        3 => FaType::Three,
                        _ => return Err(err()),
                    };
                    Ok(OperatorConfig::RcaApx { n, m, fa_type })
                }
                _ => Err(err()),
            },
            "mul" => match params[..] {
                [n] => Ok(OperatorConfig::MulExact { n }),
                [n, w] if w == 2 * n => Ok(OperatorConfig::MulExact { n }),
                _ => Err(err()),
            },
            "mult" => two().map(|(n, q)| OperatorConfig::MulTrunc { n, q }),
            "mulr" => two().map(|(n, q)| OperatorConfig::MulRound { n, q }),
            "mulbooth" => match params[..] {
                [n] => Ok(OperatorConfig::MulBooth { n }),
                [n, w] if w == 2 * n => Ok(OperatorConfig::MulBooth { n }),
                _ => Err(err()),
            },
            "addst" => two().map(|(n, w)| OperatorConfig::AddSized {
                n,
                w,
                mode: QuantMode::Trunc,
            }),
            "addsr" => two().map(|(n, w)| OperatorConfig::AddSized {
                n,
                w,
                mode: QuantMode::Round,
            }),
            "mulst" => two().map(|(n, w)| OperatorConfig::MulSized {
                n,
                w,
                mode: QuantMode::Trunc,
            }),
            "mulsr" => two().map(|(n, w)| OperatorConfig::MulSized {
                n,
                w,
                mode: QuantMode::Round,
            }),
            "aam" => one().map(|n| OperatorConfig::Aam { n }),
            "abm" => one().map(|n| OperatorConfig::Abm { n }),
            "abmu" => one().map(|n| OperatorConfig::AbmUncorrected { n }),
            _ => Err(err()),
        }?;
        // syntax is fine — now reject parameters build() would panic on
        config
            .validate()
            .map_err(|reason| ParseConfigError(format!("invalid operator `{s}`: {reason}")))?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_roundtrips_names() {
        let configs = [
            (OperatorConfig::AddTrunc { n: 16, q: 10 }, "ADDt(16,10)"),
            (OperatorConfig::Aca { n: 16, p: 12 }, "ACA(16,12)"),
            (OperatorConfig::EtaIv { n: 16, x: 4 }, "ETAIV(16,4)"),
            (
                OperatorConfig::RcaApx {
                    n: 16,
                    m: 6,
                    fa_type: FaType::Three,
                },
                "RCAApx(16,6,3)",
            ),
            (OperatorConfig::MulTrunc { n: 16, q: 16 }, "MULt(16,16)"),
            (
                OperatorConfig::AddSized {
                    n: 16,
                    w: 10,
                    mode: QuantMode::Trunc,
                },
                "ADDst(16,10)",
            ),
            (
                OperatorConfig::MulSized {
                    n: 16,
                    w: 10,
                    mode: QuantMode::Round,
                },
                "MULsr(16,10)",
            ),
            (OperatorConfig::Aam { n: 16 }, "AAM(16)"),
            (OperatorConfig::Abm { n: 16 }, "ABM(16)"),
            (OperatorConfig::AbmUncorrected { n: 16 }, "ABMu(16)"),
        ];
        for (config, name) in configs {
            assert_eq!(config.to_string(), name);
        }
    }

    #[test]
    fn class_partitioning_is_consistent_with_built_operator() {
        let configs = [
            OperatorConfig::AddExact { n: 8 },
            OperatorConfig::Aca { n: 8, p: 2 },
            OperatorConfig::MulExact { n: 8 },
            OperatorConfig::Abm { n: 8 },
        ];
        for config in configs {
            assert_eq!(config.op_class(), config.build().op_class());
            assert_eq!(config.input_bits(), config.build().input_bits());
        }
    }

    #[test]
    fn from_str_roundtrips_every_sweep_config() {
        let all = [
            OperatorConfig::AddExact { n: 16 },
            OperatorConfig::AddTrunc { n: 16, q: 10 },
            OperatorConfig::AddRound { n: 16, q: 10 },
            OperatorConfig::Aca { n: 16, p: 4 },
            OperatorConfig::EtaIv { n: 16, x: 4 },
            OperatorConfig::EtaIi { n: 16, x: 2 },
            OperatorConfig::RcaApx {
                n: 16,
                m: 6,
                fa_type: FaType::Three,
            },
            OperatorConfig::MulExact { n: 16 },
            OperatorConfig::MulTrunc { n: 16, q: 16 },
            OperatorConfig::MulRound { n: 16, q: 12 },
            OperatorConfig::MulBooth { n: 16 },
            OperatorConfig::Aam { n: 16 },
            OperatorConfig::Abm { n: 16 },
            OperatorConfig::AbmUncorrected { n: 16 },
            OperatorConfig::AddSized {
                n: 16,
                w: 10,
                mode: QuantMode::Trunc,
            },
            OperatorConfig::AddSized {
                n: 16,
                w: 10,
                mode: QuantMode::Round,
            },
            OperatorConfig::MulSized {
                n: 16,
                w: 10,
                mode: QuantMode::Trunc,
            },
            OperatorConfig::MulSized {
                n: 16,
                w: 10,
                mode: QuantMode::Round,
            },
        ];
        for config in all {
            let printed = config.to_string();
            assert_eq!(printed.parse::<OperatorConfig>(), Ok(config), "{printed}");
        }
    }

    #[test]
    fn from_str_accepts_shorthand_and_rejects_garbage() {
        assert_eq!(
            "ADD(16)".parse::<OperatorConfig>(),
            Ok(OperatorConfig::AddExact { n: 16 })
        );
        assert_eq!(
            "mul(8)".parse::<OperatorConfig>(),
            Ok(OperatorConfig::MulExact { n: 8 })
        );
        assert_eq!(
            " aca( 16 , 4 ) ".parse::<OperatorConfig>(),
            Ok(OperatorConfig::Aca { n: 16, p: 4 })
        );
        for bad in [
            "",
            "ACA",
            "ACA()",
            "ACA(16)",
            "ACA(16,4,1)",
            "RCAApx(16,6,4)",
            "ADD(16,12)",
            "NOPE(1)",
            "ACA(16,x)",
            // syntactically fine, parameters out of range: must be a
            // parse error, never a later build() panic
            "ACA(64,4)",
            "ADDt(16,99)",
            "ADDr(16,16)",
            "ETAIV(16,3)",
            "MULt(30,4)",
            "ABM(15)",
            "AAM(2)",
            "ADDst(16,1)",
            "ADDsr(16,16)",
            "MULst(16,17)",
            "MULsr(30,4)",
        ] {
            assert!(bad.parse::<OperatorConfig>().is_err(), "{bad:?}");
        }
        let err = "ACA(64,4)".parse::<OperatorConfig>().unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn validate_agrees_with_the_constructors() {
        // sweep a parameter grid well past every bound: validate() must
        // accept exactly the configs build() constructs without panicking
        let mut grid: Vec<OperatorConfig> = Vec::new();
        for n in 0..=40 {
            grid.push(OperatorConfig::AddExact { n });
            grid.push(OperatorConfig::MulExact { n });
            grid.push(OperatorConfig::MulBooth { n });
            grid.push(OperatorConfig::Aam { n });
            grid.push(OperatorConfig::Abm { n });
            grid.push(OperatorConfig::AbmUncorrected { n });
            for k in 0..=40 {
                grid.push(OperatorConfig::AddTrunc { n, q: k });
                grid.push(OperatorConfig::AddRound { n, q: k });
                grid.push(OperatorConfig::Aca { n, p: k });
                grid.push(OperatorConfig::EtaIv { n, x: k });
                grid.push(OperatorConfig::EtaIi { n, x: k });
                grid.push(OperatorConfig::MulTrunc { n, q: k });
                grid.push(OperatorConfig::MulRound { n, q: k });
                grid.push(OperatorConfig::RcaApx {
                    n,
                    m: k,
                    fa_type: FaType::Two,
                });
                for mode in [QuantMode::Trunc, QuantMode::Round] {
                    grid.push(OperatorConfig::AddSized { n, w: k, mode });
                    grid.push(OperatorConfig::MulSized { n, w: k, mode });
                }
            }
        }
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for config in &grid {
            let builds = std::panic::catch_unwind(|| {
                let _ = config.build();
            })
            .is_ok();
            assert_eq!(
                config.validate().is_ok(),
                builds,
                "validate/build disagree on {config:?}"
            );
        }
        std::panic::set_hook(quiet);
    }

    #[test]
    fn serde_roundtrip() {
        let config = OperatorConfig::RcaApx {
            n: 16,
            m: 6,
            fa_type: FaType::Two,
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: OperatorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
