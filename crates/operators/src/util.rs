//! Bit-manipulation helpers shared by the operator models.

/// Mask with the low `bits` bits set. `bits` may be 0..=64.
///
/// # Example
/// ```
/// assert_eq!(apx_operators::mask_u(4), 0xF);
/// assert_eq!(apx_operators::mask_u(0), 0);
/// ```
#[must_use]
#[inline]
pub fn mask_u(bits: u32) -> u64 {
    if bits >= 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// Sign-extends the low `bits` bits of `v` into an `i64`.
///
/// # Example
/// ```
/// assert_eq!(apx_operators::sext(0xF, 4), -1);
/// assert_eq!(apx_operators::sext(0x7, 4), 7);
/// ```
///
/// # Panics
/// Panics if `bits` is 0 or greater than 64.
#[must_use]
#[inline]
pub fn sext(v: u64, bits: u32) -> i64 {
    assert!((1..=64).contains(&bits), "bits out of range");
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// Converts a signed value to its `bits`-bit two's-complement pattern.
///
/// # Example
/// ```
/// assert_eq!(apx_operators::to_u(-1, 4), 0xF);
/// ```
#[must_use]
#[inline]
pub fn to_u(v: i64, bits: u32) -> u64 {
    (v as u64) & mask_u(bits)
}

/// Bit `i` of `v` as 0/1.
#[must_use]
#[inline]
pub(crate) fn bit(v: u64, i: u32) -> u64 {
    (v >> i) & 1
}

/// Transposes up to 64 operand values into per-bit lane words:
/// `words[bit]` holds lane `l` iff bit `bit` of `values[l]` is set — the
/// functional-model twin of `apx_netlist::pack_operand`, on a caller
/// provided stack buffer so batched evaluation never allocates.
#[inline]
pub(crate) fn transpose_lanes(values: &[u64], width: u32, words: &mut [u64; 64]) {
    debug_assert!(values.len() <= 64 && width <= 64);
    words[..width as usize].fill(0);
    for (lane, &v) in values.iter().enumerate() {
        for (b, word) in words[..width as usize].iter_mut().enumerate() {
            *word |= ((v >> b) & 1) << lane;
        }
    }
}

/// Inverse of [`transpose_lanes`]: scatters per-bit lane words back into
/// `out` values.
#[inline]
pub(crate) fn untranspose_lanes(words: &[u64; 64], width: u32, out: &mut [u64]) {
    debug_assert!(out.len() <= 64 && width <= 64);
    out.fill(0);
    for (b, &word) in words[..width as usize].iter().enumerate() {
        for (lane, v) in out.iter_mut().enumerate() {
            *v |= ((word >> lane) & 1) << b;
        }
    }
}

/// Drives a bitsliced kernel over a batch of any length: operands are
/// transposed 64 lanes at a time, `kernel(aw, bw, ow)` computes all
/// output bit-words, and the result is transposed back into `out`.
///
/// The kernel is `FnMut` so it can own reusable scratch (the multiplier
/// kernels keep their partial-product column accumulators across chunks
/// instead of allocating per 64 lanes).
///
/// # Panics
/// Panics unless `a`, `b` and `out` have equal lengths.
#[inline]
pub(crate) fn bitsliced_batch(
    width: u32,
    a: &[u64],
    b: &[u64],
    out: &mut [u64],
    mut kernel: impl FnMut(&[u64; 64], &[u64; 64], &mut [u64; 64]),
) {
    assert!(
        a.len() == b.len() && a.len() == out.len(),
        "batch length mismatch"
    );
    let mut aw = [0u64; 64];
    let mut bw = [0u64; 64];
    let mut ow = [0u64; 64];
    for ((ac, bc), oc) in a.chunks(64).zip(b.chunks(64)).zip(out.chunks_mut(64)) {
        transpose_lanes(ac, width, &mut aw);
        transpose_lanes(bc, width, &mut bw);
        kernel(&aw, &bw, &mut ow);
        untranspose_lanes(&ow, width, oc);
    }
}

/// Word-parallel carry-save column compressor — the bitsliced twin of the
/// netlist generators' Wallace compression, with every partial-product
/// "gate" evaluated for 64 lanes per word op (the same trick as
/// [`crate::FaType::apply64`], here with exact full/half-adder cells).
///
/// `cols[c]` holds 64-lane term words of weight `2^c`; each column is
/// reduced to a single word by exact full adders (`sum = x^y^z`,
/// `carry = maj(x,y,z)`) whose carries feed column `c+1`, and the final
/// per-bit words land in `out[..cols.len()]`. Carries out of the top
/// column are dropped, i.e. the per-lane sum is taken mod
/// `2^cols.len()` — exactly what the scalar models' mask achieves.
/// Columns are left empty so the scratch can be reused across chunks.
pub(crate) fn compress_columns64(cols: &mut [Vec<u64>], out: &mut [u64; 64]) {
    let width = cols.len();
    for c in 0..width {
        while cols[c].len() > 2 {
            let x = cols[c].pop().unwrap();
            let y = cols[c].pop().unwrap();
            let z = cols[c].pop().unwrap();
            cols[c].push(x ^ y ^ z);
            if c + 1 < width {
                cols[c + 1].push((x & y) | (x & z) | (y & z));
            }
        }
        if cols[c].len() == 2 {
            let x = cols[c].pop().unwrap();
            let y = cols[c].pop().unwrap();
            cols[c].push(x ^ y);
            if c + 1 < width {
                cols[c + 1].push(x & y);
            }
        }
        out[c] = cols[c].pop().unwrap_or(0);
    }
}

/// Signed difference between two `bits`-bit patterns, interpreted as the
/// nearest distance on the mod-2^bits circle:
/// `((reference - approx + 2^(bits-1)) mod 2^bits) - 2^(bits-1)`.
///
/// This is the error `e = x - x̂` of the paper, robust to the modular
/// wrap-around that both the reference and the approximate data-path share.
///
/// # Example
/// ```
/// // 0x0 vs 0xF at 4 bits: distance is +1, not -15.
/// assert_eq!(apx_operators::centered_diff(0x0, 0xF, 4), 1);
/// ```
///
/// # Panics
/// Panics if `bits` is 0 or greater than 63.
#[must_use]
#[inline]
pub fn centered_diff(reference: u64, approx: u64, bits: u32) -> i64 {
    assert!((1..=63).contains(&bits), "bits out of range");
    let m = mask_u(bits);
    let half = 1u64 << (bits - 1);
    let d = (reference.wrapping_sub(approx).wrapping_add(half)) & m;
    d as i64 - half as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sext_roundtrips_with_to_u() {
        for bits in [1u32, 4, 8, 16, 32] {
            let lo = if bits == 1 { -1 } else { -(1i64 << (bits - 1)) };
            let hi = if bits == 1 {
                0
            } else {
                (1i64 << (bits - 1)) - 1
            };
            for v in [lo, -1, 0, 1, hi] {
                let v = v.clamp(lo, hi);
                assert_eq!(sext(to_u(v, bits), bits), v, "bits={bits} v={v}");
            }
        }
    }

    #[test]
    fn centered_diff_is_antisymmetric_and_small() {
        for bits in [4u32, 8, 16] {
            let m = mask_u(bits);
            for (r, a) in [(0u64, 1u64), (1, 0), (m, 0), (0, m), (m / 2, m / 2 + 3)] {
                let d = centered_diff(r & m, a & m, bits);
                assert_eq!(d, -centered_diff(a & m, r & m, bits));
                assert!(d.unsigned_abs() <= 1 << (bits - 1));
            }
        }
    }

    #[test]
    fn centered_diff_matches_plain_subtraction_when_no_wrap() {
        assert_eq!(centered_diff(100, 90, 16), 10);
        assert_eq!(centered_diff(90, 100, 16), -10);
    }
}
