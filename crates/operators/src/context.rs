//! Arithmetic contexts: pluggable add/mul with operation counting.
//!
//! Applications (FFT, DCT, HEVC MC, K-means) are written once against
//! [`ArithContext`]; substituting an [`OperatorCtx`] carrying approximate
//! or sized fixed-point operators degrades the arithmetic exactly as the
//! hardware would, while the operation counters feed the application-level
//! energy model (eq. (1) of the paper).

use crate::traits::{ApxOperator, OpClass};
use serde::{Deserialize, Serialize};

/// Counters of arithmetic operations executed through a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Number of additions/subtractions.
    pub adds: u64,
    /// Number of multiplications.
    pub muls: u64,
}

impl OpCounts {
    /// Sum of both counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adds + self.muls
    }
}

/// Abstract integer arithmetic with operation counting.
///
/// Values are plain `i64`; implementations may quantize or corrupt results
/// exactly as their hardware counterpart would. Subtraction is provided as
/// negated addition (hardware cost of an adder).
pub trait ArithContext {
    /// `a + b` through the context's adder.
    fn add(&mut self, a: i64, b: i64) -> i64;

    /// `a * b` through the context's multiplier.
    fn mul(&mut self, a: i64, b: i64) -> i64;

    /// `a - b`, counted as one addition.
    fn sub(&mut self, a: i64, b: i64) -> i64 {
        self.add(a, -b)
    }

    /// Operations executed so far.
    fn counts(&self) -> OpCounts;

    /// Resets the operation counters.
    fn reset_counts(&mut self);
}

/// Ideal (infinite-precision `i64`) arithmetic with counting — the golden
/// reference for application quality metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactCtx {
    counts: OpCounts,
}

impl ExactCtx {
    /// Creates an exact context.
    #[must_use]
    pub fn new() -> Self {
        ExactCtx::default()
    }
}

impl ArithContext for ExactCtx {
    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        a.wrapping_add(b)
    }
    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.counts.muls += 1;
        a.wrapping_mul(b)
    }
    fn counts(&self) -> OpCounts {
        self.counts
    }
    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

/// Exact arithmetic that only counts (alias of [`ExactCtx`] kept for
/// call-site clarity when the caller never reads the values).
pub type CountingCtx = ExactCtx;

/// Arithmetic context executing through [`ApxOperator`] models.
///
/// Either operator may be absent, in which case that operation is exact.
/// The adder is applied at its operand width (`n` bits, wrapping) and its
/// aligned output is sign-extended back; the multiplier likewise at
/// `n×n → 2n`.
///
/// # Example
/// ```
/// use apx_operators::{ArithContext, OperatorCtx, OperatorConfig};
/// let mut ctx = OperatorCtx::new(
///     Some(OperatorConfig::AddTrunc { n: 16, q: 8 }.build()),
///     None,
/// );
/// // low bits quantized away by the 8-bit adder
/// assert_eq!(ctx.add(0x0101, 0x0101), 0x0200);
/// assert_eq!(ctx.counts().adds, 1);
/// ```
pub struct OperatorCtx {
    adder: Option<Box<dyn ApxOperator>>,
    multiplier: Option<Box<dyn ApxOperator>>,
    counts: OpCounts,
}

impl OperatorCtx {
    /// Creates a context from optional adder and multiplier models.
    ///
    /// # Panics
    /// Panics if an operator of the wrong class is supplied.
    #[must_use]
    pub fn new(
        adder: Option<Box<dyn ApxOperator>>,
        multiplier: Option<Box<dyn ApxOperator>>,
    ) -> Self {
        if let Some(op) = &adder {
            assert_eq!(op.op_class(), OpClass::Adder, "adder slot needs an adder");
        }
        if let Some(op) = &multiplier {
            assert_eq!(
                op.op_class(),
                OpClass::Multiplier,
                "multiplier slot needs a multiplier"
            );
        }
        OperatorCtx {
            adder,
            multiplier,
            counts: OpCounts::default(),
        }
    }

    /// Builds the context that puts `config` **under test**: an adder
    /// configuration fills the adder slot (multiplications stay exact), a
    /// multiplier configuration the multiplier slot — the substitution
    /// rule of every application experiment in the paper.
    ///
    /// # Example
    /// ```
    /// use apx_operators::{ArithContext, OperatorConfig, OperatorCtx};
    /// let mut ctx = OperatorCtx::for_config(&OperatorConfig::MulTrunc { n: 16, q: 16 });
    /// assert_eq!(ctx.add(3, 4), 7); // adder slot stays exact
    /// ```
    #[must_use]
    pub fn for_config(config: &crate::OperatorConfig) -> Self {
        match config.op_class() {
            OpClass::Adder => OperatorCtx::new(Some(config.build()), None),
            OpClass::Multiplier => OperatorCtx::new(None, Some(config.build())),
        }
    }

    /// The adder model, if any.
    #[must_use]
    pub fn adder(&self) -> Option<&dyn ApxOperator> {
        self.adder.as_deref()
    }

    /// The multiplier model, if any.
    #[must_use]
    pub fn multiplier(&self) -> Option<&dyn ApxOperator> {
        self.multiplier.as_deref()
    }
}

impl ArithContext for OperatorCtx {
    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        match &self.adder {
            Some(op) => op.eval_signed(a, b),
            None => a.wrapping_add(b),
        }
    }
    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.counts.muls += 1;
        match &self.multiplier {
            Some(op) => op.eval_signed(a, b),
            None => a.wrapping_mul(b),
        }
    }
    fn counts(&self) -> OpCounts {
        self.counts
    }
    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatorConfig;

    #[test]
    fn exact_ctx_counts_and_computes() {
        let mut ctx = ExactCtx::new();
        assert_eq!(ctx.add(2, 3), 5);
        assert_eq!(ctx.mul(4, -5), -20);
        assert_eq!(ctx.sub(10, 3), 7);
        assert_eq!(ctx.counts(), OpCounts { adds: 2, muls: 1 });
        ctx.reset_counts();
        assert_eq!(ctx.counts().total(), 0);
    }

    #[test]
    fn operator_ctx_with_exact_models_matches_exact_ctx() {
        let mut ctx = OperatorCtx::new(
            Some(OperatorConfig::AddExact { n: 16 }.build()),
            Some(OperatorConfig::MulExact { n: 16 }.build()),
        );
        // stay within 16-bit operand range
        assert_eq!(ctx.add(1000, -250), 750);
        assert_eq!(ctx.mul(-123, 45), -123 * 45);
    }

    #[test]
    fn truncated_multiplier_quantizes_products() {
        let mut ctx = OperatorCtx::new(
            None,
            Some(OperatorConfig::MulTrunc { n: 16, q: 16 }.build()),
        );
        let p = ctx.mul(0x1234, 0x0321);
        let exact = 0x1234i64 * 0x0321;
        assert_eq!(p, exact & !0xFFFF, "low 16 product bits truncated");
    }

    #[test]
    #[should_panic(expected = "adder slot needs an adder")]
    fn wrong_class_is_rejected() {
        let _ = OperatorCtx::new(Some(OperatorConfig::MulExact { n: 8 }.build()), None);
    }
}
