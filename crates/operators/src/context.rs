//! Arithmetic contexts: pluggable add/mul with operation counting.
//!
//! Applications (FFT, DCT, HEVC MC, K-means) are written once against
//! [`ArithContext`]; substituting an [`OperatorCtx`] carrying approximate
//! or sized fixed-point operators degrades the arithmetic exactly as the
//! hardware would, while the operation counters feed the application-level
//! energy model (eq. (1) of the paper).
//!
//! # Call-sites
//!
//! Every arithmetic call in a workload carries a stable *site tag*
//! (`"fft.butterfly"`, `"jpeg.dct_row"`, …) through the `*_at` methods.
//! The untagged [`ArithContext::add`]/[`ArithContext::mul`] delegate to
//! the [`DEFAULT_SITE`], so uniform contexts behave exactly as before,
//! while a [`HeteroCtx`] built from a [`SiteMap`] can route each site to
//! its own operator configuration and report per-site [`SiteCounts`] for
//! independent energy pricing.

use crate::traits::{ApxOperator, OpClass};
use serde::{Deserialize, Serialize};

/// Site tag under which untagged operations are recorded.
pub const DEFAULT_SITE: &str = "default";

/// Counters of arithmetic operations executed through a context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Number of additions/subtractions.
    pub adds: u64,
    /// Number of multiplications.
    pub muls: u64,
}

impl OpCounts {
    /// Sum of both counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.adds + self.muls
    }
}

/// Per-call-site operation counters, in first-recorded order.
///
/// Workload runs are single-threaded within a sweep cell, so the insertion
/// order — and therefore the serialized form — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteCounts {
    entries: Vec<(String, OpCounts)>,
}

impl SiteCounts {
    /// An empty per-site ledger.
    #[must_use]
    pub fn new() -> Self {
        SiteCounts::default()
    }

    /// A ledger attributing `counts` wholesale to one `site`.
    #[must_use]
    pub fn single_site(site: &str, counts: OpCounts) -> Self {
        SiteCounts {
            entries: vec![(site.to_owned(), counts)],
        }
    }

    fn entry(&mut self, site: &str) -> &mut OpCounts {
        if let Some(idx) = self.entries.iter().position(|(tag, _)| tag == site) {
            return &mut self.entries[idx].1;
        }
        self.entries.push((site.to_owned(), OpCounts::default()));
        &mut self.entries.last_mut().expect("just pushed").1
    }

    /// Records one addition/subtraction at `site`.
    pub fn record_add(&mut self, site: &str) {
        self.entry(site).adds += 1;
    }

    /// Records one multiplication at `site`.
    pub fn record_mul(&mut self, site: &str) {
        self.entry(site).muls += 1;
    }

    /// Counters recorded at `site` (zero if the site never fired).
    #[must_use]
    pub fn get(&self, site: &str) -> OpCounts {
        self.entries
            .iter()
            .find(|(tag, _)| tag == site)
            .map(|(_, counts)| *counts)
            .unwrap_or_default()
    }

    /// Sum over every site — must equal the context's untyped
    /// [`ArithContext::counts`] when all calls are tagged.
    #[must_use]
    pub fn total(&self) -> OpCounts {
        let mut total = OpCounts::default();
        for (_, counts) in &self.entries {
            total.adds += counts.adds;
            total.muls += counts.muls;
        }
        total
    }

    /// Iterates `(site, counts)` in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, OpCounts)> {
        self.entries
            .iter()
            .map(|(tag, counts)| (tag.as_str(), *counts))
    }

    /// Number of distinct sites recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no site has recorded any operation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forgets every recorded site.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Operation classes routed through a declared call-site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteOps {
    /// Only additions/subtractions execute at the site.
    Add,
    /// Only multiplications execute at the site.
    Mul,
    /// Both classes execute at the site.
    AddMul,
}

impl SiteOps {
    /// Human-readable class label (`add`, `mul`, `add+mul`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SiteOps::Add => "add",
            SiteOps::Mul => "mul",
            SiteOps::AddMul => "add+mul",
        }
    }

    /// Whether additions/subtractions may fire at the site.
    #[must_use]
    pub fn uses_add(&self) -> bool {
        matches!(self, SiteOps::Add | SiteOps::AddMul)
    }

    /// Whether multiplications may fire at the site.
    #[must_use]
    pub fn uses_mul(&self) -> bool {
        matches!(self, SiteOps::Mul | SiteOps::AddMul)
    }
}

/// A call-site a workload declares in its registry entry: the stable tag
/// its arithmetic is recorded under, the op classes that fire there, and
/// a one-line description for `apxperf list --sites`.
#[derive(Debug, Clone, Copy)]
pub struct SiteSpec {
    /// Stable tag, conventionally `<workload>.<kernel>` (e.g. `fir.mac`).
    pub tag: &'static str,
    /// Operation classes executed at the site.
    pub ops: SiteOps,
    /// One-line description of the kernel the site covers.
    pub summary: &'static str,
}

/// Abstract integer arithmetic with operation counting.
///
/// Values are plain `i64`; implementations may quantize or corrupt results
/// exactly as their hardware counterpart would. Subtraction is provided as
/// negated addition (hardware cost of an adder).
pub trait ArithContext {
    /// `a + b` through the context's adder.
    fn add(&mut self, a: i64, b: i64) -> i64;

    /// `a * b` through the context's multiplier.
    fn mul(&mut self, a: i64, b: i64) -> i64;

    /// `a - b`, counted as one addition.
    fn sub(&mut self, a: i64, b: i64) -> i64 {
        self.add(a, -b)
    }

    /// `a + b` at the call-site `site`. Contexts without per-site routing
    /// ignore the tag and fall through to [`ArithContext::add`].
    fn add_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        let _ = site;
        self.add(a, b)
    }

    /// `a * b` at the call-site `site`. Contexts without per-site routing
    /// ignore the tag and fall through to [`ArithContext::mul`].
    fn mul_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        let _ = site;
        self.mul(a, b)
    }

    /// `a - b` at the call-site `site`, counted as one addition there.
    fn sub_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        self.add_at(site, a, -b)
    }

    /// Operations executed so far.
    fn counts(&self) -> OpCounts;

    /// Per-site breakdown of [`ArithContext::counts`]. Contexts without
    /// per-site routing report everything under [`DEFAULT_SITE`].
    fn site_counts(&self) -> SiteCounts {
        SiteCounts::single_site(DEFAULT_SITE, self.counts())
    }

    /// Resets the operation counters (per-site counters included).
    fn reset_counts(&mut self);
}

/// Ideal (infinite-precision `i64`) arithmetic with counting — the golden
/// reference for application quality metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactCtx {
    counts: OpCounts,
}

impl ExactCtx {
    /// Creates an exact context.
    #[must_use]
    pub fn new() -> Self {
        ExactCtx::default()
    }
}

impl ArithContext for ExactCtx {
    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        a.wrapping_add(b)
    }
    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.counts.muls += 1;
        a.wrapping_mul(b)
    }
    fn counts(&self) -> OpCounts {
        self.counts
    }
    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
    }
}

/// Exact arithmetic that only counts (alias of [`ExactCtx`] kept for
/// call-site clarity when the caller never reads the values).
pub type CountingCtx = ExactCtx;

fn checked_adder(op: Box<dyn ApxOperator>) -> Box<dyn ApxOperator> {
    assert_eq!(op.op_class(), OpClass::Adder, "adder slot needs an adder");
    op
}

fn checked_multiplier(op: Box<dyn ApxOperator>) -> Box<dyn ApxOperator> {
    assert_eq!(
        op.op_class(),
        OpClass::Multiplier,
        "multiplier slot needs a multiplier"
    );
    op
}

/// Arithmetic context executing through [`ApxOperator`] models.
///
/// Either operator may be absent, in which case that operation is exact.
/// The adder is applied at its operand width (`n` bits, wrapping) and its
/// aligned output is sign-extended back; the multiplier likewise at
/// `n×n → 2n`. The same operators serve every call-site; per-site traffic
/// is still recorded and available through
/// [`ArithContext::site_counts`].
///
/// # Example
/// ```
/// use apx_operators::{ArithContext, OperatorCtx, OperatorConfig};
/// let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q: 8 }.build());
/// // low bits quantized away by the 8-bit adder
/// assert_eq!(ctx.add(0x0101, 0x0101), 0x0200);
/// assert_eq!(ctx.counts().adds, 1);
/// ```
pub struct OperatorCtx {
    adder: Option<Box<dyn ApxOperator>>,
    multiplier: Option<Box<dyn ApxOperator>>,
    counts: OpCounts,
    site_counts: SiteCounts,
}

impl OperatorCtx {
    fn from_slots(
        adder: Option<Box<dyn ApxOperator>>,
        multiplier: Option<Box<dyn ApxOperator>>,
    ) -> Self {
        OperatorCtx {
            adder: adder.map(checked_adder),
            multiplier: multiplier.map(checked_multiplier),
            counts: OpCounts::default(),
            site_counts: SiteCounts::default(),
        }
    }

    /// A fully exact context (both slots empty) that still counts.
    #[must_use]
    pub fn exact() -> Self {
        OperatorCtx::from_slots(None, None)
    }

    /// Context with `adder` under test; multiplications stay exact.
    ///
    /// # Panics
    /// Panics if `adder` is not an adder model.
    #[must_use]
    pub fn with_adder(adder: Box<dyn ApxOperator>) -> Self {
        OperatorCtx::from_slots(Some(adder), None)
    }

    /// Context with `multiplier` under test; additions stay exact.
    ///
    /// # Panics
    /// Panics if `multiplier` is not a multiplier model.
    #[must_use]
    pub fn with_multiplier(multiplier: Box<dyn ApxOperator>) -> Self {
        OperatorCtx::from_slots(None, Some(multiplier))
    }

    /// Builds the context that puts `config` **under test**: an adder
    /// configuration fills the adder slot (multiplications stay exact), a
    /// multiplier configuration the multiplier slot — the substitution
    /// rule of every application experiment in the paper.
    ///
    /// # Example
    /// ```
    /// use apx_operators::{ArithContext, OperatorConfig, OperatorCtx};
    /// let mut ctx = OperatorCtx::for_config(&OperatorConfig::MulTrunc { n: 16, q: 16 });
    /// assert_eq!(ctx.add(3, 4), 7); // adder slot stays exact
    /// ```
    #[must_use]
    pub fn for_config(config: &crate::OperatorConfig) -> Self {
        match config.op_class() {
            OpClass::Adder => OperatorCtx::with_adder(config.build()),
            OpClass::Multiplier => OperatorCtx::with_multiplier(config.build()),
        }
    }

    /// The adder model, if any.
    #[must_use]
    pub fn adder(&self) -> Option<&dyn ApxOperator> {
        self.adder.as_deref()
    }

    /// The multiplier model, if any.
    #[must_use]
    pub fn multiplier(&self) -> Option<&dyn ApxOperator> {
        self.multiplier.as_deref()
    }
}

impl ArithContext for OperatorCtx {
    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.add_at(DEFAULT_SITE, a, b)
    }
    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.mul_at(DEFAULT_SITE, a, b)
    }
    fn add_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        self.site_counts.record_add(site);
        match &self.adder {
            Some(op) => op.eval_signed(a, b),
            None => a.wrapping_add(b),
        }
    }
    fn mul_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        self.counts.muls += 1;
        self.site_counts.record_mul(site);
        match &self.multiplier {
            Some(op) => op.eval_signed(a, b),
            None => a.wrapping_mul(b),
        }
    }
    fn counts(&self) -> OpCounts {
        self.counts
    }
    fn site_counts(&self) -> SiteCounts {
        self.site_counts.clone()
    }
    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
        self.site_counts.clear();
    }
}

/// An ordered map from call-site tag to the [`OperatorConfig`] assigned
/// there — the heterogeneous-assignment half of the `tune` search space.
///
/// Entry order is preserved (and is the serialized order), so building a
/// map in a fixed site order yields a deterministic cache key.
///
/// [`OperatorConfig`]: crate::OperatorConfig
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteMap {
    entries: Vec<(String, crate::OperatorConfig)>,
}

impl SiteMap {
    /// An empty map: every site stays exact.
    #[must_use]
    pub fn new() -> Self {
        SiteMap::default()
    }

    /// A map assigning `config` to every one of `sites`.
    #[must_use]
    pub fn uniform(sites: &[SiteSpec], config: crate::OperatorConfig) -> Self {
        let mut map = SiteMap::new();
        for spec in sites {
            map.set(spec.tag, config);
        }
        map
    }

    /// Assigns `config` to `site`, replacing any previous assignment.
    pub fn set(&mut self, site: &str, config: crate::OperatorConfig) {
        if let Some(idx) = self.entries.iter().position(|(tag, _)| tag == site) {
            self.entries[idx].1 = config;
        } else {
            self.entries.push((site.to_owned(), config));
        }
    }

    /// The configuration assigned to `site`, if any.
    #[must_use]
    pub fn get(&self, site: &str) -> Option<&crate::OperatorConfig> {
        self.entries
            .iter()
            .find(|(tag, _)| tag == site)
            .map(|(_, config)| config)
    }

    /// Iterates `(site, config)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &crate::OperatorConfig)> {
        self.entries
            .iter()
            .map(|(tag, config)| (tag.as_str(), config))
    }

    /// Number of assigned sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no site is assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

struct SiteSlot {
    adder: Option<Box<dyn ApxOperator>>,
    multiplier: Option<Box<dyn ApxOperator>>,
}

/// Arithmetic context routing each call-site to its own operator.
///
/// Built from a [`SiteMap`]; each mapped site gets the
/// [`OperatorCtx::for_config`] substitution rule applied *locally* (an
/// adder config degrades that site's additions, its multiplications stay
/// exact, and vice versa). Unmapped sites — and untagged calls, which
/// arrive at [`DEFAULT_SITE`] — execute exactly. A map assigning the same
/// configuration to every declared site is bit-for-bit equivalent to the
/// uniform [`OperatorCtx::for_config`] context.
///
/// # Example
/// ```
/// use apx_operators::{ArithContext, HeteroCtx, OperatorConfig, SiteMap};
/// let mut map = SiteMap::new();
/// map.set("fir.mac", OperatorConfig::AddTrunc { n: 16, q: 8 });
/// let mut ctx = HeteroCtx::new(&map);
/// assert_eq!(ctx.add_at("fir.mac", 0x0101, 0x0101), 0x0200);
/// assert_eq!(ctx.add_at("fir.tap", 1, 2), 3); // unmapped sites stay exact
/// assert_eq!(ctx.site_counts().get("fir.mac").adds, 1);
/// ```
pub struct HeteroCtx {
    slots: Vec<(String, SiteSlot)>,
    counts: OpCounts,
    site_counts: SiteCounts,
}

impl HeteroCtx {
    /// Builds a context routing each site of `map` to its configuration.
    #[must_use]
    pub fn new(map: &SiteMap) -> Self {
        let slots = map
            .iter()
            .map(|(site, config)| {
                let slot = match config.op_class() {
                    OpClass::Adder => SiteSlot {
                        adder: Some(checked_adder(config.build())),
                        multiplier: None,
                    },
                    OpClass::Multiplier => SiteSlot {
                        adder: None,
                        multiplier: Some(checked_multiplier(config.build())),
                    },
                };
                (site.to_owned(), slot)
            })
            .collect();
        HeteroCtx {
            slots,
            counts: OpCounts::default(),
            site_counts: SiteCounts::default(),
        }
    }

    fn slot(&self, site: &str) -> Option<&SiteSlot> {
        self.slots
            .iter()
            .find(|(tag, _)| tag == site)
            .map(|(_, slot)| slot)
    }
}

impl ArithContext for HeteroCtx {
    fn add(&mut self, a: i64, b: i64) -> i64 {
        self.add_at(DEFAULT_SITE, a, b)
    }
    fn mul(&mut self, a: i64, b: i64) -> i64 {
        self.mul_at(DEFAULT_SITE, a, b)
    }
    fn add_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        self.counts.adds += 1;
        self.site_counts.record_add(site);
        match self.slot(site).and_then(|slot| slot.adder.as_deref()) {
            Some(op) => op.eval_signed(a, b),
            None => a.wrapping_add(b),
        }
    }
    fn mul_at(&mut self, site: &'static str, a: i64, b: i64) -> i64 {
        self.counts.muls += 1;
        self.site_counts.record_mul(site);
        match self.slot(site).and_then(|slot| slot.multiplier.as_deref()) {
            Some(op) => op.eval_signed(a, b),
            None => a.wrapping_mul(b),
        }
    }
    fn counts(&self) -> OpCounts {
        self.counts
    }
    fn site_counts(&self) -> SiteCounts {
        self.site_counts.clone()
    }
    fn reset_counts(&mut self) {
        self.counts = OpCounts::default();
        self.site_counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperatorConfig;

    #[test]
    fn exact_ctx_counts_and_computes() {
        let mut ctx = ExactCtx::new();
        assert_eq!(ctx.add(2, 3), 5);
        assert_eq!(ctx.mul(4, -5), -20);
        assert_eq!(ctx.sub(10, 3), 7);
        assert_eq!(ctx.counts(), OpCounts { adds: 2, muls: 1 });
        // contexts without routing report everything at the default site
        assert_eq!(ctx.site_counts().get(DEFAULT_SITE), ctx.counts());
        ctx.reset_counts();
        assert_eq!(ctx.counts().total(), 0);
    }

    #[test]
    fn operator_ctx_with_exact_models_matches_exact_ctx() {
        let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddExact { n: 16 }.build());
        // stay within 16-bit operand range
        assert_eq!(ctx.add(1000, -250), 750);
        assert_eq!(ctx.mul(-123, 45), -123 * 45);
    }

    #[test]
    fn truncated_multiplier_quantizes_products() {
        let mut ctx =
            OperatorCtx::with_multiplier(OperatorConfig::MulTrunc { n: 16, q: 16 }.build());
        let p = ctx.mul(0x1234, 0x0321);
        let exact = 0x1234i64 * 0x0321;
        assert_eq!(p, exact & !0xFFFF, "low 16 product bits truncated");
    }

    #[test]
    #[should_panic(expected = "adder slot needs an adder")]
    fn wrong_class_is_rejected() {
        let _ = OperatorCtx::with_adder(OperatorConfig::MulExact { n: 8 }.build());
    }

    #[test]
    fn operator_ctx_records_per_site_traffic() {
        let mut ctx = OperatorCtx::for_config(&OperatorConfig::AddTrunc { n: 16, q: 8 });
        ctx.add_at("w.alpha", 1, 2);
        ctx.add_at("w.alpha", 3, 4);
        ctx.sub_at("w.beta", 9, 4);
        ctx.mul_at("w.beta", 2, 3);
        ctx.mul(5, 6); // untagged — lands at the default site
        let sites = ctx.site_counts();
        assert_eq!(sites.get("w.alpha"), OpCounts { adds: 2, muls: 0 });
        assert_eq!(sites.get("w.beta"), OpCounts { adds: 1, muls: 1 });
        assert_eq!(sites.get(DEFAULT_SITE), OpCounts { adds: 0, muls: 1 });
        assert_eq!(sites.total(), ctx.counts());
        ctx.reset_counts();
        assert!(ctx.site_counts().is_empty());
    }

    #[test]
    fn site_map_replaces_and_preserves_order() {
        let mut map = SiteMap::new();
        map.set("a", OperatorConfig::AddTrunc { n: 16, q: 8 });
        map.set("b", OperatorConfig::Aca { n: 16, p: 8 });
        map.set("a", OperatorConfig::AddTrunc { n: 16, q: 12 });
        assert_eq!(map.len(), 2);
        assert_eq!(
            map.get("a"),
            Some(&OperatorConfig::AddTrunc { n: 16, q: 12 })
        );
        let order: Vec<&str> = map.iter().map(|(site, _)| site).collect();
        assert_eq!(order, ["a", "b"]);
    }

    #[test]
    fn hetero_ctx_routes_per_site_and_leaves_unmapped_sites_exact() {
        let mut map = SiteMap::new();
        map.set("w.coarse", OperatorConfig::AddTrunc { n: 16, q: 8 });
        map.set("w.prod", OperatorConfig::MulTrunc { n: 16, q: 16 });
        let mut ctx = HeteroCtx::new(&map);
        // mapped adder site quantizes
        assert_eq!(ctx.add_at("w.coarse", 0x0101, 0x0101), 0x0200);
        // an adder-config site leaves its multiplications exact
        assert_eq!(ctx.mul_at("w.coarse", 7, 6), 42);
        // mapped multiplier site truncates the product
        let exact = 0x1234i64 * 0x0321;
        assert_eq!(ctx.mul_at("w.prod", 0x1234, 0x0321), exact & !0xFFFF);
        // unmapped site and untagged calls stay exact
        assert_eq!(ctx.add_at("w.other", 0x0101, 0x0101), 0x0202);
        assert_eq!(ctx.add(0x0101, 0x0101), 0x0202);
        assert_eq!(ctx.counts(), OpCounts { adds: 3, muls: 2 });
        assert_eq!(ctx.site_counts().total(), ctx.counts());
    }

    #[test]
    fn uniform_site_map_matches_uniform_operator_ctx() {
        const SITES: &[SiteSpec] = &[
            SiteSpec {
                tag: "w.a",
                ops: SiteOps::AddMul,
                summary: "test site",
            },
            SiteSpec {
                tag: "w.b",
                ops: SiteOps::Add,
                summary: "test site",
            },
        ];
        let config = OperatorConfig::AddTrunc { n: 16, q: 9 };
        let mut hetero = HeteroCtx::new(&SiteMap::uniform(SITES, config));
        let mut uniform = OperatorCtx::for_config(&config);
        for (a, b) in [(0x0101, 0x0303), (-77, 1234), (0x7FFF, 1)] {
            assert_eq!(
                hetero.add_at("w.a", a, b),
                uniform.add_at("w.a", a, b),
                "adds must agree at ({a},{b})"
            );
            assert_eq!(hetero.mul_at("w.a", a, b), uniform.mul_at("w.a", a, b));
            assert_eq!(hetero.sub_at("w.b", a, b), uniform.sub_at("w.b", a, b));
        }
        assert_eq!(hetero.counts(), uniform.counts());
        assert_eq!(hetero.site_counts(), uniform.site_counts());
    }
}
