//! Adder operators: exact, carefully sized fixed-point (truncated /
//! rounded), and the three approximate adders of the paper.
//!
//! * [`AddExact`] — plain ripple-carry adder, the accuracy reference.
//! * [`AddTrunc`] / [`AddRound`] — fixed-point data sizing (§II-A): the
//!   `n-q` operand LSBs are dropped (truncation) or rounded away and only a
//!   `q`-bit adder is built. These are the "careful data sizing" side.
//! * [`Aca`] — Almost Correct Adder (Verma, Brisk, Ienne — DATE'08):
//!   every sum bit `i` is computed from an accurate addition of the bits
//!   `i-P..=i` only (speculative carry of length `P`).
//! * [`EtaIv`] — Error-Tolerant Adder type IV (Zhu, Goh, Wang, Yeo —
//!   ISOCC'10): the adder is split in `N/X` blocks of `X` bits; each block
//!   takes a carry-in speculated from the previous **two** blocks.
//! * [`RcaApx`] — approximate ripple-carry adder (Gupta et al., IMPACT,
//!   ISLPED'11): the `n-m` LSB positions use approximate full-adder cells
//!   of a chosen [`FaType`]; the `m` MSBs use accurate full adders.

use crate::traits::{ApxOperator, OpClass};
use crate::util::{bit, bitsliced_batch, mask_u};
use apx_cells::CellKind;
use apx_netlist::{Netlist, NetlistBuilder};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Exact `n`-bit ripple-carry adder with an `n`-bit (wrapping) output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddExact {
    n: u32,
}

impl AddExact {
    /// Creates an exact adder over `n`-bit operands.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        AddExact { n }
    }
}

impl ApxOperator for AddExact {
    fn name(&self) -> String {
        format!("ADD({},{})", self.n, self.n)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b) & mask_u(self.n)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // Already O(1) word ops per sample; the override only hoists the
        // mask and skips the per-sample dynamic dispatch of the default.
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let m = mask_u(self.n);
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = ai.wrapping_add(bi) & m;
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", self.n as usize);
        let bv = b.input_bus("b", self.n as usize);
        let zero = b.tie0();
        let (sum, _cout) = b.ripple_adder(&av, &bv, zero);
        b.output_bus("y", &sum);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Truncated fixed-point adder `ADDt(n, q)`: both operands lose their
/// `n-q` LSBs before a `q`-bit exact addition.
///
/// This is the paper's careful-data-sizing baseline: accuracy falls with
/// `q`, but so do area, power **and the width of everything downstream**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddTrunc {
    n: u32,
    q: u32,
}

impl AddTrunc {
    /// Creates `ADDt(n, q)`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32` and `1 <= q <= n`.
    #[must_use]
    pub fn new(n: u32, q: u32) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        assert!((1..=n).contains(&q), "q out of range");
        AddTrunc { n, q }
    }

    /// Number of output bits kept.
    #[must_use]
    pub fn kept_bits(&self) -> u32 {
        self.q
    }
}

impl ApxOperator for AddTrunc {
    fn name(&self) -> String {
        format!("ADDt({},{})", self.n, self.q)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.q
    }
    fn output_shift(&self) -> u32 {
        self.n - self.q
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let s = self.n - self.q;
        ((a >> s).wrapping_add(b >> s)) & mask_u(self.q)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let s = self.n - self.q;
        let m = mask_u(self.q);
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = (ai >> s).wrapping_add(bi >> s) & m;
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let s = (self.n - self.q) as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", self.n as usize);
        let bv = b.input_bus("b", self.n as usize);
        let zero = b.tie0();
        let (sum, _cout) = b.ripple_adder(&av[s..], &bv[s..], zero);
        b.output_bus("y", &sum);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Rounded fixed-point adder `ADDr(n, q)`: each operand is rounded to the
/// nearest multiple of `2^(n-q)` before the `q`-bit addition
/// (`(x + 2^(s-1)) >> s == (x >> s) + x_{s-1}`), which removes the
/// truncation bias at the cost of two extra carry inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddRound {
    n: u32,
    q: u32,
}

impl AddRound {
    /// Creates `ADDr(n, q)`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32` and `1 <= q < n` (use [`AddExact`] for
    /// `q == n`, where there is nothing to round).
    #[must_use]
    pub fn new(n: u32, q: u32) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        assert!((1..n).contains(&q), "q out of range");
        AddRound { n, q }
    }
}

impl ApxOperator for AddRound {
    fn name(&self) -> String {
        format!("ADDr({},{})", self.n, self.q)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.q
    }
    fn output_shift(&self) -> u32 {
        self.n - self.q
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let s = self.n - self.q;
        let ra = (a >> s).wrapping_add(bit(a, s - 1));
        let rb = (b >> s).wrapping_add(bit(b, s - 1));
        ra.wrapping_add(rb) & mask_u(self.q)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let s = self.n - self.q;
        let m = mask_u(self.q);
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            let ra = (ai >> s).wrapping_add(bit(ai, s - 1));
            let rb = (bi >> s).wrapping_add(bit(bi, s - 1));
            *o = ra.wrapping_add(rb) & m;
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let s = (self.n - self.q) as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", self.n as usize);
        let bv = b.input_bus("b", self.n as usize);
        // q-bit adder with cin = a's round bit, then an increment row
        // folding in b's round bit.
        let (sum, _cout) = b.ripple_adder(&av[s..], &bv[s..], av[s - 1]);
        let (rounded, _c2) = b.increment_row(&sum, bv[s - 1]);
        b.output_bus("y", &rounded);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Almost Correct Adder `ACA(n, p)` — Verma et al., DATE 2008.
///
/// Sum bit `i` is produced by an exact addition of the operand bits
/// `max(0, i-p)..=i` with a zero carry-in: the carry chain is speculated
/// over at most `p` positions. Errors are rare ("fail rare") but can have
/// a large amplitude when a long real carry is cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aca {
    n: u32,
    p: u32,
}

impl Aca {
    /// Creates `ACA(n, p)` with speculative carry length `p`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32` and `1 <= p <= n` (`p == n` degenerates
    /// to the exact adder).
    #[must_use]
    pub fn new(n: u32, p: u32) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        assert!((1..=n).contains(&p), "p out of range");
        Aca { n, p }
    }
}

impl ApxOperator for Aca {
    fn name(&self) -> String {
        format!("ACA({},{})", self.n, self.p)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let mut out = 0u64;
        for i in 0..self.n {
            let lo = i.saturating_sub(self.p);
            let w = i - lo + 1;
            let sa = (a >> lo) & mask_u(w);
            let sb = (b >> lo) & mask_u(w);
            out |= ((sa + sb) >> (i - lo) & 1) << i;
        }
        out
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // Bitsliced twin of the scalar model: propagate/generate words,
        // one speculative chain per output bit over 64 lanes at once.
        let (n, p) = (self.n as usize, self.p as usize);
        bitsliced_batch(self.n, a, b, out, |aw, bw, ow| {
            let mut ps = [0u64; 64];
            let mut gs = [0u64; 64];
            for i in 0..n {
                ps[i] = aw[i] ^ bw[i];
                gs[i] = aw[i] & bw[i];
            }
            for i in 0..n {
                let lo = i.saturating_sub(p);
                if i == lo {
                    ow[i] = ps[i];
                    continue;
                }
                let mut carry = gs[lo];
                for j in lo + 1..i {
                    carry = (ps[j] & carry) | gs[j];
                }
                ow[i] = ps[i] ^ carry;
            }
        });
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let p = self.p as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        // shared propagate/generate per bit position
        let ps: Vec<_> = (0..n).map(|i| b.xor(av[i], bv[i])).collect();
        let gs: Vec<_> = (0..n).map(|i| b.and(av[i], bv[i])).collect();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(p);
            if i == lo {
                out.push(ps[i]); // no carry window: sum = a ^ b
                continue;
            }
            // speculative carry chain over [lo, i-1], carry-in 0;
            // each link is one AOI21 + INV: c' = (p & c) | g
            let mut carry = gs[lo];
            for j in lo + 1..i {
                let ninv = b.gate1(CellKind::Aoi21, &[ps[j], carry, gs[j]]);
                carry = b.not(ninv);
            }
            out.push(b.xor(ps[i], carry));
        }
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Bitsliced batch kernel shared by the block-speculation adders: block
/// size `x`, speculation window `window` bits (`2x` for ETAIV, `x` for
/// ETAII). Each block's carry-in is the carry out of a zero-cin
/// propagate/generate chain over the window below it; the block itself
/// ripples word-parallel over 64 lanes.
fn eta_eval_batch(n: u32, x: u32, window: u32, a: &[u64], b: &[u64], out: &mut [u64]) {
    let (n, x, window) = (n as usize, x as usize, window as usize);
    bitsliced_batch(n as u32, a, b, out, |aw, bw, ow| {
        let mut ps = [0u64; 64];
        let mut gs = [0u64; 64];
        for i in 0..n {
            ps[i] = aw[i] ^ bw[i];
            gs[i] = aw[i] & bw[i];
        }
        for k in 0..n / x {
            let blo = k * x;
            let mut c = if k == 0 {
                0
            } else {
                let lo = blo.saturating_sub(window);
                let mut carry = gs[lo];
                for j in lo + 1..blo {
                    carry = (ps[j] & carry) | gs[j];
                }
                carry
            };
            for i in blo..blo + x {
                ow[i] = ps[i] ^ c;
                c = gs[i] | (ps[i] & c);
            }
        }
    });
}

/// Error-Tolerant Adder type IV `ETAIV(n, x)` — Zhu et al., ISOCC 2010.
///
/// The operands are split into `n/x` blocks of `x` bits. Block `k`
/// computes an exact `x`-bit sum whose carry-in is speculated from an
/// exact addition of the previous **two** blocks (carry-in 0), trading the
/// full carry chain for a chain of at most `2x` positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaIv {
    n: u32,
    x: u32,
}

impl EtaIv {
    /// Creates `ETAIV(n, x)` with block size `x`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32`, `x >= 1` and `x` divides `n`
    /// (`x == n` degenerates to the exact adder).
    #[must_use]
    pub fn new(n: u32, x: u32) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        assert!(x >= 1 && n.is_multiple_of(x), "x must divide n");
        EtaIv { n, x }
    }
}

impl ApxOperator for EtaIv {
    fn name(&self) -> String {
        format!("ETAIV({},{})", self.n, self.x)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let (n, x) = (self.n, self.x);
        let mut out = 0u64;
        for k in 0..n / x {
            let blo = k * x;
            let cin = if k == 0 {
                0
            } else {
                let lo = blo.saturating_sub(2 * x);
                let w = blo - lo;
                let sa = (a >> lo) & mask_u(w);
                let sb = (b >> lo) & mask_u(w);
                (sa + sb) >> w & 1
            };
            let sa = (a >> blo) & mask_u(x);
            let sb = (b >> blo) & mask_u(x);
            out |= ((sa + sb + cin) & mask_u(x)) << blo;
        }
        out
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        eta_eval_batch(self.n, self.x, 2 * self.x, a, b, out);
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let x = self.x as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let ps: Vec<_> = (0..n).map(|i| b.xor(av[i], bv[i])).collect();
        let gs: Vec<_> = (0..n).map(|i| b.and(av[i], bv[i])).collect();
        let zero = b.tie0();
        let mut out = Vec::with_capacity(n);
        for k in 0..n / x {
            let blo = k * x;
            let cin = if k == 0 {
                zero
            } else {
                let lo = blo.saturating_sub(2 * x);
                let mut carry = gs[lo];
                for j in lo + 1..blo {
                    let ninv = b.gate1(CellKind::Aoi21, &[ps[j], carry, gs[j]]);
                    carry = b.not(ninv);
                }
                carry
            };
            let (sum, _cout) = b.ripple_adder(&av[blo..blo + x], &bv[blo..blo + x], cin);
            out.extend(sum);
        }
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Error-Tolerant Adder type II `ETAII(n, x)` — Zhu et al., ISIC 2009:
/// the predecessor of [`EtaIv`] cited by the paper. Identical block
/// structure, but each block's carry-in is speculated from the previous
/// **one** block only, halving the speculation window (cheaper, less
/// accurate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EtaIi {
    n: u32,
    x: u32,
}

impl EtaIi {
    /// Creates `ETAII(n, x)` with block size `x`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32`, `x >= 1` and `x` divides `n`.
    #[must_use]
    pub fn new(n: u32, x: u32) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        assert!(x >= 1 && n.is_multiple_of(x), "x must divide n");
        EtaIi { n, x }
    }
}

impl ApxOperator for EtaIi {
    fn name(&self) -> String {
        format!("ETAII({},{})", self.n, self.x)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let (n, x) = (self.n, self.x);
        let mut out = 0u64;
        for k in 0..n / x {
            let blo = k * x;
            let cin = if k == 0 {
                0
            } else {
                let lo = blo - x;
                let sa = (a >> lo) & mask_u(x);
                let sb = (b >> lo) & mask_u(x);
                (sa + sb) >> x & 1
            };
            let sa = (a >> blo) & mask_u(x);
            let sb = (b >> blo) & mask_u(x);
            out |= ((sa + sb + cin) & mask_u(x)) << blo;
        }
        out
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        eta_eval_batch(self.n, self.x, self.x, a, b, out);
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let x = self.x as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let ps: Vec<_> = (0..n).map(|i| b.xor(av[i], bv[i])).collect();
        let gs: Vec<_> = (0..n).map(|i| b.and(av[i], bv[i])).collect();
        let zero = b.tie0();
        let mut out = Vec::with_capacity(n);
        for k in 0..n / x {
            let blo = k * x;
            let cin = if k == 0 {
                zero
            } else {
                let lo = blo - x;
                let mut carry = gs[lo];
                for j in lo + 1..blo {
                    let ninv = b.gate1(CellKind::Aoi21, &[ps[j], carry, gs[j]]);
                    carry = b.not(ninv);
                }
                carry
            };
            let (sum, _cout) = b.ripple_adder(&av[blo..blo + x], &bv[blo..blo + x], cin);
            out.extend(sum);
        }
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// The three approximate full-adder flavours of `RCAApx`, sorted by
/// decreasing accuracy as in the paper (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaType {
    /// IMPACT approximation 1: exact carry, sum wrong on 2 of 8 input rows
    /// (`011`, `100`).
    One,
    /// IMPACT approximation 2: exact carry, `sum = !cout`
    /// (wrong on `000`, `111`).
    Two,
    /// Wire-only cell: `sum = b`, `cout = a`. Zero transistors, worst
    /// accuracy.
    Three,
}

impl FaType {
    /// Applies the approximate truth table; returns `(sum, cout)` as 0/1.
    #[inline]
    #[must_use]
    pub fn apply(self, a: u64, b: u64, c: u64) -> (u64, u64) {
        let (s, co) = self.apply64(a, b, c);
        (s & 1, co & 1)
    }

    /// 64-lane form of [`FaType::apply`]: every bit position is one
    /// independent lane, so a whole batch of full-adder cells evaluates
    /// in a handful of word operations.
    #[inline]
    #[must_use]
    pub fn apply64(self, a: u64, b: u64, c: u64) -> (u64, u64) {
        let maj = (a & b) | (a & c) | (b & c);
        match self {
            FaType::One => ((!a & (b | c)) | (a & b & c), maj),
            FaType::Two => (!maj, maj),
            FaType::Three => (b, a),
        }
    }
}

impl fmt::Display for FaType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digit = match self {
            FaType::One => '1',
            FaType::Two => '2',
            FaType::Three => '3',
        };
        write!(f, "{digit}")
    }
}

/// Approximate ripple-carry adder `RCAApx(n, m, type)` — Gupta et al.,
/// ISLPED 2011 (IMPACT).
///
/// The `n-m` least-significant positions use approximate full-adder cells
/// of the given [`FaType`]; the top `m` positions are exact full adders
/// fed by the (approximate) carry of the LSB part. Quantization never
/// happens — all `n` output bits are produced, which is precisely the
/// "hidden cost" the paper measures at application level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcaApx {
    n: u32,
    m: u32,
    fa_type: FaType,
}

impl RcaApx {
    /// Creates `RCAApx(n, m, fa_type)` with `m` accurate MSBs.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32` and `m <= n`.
    #[must_use]
    pub fn new(n: u32, m: u32, fa_type: FaType) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        assert!(m <= n, "m out of range");
        RcaApx { n, m, fa_type }
    }
}

impl ApxOperator for RcaApx {
    fn name(&self) -> String {
        format!("RCAApx({},{},{})", self.n, self.m, self.fa_type)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let na = self.n - self.m; // approximate LSB count
        let mut c = 0u64;
        let mut out = 0u64;
        for i in 0..self.n {
            let (ai, bi) = (bit(a, i), bit(b, i));
            if i < na {
                let (s, cn) = self.fa_type.apply(ai, bi, c);
                out |= (s & 1) << i;
                c = cn & 1;
            } else {
                let tot = ai + bi + c;
                out |= (tot & 1) << i;
                c = tot >> 1;
            }
        }
        out
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // One approximate/exact full-adder cell per bit, 64 lanes per
        // word op — the same cell row the netlist instantiates.
        let (n, na) = (self.n as usize, (self.n - self.m) as usize);
        let fa_type = self.fa_type;
        bitsliced_batch(self.n, a, b, out, |aw, bw, ow| {
            let mut c = 0u64;
            for i in 0..n {
                if i < na {
                    let (s, cn) = fa_type.apply64(aw[i], bw[i], c);
                    ow[i] = s;
                    c = cn;
                } else {
                    ow[i] = aw[i] ^ bw[i] ^ c;
                    c = (aw[i] & bw[i]) | (aw[i] & c) | (bw[i] & c);
                }
            }
        });
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let na = (self.n - self.m) as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let mut carry = b.tie0();
        let mut out = Vec::with_capacity(n);
        for i in 0..na {
            match self.fa_type {
                FaType::One => {
                    let (s, c) = b.gate2(CellKind::FaX1, &[av[i], bv[i], carry]);
                    out.push(s);
                    carry = c;
                }
                FaType::Two => {
                    let (s, c) = b.gate2(CellKind::FaX2, &[av[i], bv[i], carry]);
                    out.push(s);
                    carry = c;
                }
                FaType::Three => {
                    // wires only: sum = b, carry = a
                    out.push(bv[i]);
                    carry = av[i];
                }
            }
        }
        for i in na..n {
            let (s, c) = b.full_adder(av[i], bv[i], carry);
            out.push(s);
            carry = c;
        }
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_netlist::verify::verify_exhaustive2;

    /// Cross-verifies netlist against functional model, exhaustively for
    /// n ≤ 10.
    fn cross_verify(op: &dyn ApxOperator) {
        let nl = op.netlist();
        verify_exhaustive2(&nl, |a, b| op.eval_u(a, b))
            .unwrap_or_else(|e| panic!("{}: {e}", op.name()));
    }

    #[test]
    fn exact_adder_netlist_matches_model() {
        for n in [2, 4, 8] {
            cross_verify(&AddExact::new(n));
        }
    }

    #[test]
    fn trunc_adder_netlist_matches_model() {
        for (n, q) in [(8, 2), (8, 5), (8, 8), (10, 3)] {
            cross_verify(&AddTrunc::new(n, q));
        }
    }

    #[test]
    fn round_adder_netlist_matches_model() {
        for (n, q) in [(8, 2), (8, 5), (8, 7), (10, 6)] {
            cross_verify(&AddRound::new(n, q));
        }
    }

    #[test]
    fn aca_netlist_matches_model() {
        for (n, p) in [(8, 1), (8, 2), (8, 4), (8, 7), (10, 3)] {
            cross_verify(&Aca::new(n, p));
        }
    }

    #[test]
    fn etaiv_netlist_matches_model() {
        for (n, x) in [(8, 1), (8, 2), (8, 4), (8, 8), (9, 3)] {
            cross_verify(&EtaIv::new(n, x));
        }
    }

    #[test]
    fn etaii_netlist_matches_model() {
        for (n, x) in [(8, 1), (8, 2), (8, 4), (8, 8), (9, 3)] {
            cross_verify(&EtaIi::new(n, x));
        }
    }

    #[test]
    fn etaiv_is_at_least_as_accurate_as_etaii() {
        // ETAIV's two-block speculation window subsumes ETAII's one-block
        // window, so its error rate cannot be worse.
        for x in [1u32, 2, 4] {
            let ii = EtaIi::new(8, x);
            let iv = EtaIv::new(8, x);
            let (mut e2, mut e4) = (0u64, 0u64);
            for a in 0..256u64 {
                for b in 0..256u64 {
                    let r = ii.reference_u(a, b);
                    e2 += u64::from(ii.eval_u(a, b) != r);
                    e4 += u64::from(iv.eval_u(a, b) != r);
                }
            }
            assert!(e4 <= e2, "x={x}: ETAIV errors {e4} !<= ETAII errors {e2}");
        }
    }

    #[test]
    fn rcaapx_netlist_matches_model() {
        for t in [FaType::One, FaType::Two, FaType::Three] {
            for (n, m) in [(8, 0), (8, 3), (8, 6), (8, 8)] {
                cross_verify(&RcaApx::new(n, m, t));
            }
        }
    }

    #[test]
    fn trunc_error_is_bounded_and_positive() {
        let op = AddTrunc::new(12, 8);
        let s = 4u32;
        for (a, b) in [(0u64, 0u64), (0xFFF, 0xFFF), (0xABC, 0x123), (0x00F, 0x0F0)] {
            let e = crate::centered_diff(op.reference_u(a, b), op.aligned_u(a, b), 12);
            assert!(e >= 0, "truncation never overshoots");
            assert!(e <= 2 * ((1 << s) - 1), "bounded by dropped input bits");
        }
    }

    #[test]
    fn round_error_is_smaller_in_magnitude_than_trunc() {
        // Over the full 8-bit exhaustive space, rounding must have lower MSE.
        let tr = AddTrunc::new(8, 5);
        let ro = AddRound::new(8, 5);
        let (mut se_t, mut se_r) = (0i64, 0i64);
        for a in 0..256u64 {
            for b in 0..256u64 {
                let r = tr.reference_u(a, b);
                let et = crate::centered_diff(r, tr.aligned_u(a, b), 8);
                let er = crate::centered_diff(r, ro.aligned_u(a, b), 8);
                se_t += et * et;
                se_r += er * er;
            }
        }
        assert!(se_r < se_t, "rounding MSE {se_r} !< truncation MSE {se_t}");
    }

    #[test]
    fn aca_with_full_window_is_exact() {
        let op = Aca::new(8, 8);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(op.eval_u(a, b), op.reference_u(a, b));
            }
        }
    }

    #[test]
    fn etaiv_single_block_is_exact() {
        let op = EtaIv::new(8, 8);
        for a in (0..256u64).step_by(3) {
            for b in (0..256u64).step_by(7) {
                assert_eq!(op.eval_u(a, b), op.reference_u(a, b));
            }
        }
    }

    #[test]
    fn rcaapx_all_accurate_is_exact() {
        let op = RcaApx::new(8, 8, FaType::Three);
        for a in (0..256u64).step_by(5) {
            for b in (0..256u64).step_by(3) {
                assert_eq!(op.eval_u(a, b), op.reference_u(a, b));
            }
        }
    }

    #[test]
    fn error_rate_ordering_of_fa_types() {
        // Exhaustive over 8-bit operands with m = 4 accurate MSBs: type 1
        // must err less often than type 3 (ordering per the paper).
        let count_errors = |t: FaType| {
            let op = RcaApx::new(8, 4, t);
            let mut wrong = 0u64;
            for a in 0..256u64 {
                for b in 0..256u64 {
                    if op.eval_u(a, b) != op.reference_u(a, b) {
                        wrong += 1;
                    }
                }
            }
            wrong
        };
        let (e1, e2, e3) = (
            count_errors(FaType::One),
            count_errors(FaType::Two),
            count_errors(FaType::Three),
        );
        // Types 1 and 2 each flip two symmetric truth-table rows (±1), so
        // under uniform inputs their aggregate error statistics coincide;
        // type 3 (wire-only) errs far more often. The trade-off that
        // justifies the type ordering is hardware cost (type 3 is free,
        // type 2 cheaper than type 1), checked in the netlist test below.
        assert_eq!(e1, e2, "types 1 and 2 have symmetric error tables");
        assert!(
            e1 < e3,
            "type1 ({e1}) must err less often than type3 ({e3})"
        );
    }

    #[test]
    fn aca_speculation_failures_are_rare_but_large() {
        // "fail rare / fail moderate" classification of §II-B.
        let op = Aca::new(16, 4);
        let mut wrong = 0u64;
        let mut max_abs = 0i64;
        let mut x = 0x1234_5678_u64;
        let mut next = || {
            // xorshift for a cheap deterministic stream
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 0xFFFF
        };
        let total = 20_000;
        for _ in 0..total {
            let (a, b) = (next(), next());
            let e = crate::centered_diff(op.reference_u(a, b), op.aligned_u(a, b), 16);
            if e != 0 {
                wrong += 1;
                max_abs = max_abs.max(e.abs());
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!(rate < 0.5, "errors should be the minority: {rate}");
        assert!(rate > 0.001, "but they must exist: {rate}");
        assert!(max_abs >= 1 << 4, "speculation failures are high-amplitude");
    }

    #[test]
    fn bitsliced_batches_match_scalar_eval_exhaustively() {
        let ops: Vec<Box<dyn ApxOperator>> = vec![
            Box::new(Aca::new(8, 1)),
            Box::new(Aca::new(8, 3)),
            Box::new(Aca::new(8, 8)),
            Box::new(EtaIv::new(8, 2)),
            Box::new(EtaIv::new(8, 4)),
            Box::new(EtaIi::new(8, 2)),
            Box::new(EtaIi::new(8, 8)),
            Box::new(RcaApx::new(8, 0, FaType::One)),
            Box::new(RcaApx::new(8, 3, FaType::Two)),
            Box::new(RcaApx::new(8, 5, FaType::Three)),
        ];
        // all 65536 operand pairs in batches of 256 (4 transposed chunks)
        for op in ops {
            let mut batch_a = Vec::new();
            let mut batch_b = Vec::new();
            let mut out = vec![0u64; 256];
            for a in 0..256u64 {
                batch_a.clear();
                batch_b.clear();
                for b in 0..256u64 {
                    batch_a.push(a);
                    batch_b.push(b);
                }
                op.eval_batch(&batch_a, &batch_b, &mut out);
                for (b, &got) in out.iter().enumerate() {
                    let want = op.eval_u(a, b as u64);
                    assert_eq!(got, want, "{} a={a} b={b}", op.name());
                }
            }
        }
    }

    #[test]
    fn aligned_batch_applies_shift_and_mask() {
        let op = AddTrunc::new(12, 8);
        let a: Vec<u64> = (0..100u64).map(|i| (i * 41) & 0xFFF).collect();
        let b: Vec<u64> = (0..100u64).map(|i| (i * 173) & 0xFFF).collect();
        let mut out = vec![0u64; 100];
        op.aligned_batch(&a, &b, &mut out);
        for i in 0..100 {
            assert_eq!(out[i], op.aligned_u(a[i], b[i]));
        }
    }

    #[test]
    fn paper_notation_names() {
        assert_eq!(AddTrunc::new(16, 10).name(), "ADDt(16,10)");
        assert_eq!(Aca::new(16, 12).name(), "ACA(16,12)");
        assert_eq!(EtaIv::new(16, 4).name(), "ETAIV(16,4)");
        assert_eq!(RcaApx::new(16, 6, FaType::Three).name(), "RCAApx(16,6,3)");
    }
}
