//! The `Sized` operator family: **exact** adders and multipliers
//! evaluated at a reduced effective bit-width — the paper's careful
//! data-sizing baseline, packaged as one uniform family so the Pareto
//! explorer can sweep it against the approximate operators.
//!
//! A sized operator keeps the full `n`-bit operand interface but
//! quantizes both inputs down to `w` effective bits (dropping the `n-w`
//! LSBs by truncation or round-to-nearest, selectable via [`QuantMode`])
//! and then applies a plain **exact** `w`-bit operator:
//!
//! * [`SizedAdd`] — `ADDst(n,w)` / `ADDsr(n,w)`: a `w`-bit ripple-carry
//!   adder behind the quantizers.
//! * [`SizedMul`] — `MULst(n,w)` / `MULsr(n,w)`: a `w×w → 2w`
//!   Baugh-Wooley array multiplier behind the quantizers. Unlike
//!   [`MulTrunc`](crate::MulTrunc) (which computes the full `n×n` array
//!   and drops *output* bits), the sized multiplier's hardware actually
//!   shrinks quadratically with `w` — the data-path saving the paper
//!   credits to careful sizing.
//!
//! The only error source is input quantization; the arithmetic itself
//! never fails. This is precisely the baseline the paper holds the
//! functional-approximation operators against.

use crate::mul_array::{build_columns, bw_terms, BwTerm};
use crate::traits::{ApxOperator, OpClass};
use crate::util::{bit, bitsliced_batch, mask_u, sext, to_u};
use apx_netlist::{NetId, Netlist, NetlistBuilder};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a sized operator drops the `n-w` operand LSBs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantMode {
    /// Plain truncation: `x -> x >> s`. Biased but free.
    Trunc,
    /// Round to nearest: `x -> (x >> s) + x_{s-1}`, wrapping at `w` bits
    /// (the same convention as [`AddRound`](crate::AddRound)). Centers
    /// the quantization error for one extra carry input per operand.
    Round,
}

impl QuantMode {
    /// Notation letter: `t` for truncation, `r` for rounding.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            QuantMode::Trunc => 't',
            QuantMode::Round => 'r',
        }
    }
}

impl fmt::Display for QuantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Quantizes the `n`-bit pattern `x` down to `w` effective bits.
/// Truncation keeps the top `w` bits; rounding adds the first dropped
/// bit back in. The rounding increment of the most-positive pattern
/// either wraps modulo `2^w` (`saturate == false`, the
/// [`AddRound`](crate::AddRound) convention — harmless behind a mod-`2^w`
/// adder) or saturates at the positive maximum (`saturate == true`, for
/// signed multipliers, where a wrap would flip the operand's sign).
/// For `w == n` this is the identity.
#[inline]
fn quantize(x: u64, n: u32, w: u32, mode: QuantMode, saturate: bool) -> u64 {
    let s = n - w;
    if s == 0 {
        return x & mask_u(w);
    }
    let q = (x >> s) & mask_u(w);
    match mode {
        QuantMode::Trunc => q,
        QuantMode::Round => {
            let r = bit(x, s - 1);
            if saturate && q == mask_u(w) >> 1 {
                q // +max rounds to itself instead of wrapping to -max
            } else {
                q.wrapping_add(r) & mask_u(w)
            }
        }
    }
}

/// Builds the quantized-operand nets for a sized multiplier netlist: the
/// top `w` input bits, incremented by the first dropped bit when
/// rounding, with the increment saturated at the positive maximum (the
/// signed-operand convention of [`quantize`] with `saturate == true`).
fn quantized_bus(b: &mut NetlistBuilder, bus: &[NetId], s: usize, mode: QuantMode) -> Vec<NetId> {
    match mode {
        QuantMode::Trunc => bus[s..].to_vec(),
        QuantMode::Round => {
            let w = bus.len() - s;
            let (rounded, _carry) = b.increment_row(&bus[s..], bus[s - 1]);
            // overflow happens exactly on the +max pattern 0111…1 with a
            // set round bit; saturate by forcing the result back to +max
            let mut ov = bus[s - 1];
            for &kept in &bus[s..bus.len() - 1] {
                ov = b.and(ov, kept);
            }
            let nsign = b.not(bus[bus.len() - 1]);
            ov = b.and(ov, nsign);
            let mut out = Vec::with_capacity(w);
            for (i, &r) in rounded.iter().enumerate() {
                if i < w - 1 {
                    out.push(b.or(r, ov)); // low bits of +max are all 1
                } else {
                    let nov = b.not(ov);
                    out.push(b.and(r, nov)); // sign bit of +max is 0
                }
            }
            out
        }
    }
}

/// Sized exact adder `ADDst(n,w)` / `ADDsr(n,w)`: both `n`-bit operands
/// are quantized to `w` bits and added by an exact `w`-bit ripple-carry
/// adder. The careful-data-sizing adder baseline of the Pareto overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizedAdd {
    n: u32,
    w: u32,
    mode: QuantMode,
}

impl SizedAdd {
    /// Creates a sized adder over `n`-bit operands at `w` effective bits.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 32` and `2 <= w <= n` (`w < n` for
    /// rounding — at `w == n` there is nothing to round).
    #[must_use]
    pub fn new(n: u32, w: u32, mode: QuantMode) -> Self {
        assert!((2..=32).contains(&n), "n out of range");
        match mode {
            QuantMode::Trunc => assert!((2..=n).contains(&w), "w out of range"),
            QuantMode::Round => assert!((2..n).contains(&w), "w out of range"),
        }
        SizedAdd { n, w, mode }
    }

    /// Effective operand width after quantization.
    #[must_use]
    pub fn effective_bits(&self) -> u32 {
        self.w
    }
}

impl ApxOperator for SizedAdd {
    fn name(&self) -> String {
        format!("ADDs{}({},{})", self.mode, self.n, self.w)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Adder
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.w
    }
    fn output_shift(&self) -> u32 {
        self.n - self.w
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let qa = quantize(a, self.n, self.w, self.mode, false);
        let qb = quantize(b, self.n, self.w, self.mode, false);
        qa.wrapping_add(qb) & mask_u(self.w)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // Bitsliced twin of the scalar model: a word-parallel ripple over
        // the kept bits, with the round bits folded in as the two extra
        // carry inputs the ADDr netlist uses.
        let (n, w) = (self.n as usize, self.w as usize);
        let s = n - w;
        let round = self.mode == QuantMode::Round;
        bitsliced_batch(self.n, a, b, out, |aw, bw, ow| {
            let mut carry = if round { aw[s - 1] } else { 0 };
            for i in 0..w {
                let (ai, bi) = (aw[s + i], bw[s + i]);
                ow[i] = ai ^ bi ^ carry;
                carry = (ai & bi) | (ai & carry) | (bi & carry);
            }
            if round {
                // increment row folding in b's round bit
                let mut c = bw[s - 1];
                for o in ow.iter_mut().take(w) {
                    let next = *o & c;
                    *o ^= c;
                    c = next;
                }
            }
            ow[w..n].fill(0);
        });
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let s = (self.n - self.w) as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", self.n as usize);
        let bv = b.input_bus("b", self.n as usize);
        let sum = match self.mode {
            QuantMode::Trunc => {
                let zero = b.tie0();
                let (sum, _cout) = b.ripple_adder(&av[s..], &bv[s..], zero);
                sum
            }
            QuantMode::Round => {
                // w-bit adder with cin = a's round bit, then an increment
                // row folding in b's round bit (the AddRound structure).
                let (sum, _cout) = b.ripple_adder(&av[s..], &bv[s..], av[s - 1]);
                let (rounded, _c2) = b.increment_row(&sum, bv[s - 1]);
                rounded
            }
        };
        b.output_bus("y", &sum);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Sized exact multiplier `MULst(n,w)` / `MULsr(n,w)`: both `n`-bit
/// operands are quantized to `w` bits and multiplied by an exact
/// `w×w → 2w` Baugh-Wooley array. The multiplier hardware shrinks
/// quadratically with `w` — the data-path saving behind the paper's
/// headline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizedMul {
    n: u32,
    w: u32,
    mode: QuantMode,
    cols: Vec<Vec<BwTerm>>,
}

impl SizedMul {
    /// Creates a sized multiplier over `n`-bit operands at `w` effective
    /// bits.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 24` and `2 <= w <= n` (`w < n` for
    /// rounding).
    #[must_use]
    pub fn new(n: u32, w: u32, mode: QuantMode) -> Self {
        assert!((2..=24).contains(&n), "n out of range");
        match mode {
            QuantMode::Trunc => assert!((2..=n).contains(&w), "w out of range"),
            QuantMode::Round => assert!((2..n).contains(&w), "w out of range"),
        }
        SizedMul {
            n,
            w,
            mode,
            cols: bw_terms(w),
        }
    }

    /// Effective operand width after quantization.
    #[must_use]
    pub fn effective_bits(&self) -> u32 {
        self.w
    }
}

impl ApxOperator for SizedMul {
    fn name(&self) -> String {
        format!("MULs{}({},{})", self.mode, self.n, self.w)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        2 * self.w
    }
    fn output_shift(&self) -> u32 {
        2 * (self.n - self.w)
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        // The signed product of the quantized operands — extensionally
        // equal to summing the w-bit Baugh-Wooley grid the netlist
        // instantiates (pinned by the cross-verification tests).
        let qa = quantize(a, self.n, self.w, self.mode, true);
        let qb = quantize(b, self.n, self.w, self.mode, true);
        to_u(sext(qa, self.w).wrapping_mul(sext(qb, self.w)), 2 * self.w)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // Word-parallel: the saturating quantizers and the reduced w×w
        // product are a handful of word ops per sample, monomorphized
        // here so the batch loop pays no per-sample dynamic dispatch.
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let (n, w, mode) = (self.n, self.w, self.mode);
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            let qa = quantize(ai, n, w, mode, true);
            let qb = quantize(bi, n, w, mode, true);
            *o = to_u(sext(qa, w).wrapping_mul(sext(qb, w)), 2 * w);
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let s = (self.n - self.w) as usize;
        let w = self.w as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", self.n as usize);
        let bv = b.input_bus("b", self.n as usize);
        let qa = quantized_bus(&mut b, &av, s, self.mode);
        let qb = quantized_bus(&mut b, &bv, s, self.mode);
        let columns = build_columns(&mut b, &self.cols, &qa, &qb, |_| true);
        let out = b.compress_columns(columns, 2 * w);
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddRound, AddTrunc, MulTrunc};
    use apx_netlist::verify::{verify_exhaustive2, verify_random2};

    fn cross_verify(op: &dyn ApxOperator) {
        let nl = op.netlist();
        verify_exhaustive2(&nl, |a, b| op.eval_u(a, b))
            .unwrap_or_else(|e| panic!("{}: {e}", op.name()));
    }

    #[test]
    fn sized_adder_netlist_matches_model() {
        for mode in [QuantMode::Trunc, QuantMode::Round] {
            for (n, w) in [(8, 2), (8, 5), (8, 7), (10, 4)] {
                cross_verify(&SizedAdd::new(n, w, mode));
            }
        }
        cross_verify(&SizedAdd::new(8, 8, QuantMode::Trunc));
    }

    #[test]
    fn sized_multiplier_netlist_matches_model() {
        for mode in [QuantMode::Trunc, QuantMode::Round] {
            for (n, w) in [(4, 2), (5, 3), (6, 4), (6, 5)] {
                cross_verify(&SizedMul::new(n, w, mode));
            }
        }
        cross_verify(&SizedMul::new(5, 5, QuantMode::Trunc));
        let big = SizedMul::new(16, 10, QuantMode::Round);
        verify_random2(&big.netlist(), 2_000, 17, |a, b| big.eval_u(a, b)).unwrap();
    }

    #[test]
    fn sized_trunc_adder_matches_the_legacy_fixed_point_operators() {
        // ADDst(n,w) computes the same function as ADDt(n,w) and
        // ADDsr(n,w) the same as ADDr(n,w): the Sized family unifies the
        // legacy sizing operators under one parameterization.
        let st = SizedAdd::new(8, 5, QuantMode::Trunc);
        let t = AddTrunc::new(8, 5);
        let sr = SizedAdd::new(8, 5, QuantMode::Round);
        let r = AddRound::new(8, 5);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(st.eval_u(a, b), t.eval_u(a, b), "trunc a={a} b={b}");
                assert_eq!(sr.eval_u(a, b), r.eval_u(a, b), "round a={a} b={b}");
            }
        }
    }

    #[test]
    fn full_width_sized_operators_are_exact() {
        let add = SizedAdd::new(8, 8, QuantMode::Trunc);
        let mul = SizedMul::new(4, 4, QuantMode::Trunc);
        for a in 0..256u64 {
            for b in 0..256u64 {
                assert_eq!(add.eval_u(a, b), add.reference_u(a, b));
            }
        }
        for a in 0..16u64 {
            for b in 0..16u64 {
                assert_eq!(mul.aligned_u(a, b), mul.reference_u(a, b));
            }
        }
    }

    #[test]
    fn rounding_beats_truncation_on_sized_mse() {
        for op_pair in [
            (
                Box::new(SizedAdd::new(8, 5, QuantMode::Trunc)) as Box<dyn ApxOperator>,
                Box::new(SizedAdd::new(8, 5, QuantMode::Round)) as Box<dyn ApxOperator>,
            ),
            (
                Box::new(SizedMul::new(6, 4, QuantMode::Trunc)),
                Box::new(SizedMul::new(6, 4, QuantMode::Round)),
            ),
        ] {
            let (tr, ro) = op_pair;
            let bits = tr.ref_bits();
            let (mut se_t, mut se_r) = (0i128, 0i128);
            let m = mask_u(tr.input_bits());
            for a in 0..=m {
                for b in 0..=m {
                    let r = tr.reference_u(a, b);
                    let et = i128::from(crate::centered_diff(r, tr.aligned_u(a, b), bits));
                    let er = i128::from(crate::centered_diff(r, ro.aligned_u(a, b), bits));
                    se_t += et * et;
                    se_r += er * er;
                }
            }
            assert!(se_r < se_t, "{}: round {se_r} !< trunc {se_t}", tr.name());
        }
    }

    #[test]
    fn sized_multiplier_hardware_shrinks_with_w() {
        // the whole point of the family: the sized multiplier's array is
        // w×w, not n×n — gates must fall sharply with w, and below the
        // full-interface fixed-width multiplier of the same n
        let full = MulTrunc::new(16, 16).netlist().stats().num_gates;
        let w12 = SizedMul::new(16, 12, QuantMode::Trunc)
            .netlist()
            .stats()
            .num_gates;
        let w8 = SizedMul::new(16, 8, QuantMode::Trunc)
            .netlist()
            .stats()
            .num_gates;
        assert!(w12 < full, "MULst(16,12) {w12} !< MULt(16,16) {full}");
        assert!(w8 < w12, "MULst(16,8) {w8} !< MULst(16,12) {w12}");
    }

    #[test]
    fn sized_batch_matches_scalar_exhaustively() {
        let ops: Vec<Box<dyn ApxOperator>> = vec![
            Box::new(SizedAdd::new(8, 3, QuantMode::Trunc)),
            Box::new(SizedAdd::new(8, 5, QuantMode::Round)),
            Box::new(SizedAdd::new(8, 8, QuantMode::Trunc)),
            Box::new(SizedMul::new(8, 5, QuantMode::Trunc)),
            Box::new(SizedMul::new(8, 6, QuantMode::Round)),
        ];
        for op in ops {
            let mut batch_a = Vec::new();
            let mut batch_b = Vec::new();
            let mut out = vec![0u64; 256];
            for a in 0..256u64 {
                batch_a.clear();
                batch_b.clear();
                for b in 0..256u64 {
                    batch_a.push(a);
                    batch_b.push(b);
                }
                op.eval_batch(&batch_a, &batch_b, &mut out);
                for (b, &got) in out.iter().enumerate() {
                    assert_eq!(got, op.eval_u(a, b as u64), "{} a={a} b={b}", op.name());
                }
            }
        }
    }

    #[test]
    fn paper_notation_names() {
        assert_eq!(
            SizedAdd::new(16, 10, QuantMode::Trunc).name(),
            "ADDst(16,10)"
        );
        assert_eq!(
            SizedAdd::new(16, 10, QuantMode::Round).name(),
            "ADDsr(16,10)"
        );
        assert_eq!(
            SizedMul::new(16, 10, QuantMode::Trunc).name(),
            "MULst(16,10)"
        );
        assert_eq!(
            SizedMul::new(16, 10, QuantMode::Round).name(),
            "MULsr(16,10)"
        );
    }
}
