//! Radix-4 modified-Booth multipliers: the exact reference and the pruned
//! fixed-width ABM of Juang & Hsiao (IEEE TCAS-II, 2005), plus the
//! uncorrected variant that reproduces the catastrophic instance measured
//! in the paper (Table I: MSE ≈ −10 dB).
//!
//! # Construction
//!
//! Operand `b` is recoded into `n/2` radix-4 digits `d_k ∈ {-2,-1,0,1,2}`
//! (`x1` = select `±a`, `x2` = select `±2a`, `neg` = negative digit). Each
//! row contributes, at weight `4^k`:
//!
//! * `n+1` pattern bits `pp_t = ((x1·a_t) | (x2·a_{t-1})) ⊕ neg`,
//! * a `+neg` correction at the row LSB (two's-complement of the row),
//! * sign extension folded into a single inverted sign bit `!pp_n` at
//!   column `2k+n+1` plus a precomputed constant vector (the standard
//!   "E-bit" simplification, exact mod `2^{2n}`).
//!
//! [`Abm`] prunes every grid entry below column `n` and compensates with
//! the column-`n-1` pattern bits (OR-paired into column `n` — the
//! "compensation circuit using the most significant bits of the dropped
//! part" of the paper). [`AbmUncorrected`] additionally drops the
//! sign-extension bits *and* the constant vector together with the pruned
//! half — the sign handling of negative rows then breaks, producing
//! full-scale, operand-dependent errors. This is our attribution of the
//! paper's measured ABM behaviour (7 orders of magnitude MSE degradation,
//! K-means success collapsing to ~10 %); see EXPERIMENTS.md.

use crate::traits::{ApxOperator, OpClass};
use crate::util::{bit, bitsliced_batch, compress_columns64, mask_u, sext, to_u};
use apx_netlist::{NetId, Netlist, NetlistBuilder};
use std::collections::HashMap;

/// Booth encoder signals for digit `k` of operand `b`: `(x1, x2, neg)`.
#[inline]
pub(crate) fn booth_enc(b: u64, k: u32, n: u32) -> (u64, u64, u64) {
    debug_assert!(2 * k + 1 < n);
    let b_hi = bit(b, 2 * k + 1);
    let b_mid = bit(b, 2 * k);
    let b_lo = if k == 0 { 0 } else { bit(b, 2 * k - 1) };
    let x1 = b_mid ^ b_lo;
    let x2 = (1 ^ x1) & (b_hi ^ b_mid);
    (x1, x2, b_hi)
}

/// Pattern bit `t ∈ 0..=n` of Booth row `k` (before weighting).
#[inline]
pub(crate) fn booth_pp(a: u64, n: u32, x1: u64, x2: u64, neg: u64, t: u32) -> u64 {
    let a_t = if t < n { bit(a, t) } else { bit(a, n - 1) };
    let a_shift = if t > 0 { bit(a, t - 1) } else { 0 };
    ((x1 & a_t) | (x2 & a_shift)) ^ neg
}

/// The constant vector absorbing all rows' sign extensions, mod `2^{2n}`.
pub(crate) fn booth_const(n: u32) -> u64 {
    let m = mask_u(2 * n);
    let mut c = 0u64;
    for k in 0..n / 2 {
        let pos = 2 * k + n + 1;
        c = c.wrapping_sub(1u64 << pos) & m;
    }
    c
}

/// Which parts of the Booth grid an instance keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BoothPruning {
    /// Grid entries below this column are dropped (0 = keep everything).
    min_col: u32,
    /// Keep the inverted-sign bits and the constant vector.
    sign_correction: bool,
    /// OR-pair the column `min_col - 1` pattern bits into `min_col`.
    diagonal_compensation: bool,
}

fn booth_eval(n: u32, a: u64, b: u64, pruning: BoothPruning) -> u128 {
    let mut total = 0u128;
    for k in 0..n / 2 {
        let (x1, x2, neg) = booth_enc(b, k, n);
        for t in 0..=n {
            let col = 2 * k + t;
            let pp = booth_pp(a, n, x1, x2, neg, t);
            if col >= pruning.min_col {
                total += u128::from(pp) << col;
            } else if pruning.diagonal_compensation && col + 1 == pruning.min_col {
                // handled below (needs pairing); collect later
            }
        }
        let neg_col = 2 * k;
        if neg_col >= pruning.min_col {
            total += u128::from(neg) << neg_col;
        }
        if pruning.sign_correction {
            let sign_col = 2 * k + n + 1;
            if sign_col >= pruning.min_col && sign_col < 2 * n {
                let s = booth_pp(a, n, x1, x2, neg, n);
                total += u128::from(1 ^ s) << sign_col;
            }
        }
    }
    if pruning.sign_correction {
        let c = booth_const(n);
        let kept_const = if pruning.min_col == 0 {
            c
        } else {
            c & !mask_u(pruning.min_col)
        };
        total += u128::from(kept_const);
    }
    if pruning.diagonal_compensation && pruning.min_col > 0 {
        let comp_col = pruning.min_col - 1;
        let mut diag = Vec::new();
        for k in 0..n / 2 {
            if comp_col >= 2 * k && comp_col - 2 * k <= n {
                let (x1, x2, neg) = booth_enc(b, k, n);
                diag.push(booth_pp(a, n, x1, x2, neg, comp_col - 2 * k));
            }
        }
        for pair in diag.chunks(2) {
            let or = pair.iter().copied().fold(0, |acc, v| acc | v);
            total += u128::from(or) << pruning.min_col;
        }
    }
    total
}

/// 64-lane bitsliced twin of [`booth_eval`] for the pruned fixed-width
/// variants (`min_col == n`, output `(total >> n) & mask(n)`): the Booth
/// encoders, pattern bits, sign bits and compensation ORs all evaluate as
/// single word ops over transposed lane words, and the rebased columns
/// run through word-parallel carry-save compression. Every kept term sits
/// at column `>= n`, so compressing the rebased grid mod `2^n` is exactly
/// the scalar model's shift-and-mask.
fn booth_eval_batch(n: u32, pruning: BoothPruning, a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert_eq!(pruning.min_col, n, "kernel is for fixed-width pruning");
    let nu = n as usize;
    let mut cols: Vec<Vec<u64>> = vec![Vec::new(); nu];
    let mut diag: Vec<u64> = Vec::new();
    bitsliced_batch(n, a, b, out, move |aw, bw, ow| {
        for k in 0..nu / 2 {
            let b_hi = bw[2 * k + 1];
            let b_mid = bw[2 * k];
            let b_lo = if k == 0 { 0 } else { bw[2 * k - 1] };
            let x1 = b_mid ^ b_lo;
            let x2 = !x1 & (b_hi ^ b_mid);
            let neg = b_hi;
            let pp = |t: usize| -> u64 {
                let a_t = aw[t.min(nu - 1)];
                let a_shift = if t > 0 { aw[t - 1] } else { 0 };
                ((x1 & a_t) | (x2 & a_shift)) ^ neg
            };
            for t in 0..=nu {
                let col = 2 * k + t;
                if col >= nu {
                    cols[col - nu].push(pp(t));
                }
            }
            // the +neg corrections all sit at columns 2k < n: pruned
            if pruning.sign_correction {
                let sign_col = 2 * k + nu + 1;
                if sign_col < 2 * nu {
                    cols[sign_col - nu].push(!pp(nu));
                }
            }
            if pruning.diagonal_compensation {
                let comp_col = nu - 1;
                if comp_col >= 2 * k && comp_col - 2 * k <= nu {
                    diag.push(pp(comp_col - 2 * k));
                }
            }
        }
        if pruning.sign_correction {
            let c = booth_const(n) & !mask_u(n);
            for col in nu..2 * nu {
                if bit(c, col as u32) == 1 {
                    cols[col - nu].push(!0);
                }
            }
        }
        for pair in diag.chunks(2) {
            let or = pair.iter().copied().fold(0, |x, y| x | y);
            cols[0].push(or);
        }
        diag.clear();
        compress_columns64(&mut cols, ow);
    });
}

/// Shared netlist generator for all Booth variants.
fn booth_netlist(name: String, n: u32, pruning: BoothPruning) -> Netlist {
    let nu = n as usize;
    let mut b = NetlistBuilder::new(name);
    let av = b.input_bus("a", nu);
    let bv = b.input_bus("b", nu);

    // Per-row encoder nets.
    let mut enc = Vec::new();
    for k in 0..(n / 2) as usize {
        let b_hi = bv[2 * k + 1];
        let b_mid = bv[2 * k];
        let (x1, x2);
        if k == 0 {
            x1 = b_mid;
            let hx = b.xor(b_hi, b_mid);
            let nx1 = b.not(x1);
            x2 = b.and(nx1, hx);
        } else {
            let b_lo = bv[2 * k - 1];
            x1 = b.xor(b_mid, b_lo);
            let hx = b.xor(b_hi, b_mid);
            let nx1 = b.not(x1);
            x2 = b.and(nx1, hx);
        }
        enc.push((x1, x2, b_hi));
    }

    // Lazily build pattern-bit nets.
    let mut cache: HashMap<(u32, u32), NetId> = HashMap::new();
    let mut pattern = |b: &mut NetlistBuilder, k: u32, t: u32| -> NetId {
        if let Some(&net) = cache.get(&(k, t)) {
            return net;
        }
        let (x1, x2, neg) = enc[k as usize];
        let a_t = if t < n {
            av[t as usize]
        } else {
            av[(n - 1) as usize]
        };
        let e = if t == 0 {
            b.and(x1, a_t)
        } else {
            let e1 = b.and(x1, a_t);
            let e2 = b.and(x2, av[(t - 1) as usize]);
            b.or(e1, e2)
        };
        let pp = b.xor(e, neg);
        cache.insert((k, t), pp);
        pp
    };

    let total_cols = (2 * n) as usize;
    let base = pruning.min_col as usize;
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); total_cols - base];
    for k in 0..n / 2 {
        let (_, _, neg) = enc[k as usize];
        for t in 0..=n {
            let col = 2 * k + t;
            if col >= pruning.min_col && col < 2 * n {
                let pp = pattern(&mut b, k, t);
                columns[(col - pruning.min_col) as usize].push(pp);
            }
        }
        let neg_col = 2 * k;
        if neg_col >= pruning.min_col {
            columns[(neg_col - pruning.min_col) as usize].push(neg);
        }
        if pruning.sign_correction {
            let sign_col = 2 * k + n + 1;
            if sign_col >= pruning.min_col && sign_col < 2 * n {
                let s = pattern(&mut b, k, n);
                let inv = b.not(s);
                columns[(sign_col - pruning.min_col) as usize].push(inv);
            }
        }
    }
    if pruning.sign_correction {
        let c = booth_const(n);
        let one = b.tie1();
        for col in pruning.min_col..2 * n {
            if bit(c, col) == 1 {
                columns[(col - pruning.min_col) as usize].push(one);
            }
        }
    }
    if pruning.diagonal_compensation && pruning.min_col > 0 {
        let comp_col = pruning.min_col - 1;
        let mut diag = Vec::new();
        for k in 0..n / 2 {
            if comp_col >= 2 * k && comp_col - 2 * k <= n {
                diag.push(pattern(&mut b, k, comp_col - 2 * k));
            }
        }
        for pair in diag.chunks(2) {
            let comp = if pair.len() == 2 {
                b.or(pair[0], pair[1])
            } else {
                pair[0]
            };
            columns[0].push(comp);
        }
    }

    let width = total_cols - base;
    let out = b.compress_columns(columns, width);
    b.output_bus("y", &out);
    let mut nl = b.finish();
    nl.prune_dead_gates();
    nl
}

/// Exact radix-4 modified-Booth multiplier, `n×n → 2n` — the substrate on
/// which [`Abm`] is built, and a second exact multiplier architecture for
/// architecture-level ablations against [`crate::MulExact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulBoothExact {
    n: u32,
}

impl MulBoothExact {
    /// Creates an exact Booth multiplier.
    ///
    /// # Panics
    /// Panics unless `4 <= n <= 24` and `n` is even.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(
            (4..=24).contains(&n) && n.is_multiple_of(2),
            "n must be even, 4..=24"
        );
        MulBoothExact { n }
    }
}

impl ApxOperator for MulBoothExact {
    fn name(&self) -> String {
        format!("MULbooth({},{})", self.n, 2 * self.n)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        2 * self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let pruning = BoothPruning {
            min_col: 0,
            sign_correction: true,
            diagonal_compensation: false,
        };
        (booth_eval(self.n, a, b, pruning) as u64) & mask_u(2 * self.n)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // The unpruned Booth grid sums to the native signed product mod
        // 2^{2n} (pinned by `exact_booth_equals_the_signed_product`), so
        // the batch path is a word-parallel product loop.
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let n = self.n;
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = to_u(sext(ai, n).wrapping_mul(sext(bi, n)), 2 * n);
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        booth_netlist(
            self.name(),
            self.n,
            BoothPruning {
                min_col: 0,
                sign_correction: true,
                diagonal_compensation: false,
            },
        )
    }
}

/// Approximate Booth Multiplier `ABM(n)` — Juang & Hsiao 2005: fixed-width
/// pruned modified-Booth multiplier **with** correct sign handling in the
/// kept half and diagonal compensation. This is the faithful
/// implementation; its accuracy is close to [`crate::Aam`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abm {
    n: u32,
}

impl Abm {
    /// Creates `ABM(n)`.
    ///
    /// # Panics
    /// Panics unless `4 <= n <= 24` and `n` is even.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(
            (4..=24).contains(&n) && n.is_multiple_of(2),
            "n must be even, 4..=24"
        );
        Abm { n }
    }

    fn pruning(&self) -> BoothPruning {
        BoothPruning {
            min_col: self.n,
            sign_correction: true,
            diagonal_compensation: true,
        }
    }
}

impl ApxOperator for Abm {
    fn name(&self) -> String {
        format!("ABM({})", self.n)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn output_shift(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let total = booth_eval(self.n, a, b, self.pruning());
        ((total >> self.n) as u64) & mask_u(self.n)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        booth_eval_batch(self.n, self.pruning(), a, b, out);
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        booth_netlist(self.name(), self.n, self.pruning())
    }
}

/// The uncorrected pruned-Booth variant `ABMu(n)`: pruning removes the
/// sign-extension bits and constant vector along with the low half of the
/// summand grid. Negative Booth rows are then summed as if they were
/// positive magnitude patterns, which corrupts the most significant output
/// bits in an operand-dependent way.
///
/// Used as the paper-shape instance of ABM (Table I reports MSE ≈ −10 dB
/// and K-means success ≈ 10 % for its ABM — 7 orders of magnitude worse
/// than fixed point, which no sign-correct pruning can produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbmUncorrected {
    n: u32,
}

impl AbmUncorrected {
    /// Creates `ABMu(n)`.
    ///
    /// # Panics
    /// Panics unless `4 <= n <= 24` and `n` is even.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(
            (4..=24).contains(&n) && n.is_multiple_of(2),
            "n must be even, 4..=24"
        );
        AbmUncorrected { n }
    }

    fn pruning(&self) -> BoothPruning {
        BoothPruning {
            min_col: self.n,
            sign_correction: false,
            diagonal_compensation: true,
        }
    }
}

impl ApxOperator for AbmUncorrected {
    fn name(&self) -> String {
        format!("ABMu({})", self.n)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn output_shift(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let total = booth_eval(self.n, a, b, self.pruning());
        ((total >> self.n) as u64) & mask_u(self.n)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        booth_eval_batch(self.n, self.pruning(), a, b, out);
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        booth_netlist(self.name(), self.n, self.pruning())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{sext, to_u};
    use apx_netlist::verify::{verify_exhaustive2, verify_random2};

    #[test]
    fn booth_digits_recompose_the_operand() {
        for n in [4u32, 6, 8] {
            for b in 0..1u64 << n {
                let mut acc: i64 = 0;
                for k in 0..n / 2 {
                    let (x1, x2, neg) = booth_enc(b, k, n);
                    let mag = (x1 + 2 * x2) as i64;
                    let d = if neg == 1 { -mag } else { mag };
                    acc += d << (2 * k);
                }
                assert_eq!(acc, sext(b, n), "n={n} b={b:#x}");
            }
        }
    }

    #[test]
    fn exact_booth_equals_the_signed_product() {
        for n in [4u32, 6, 8] {
            let op = MulBoothExact::new(n);
            for a in 0..1u64 << n {
                for b in 0..1u64 << n {
                    let want = to_u(sext(a, n).wrapping_mul(sext(b, n)), 2 * n);
                    assert_eq!(op.eval_u(a, b), want, "n={n} a={a:#x} b={b:#x}");
                }
            }
        }
    }

    #[test]
    fn exact_booth_netlist_matches_model() {
        for n in [4u32, 6] {
            let op = MulBoothExact::new(n);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
        let op = MulBoothExact::new(16);
        verify_random2(&op.netlist(), 2_000, 17, |a, b| op.eval_u(a, b)).unwrap();
    }

    #[test]
    fn abm_netlist_matches_model() {
        for n in [4u32, 6, 8] {
            let op = Abm::new(n);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
        let op = Abm::new(16);
        verify_random2(&op.netlist(), 2_000, 19, |a, b| op.eval_u(a, b)).unwrap();
    }

    #[test]
    fn abm_uncorrected_netlist_matches_model() {
        for n in [4u32, 8] {
            let op = AbmUncorrected::new(n);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
        let op = AbmUncorrected::new(16);
        verify_random2(&op.netlist(), 2_000, 23, |a, b| op.eval_u(a, b)).unwrap();
    }

    #[test]
    fn booth_batches_match_scalar_eval_exhaustively() {
        let ops: Vec<Box<dyn ApxOperator>> = vec![
            Box::new(MulBoothExact::new(4)),
            Box::new(MulBoothExact::new(8)),
            Box::new(Abm::new(4)),
            Box::new(Abm::new(8)),
            Box::new(AbmUncorrected::new(4)),
            Box::new(AbmUncorrected::new(8)),
        ];
        for op in ops {
            assert!(op.batch_accelerated(), "{}", op.name());
            let m = mask_u(op.input_bits());
            let mut batch_a = Vec::new();
            let mut batch_b = Vec::new();
            let mut out = vec![0u64; (m + 1) as usize];
            for a in 0..=m {
                batch_a.clear();
                batch_b.clear();
                for b in 0..=m {
                    batch_a.push(a);
                    batch_b.push(b);
                }
                op.eval_batch(&batch_a, &batch_b, &mut out);
                for (b, &got) in out.iter().enumerate() {
                    let want = op.eval_u(a, b as u64);
                    assert_eq!(got, want, "{} a={a} b={b}", op.name());
                }
            }
            // ragged tail (len % 64 != 0) through the same kernel
            let take = batch_a.len().min(97);
            let mut ragged = vec![0u64; take];
            op.eval_batch(&batch_a[..take], &batch_b[..take], &mut ragged);
            for (i, &got) in ragged.iter().enumerate() {
                assert_eq!(got, op.eval_u(batch_a[i], batch_b[i]), "{}", op.name());
            }
        }
    }

    #[test]
    fn corrected_abm_tracks_the_product() {
        let op = Abm::new(8);
        let mut worst = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = crate::centered_diff(op.reference_u(a, b), op.aligned_u(a, b), 16);
                worst = worst.max(e.abs() / 256);
            }
        }
        assert!(worst <= 10, "corrected ABM within ~10 output LSBs: {worst}");
    }

    #[test]
    fn uncorrected_abm_is_catastrophically_worse() {
        // The whole point of the variant: orders of magnitude more MSE.
        let good = Abm::new(8);
        let bad = AbmUncorrected::new(8);
        let (mut se_good, mut se_bad) = (0i128, 0i128);
        for a in 0..256u64 {
            for b in 0..256u64 {
                let r = good.reference_u(a, b);
                let eg = i128::from(crate::centered_diff(r, good.aligned_u(a, b), 16));
                let eb = i128::from(crate::centered_diff(r, bad.aligned_u(a, b), 16));
                se_good += eg * eg;
                se_bad += eb * eb;
            }
        }
        assert!(
            se_bad > 100 * se_good,
            "uncorrected ({se_bad}) must dwarf corrected ({se_good})"
        );
    }

    #[test]
    fn abm_is_shallower_than_the_array_multiplier() {
        // Table I: ABM is 37% faster than MULt(16,16); at least verify the
        // pruned Booth tree has fewer gates on the critical path by
        // comparing gate counts as a structural proxy.
        let abm = Abm::new(16).netlist().stats().num_gates;
        let full = crate::MulTrunc::new(16, 16).netlist().stats().num_gates;
        assert!(abm < full, "ABM {abm} gates !< MULt {full} gates");
    }
}
