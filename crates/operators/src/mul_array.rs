//! Array (Baugh-Wooley) multipliers: exact, fixed-width truncated/rounded,
//! and the AAM approximate array multiplier of Van et al.
//!
//! All array multipliers here share one source of truth for the partial-
//! product grid: [`bw_terms`] places every Baugh-Wooley term (AND, NAND or
//! constant 1) at its column. The **functional model** sums the same terms
//! the **netlist generator** instantiates, so the two cannot drift apart.
//!
//! Baugh-Wooley (modified form), for `n`-bit two's-complement operands:
//!
//! ```text
//! a·b ≡  Σ_{i,j<n-1} aᵢbⱼ 2^{i+j}
//!      + Σ_{j<n-1} !(a_{n-1}bⱼ) 2^{n-1+j}  + Σ_{i<n-1} !(aᵢb_{n-1}) 2^{n-1+i}
//!      + a_{n-1}b_{n-1} 2^{2n-2} + 2^{2n-1} + 2^n        (mod 2^{2n})
//! ```

use crate::traits::{ApxOperator, OpClass};
use crate::util::{bit, bitsliced_batch, compress_columns64, mask_u, sext, to_u};
use apx_netlist::{NetId, Netlist, NetlistBuilder};

/// One Baugh-Wooley partial-product term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BwTerm {
    /// `a_i & b_j`
    And(u32, u32),
    /// `!(a_i & b_j)`
    Nand(u32, u32),
    /// Constant 1.
    One,
}

impl BwTerm {
    #[inline]
    pub(crate) fn value(self, a: u64, b: u64) -> u64 {
        match self {
            BwTerm::And(i, j) => bit(a, i) & bit(b, j),
            BwTerm::Nand(i, j) => 1 ^ (bit(a, i) & bit(b, j)),
            BwTerm::One => 1,
        }
    }

    /// 64-lane form of [`BwTerm::value`]: `aw`/`bw` are transposed
    /// per-bit lane words, the result holds the term for all 64 lanes.
    /// (Constant/NAND terms are 1 in unused lanes — harmless, since the
    /// batch driver only untransposes the live lanes.)
    #[inline]
    pub(crate) fn value64(self, aw: &[u64; 64], bw: &[u64; 64]) -> u64 {
        match self {
            BwTerm::And(i, j) => aw[i as usize] & bw[j as usize],
            BwTerm::Nand(i, j) => !(aw[i as usize] & bw[j as usize]),
            BwTerm::One => !0,
        }
    }

    pub(crate) fn net(self, b: &mut NetlistBuilder, av: &[NetId], bv: &[NetId]) -> NetId {
        match self {
            BwTerm::And(i, j) => b.and(av[i as usize], bv[j as usize]),
            BwTerm::Nand(i, j) => b.nand(av[i as usize], bv[j as usize]),
            BwTerm::One => b.tie1(),
        }
    }
}

/// The complete modified-Baugh-Wooley term grid for an `n×n` signed
/// multiplier: `terms[c]` holds the terms of weight `2^c`, `c < 2n`.
pub(crate) fn bw_terms(n: u32) -> Vec<Vec<BwTerm>> {
    let mut cols = vec![Vec::new(); (2 * n) as usize];
    for i in 0..n {
        for j in 0..n {
            let sign_i = i == n - 1;
            let sign_j = j == n - 1;
            let term = if sign_i ^ sign_j {
                BwTerm::Nand(i, j)
            } else {
                BwTerm::And(i, j)
            };
            cols[(i + j) as usize].push(term);
        }
    }
    cols[n as usize].push(BwTerm::One);
    cols[(2 * n - 1) as usize].push(BwTerm::One);
    cols
}

/// Sums the term grid functionally (columns filtered by `keep`).
pub(crate) fn sum_terms(cols: &[Vec<BwTerm>], a: u64, b: u64, keep: impl Fn(u32) -> bool) -> u128 {
    let mut total = 0u128;
    for (c, col) in cols.iter().enumerate() {
        if !keep(c as u32) {
            continue;
        }
        for term in col {
            total += u128::from(term.value(a, b)) << c;
        }
    }
    total
}

/// Builds the nets of the kept columns for a netlist.
pub(crate) fn build_columns(
    b: &mut NetlistBuilder,
    cols: &[Vec<BwTerm>],
    av: &[NetId],
    bv: &[NetId],
    keep: impl Fn(u32) -> bool,
) -> Vec<Vec<NetId>> {
    cols.iter()
        .enumerate()
        .map(|(c, col)| {
            if keep(c as u32) {
                col.iter().map(|t| t.net(b, av, bv)).collect()
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// Exact `n×n → 2n` two's-complement array multiplier (modified
/// Baugh-Wooley grid + Wallace-style compression) — the accuracy
/// reference for all multiplier comparisons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulExact {
    n: u32,
    cols: Vec<Vec<BwTerm>>,
}

impl MulExact {
    /// Creates an exact `n×n` multiplier.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 24`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((2..=24).contains(&n), "n out of range");
        MulExact {
            n,
            cols: bw_terms(n),
        }
    }
}

impl ApxOperator for MulExact {
    fn name(&self) -> String {
        format!("MUL({},{})", self.n, 2 * self.n)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        2 * self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        (sum_terms(&self.cols, a, b, |_| true) as u64) & mask_u(2 * self.n)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // The Baugh-Wooley grid sums to the native signed product mod
        // 2^{2n} (pinned by `bw_grid_sums_to_the_signed_product`), so the
        // batch path is a word-parallel product loop instead of the
        // scalar model's O(n²) term walk.
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let n = self.n;
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = to_u(sext(ai, n).wrapping_mul(sext(bi, n)), 2 * n);
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let cols = bw_terms(self.n);
        let columns = build_columns(&mut b, &cols, &av, &bv, |_| true);
        let out = b.compress_columns(columns, 2 * n);
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Truncated fixed-width multiplier `MULt(n, q)`: the full product is
/// computed, and only the `q` most-significant of the `2n` product bits
/// are kept (post-truncation — the whole carry structure is retained,
/// which is why `MULt` is the most accurate fixed-width choice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulTrunc {
    n: u32,
    q: u32,
    cols: Vec<Vec<BwTerm>>,
}

impl MulTrunc {
    /// Creates `MULt(n, q)`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 24` and `1 <= q <= 2n`.
    #[must_use]
    pub fn new(n: u32, q: u32) -> Self {
        assert!((2..=24).contains(&n), "n out of range");
        assert!((1..=2 * n).contains(&q), "q out of range");
        MulTrunc {
            n,
            q,
            cols: bw_terms(n),
        }
    }
}

impl ApxOperator for MulTrunc {
    fn name(&self) -> String {
        format!("MULt({},{})", self.n, self.q)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.q
    }
    fn output_shift(&self) -> u32 {
        2 * self.n - self.q
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let full = (sum_terms(&self.cols, a, b, |_| true) as u64) & mask_u(2 * self.n);
        (full >> (2 * self.n - self.q)) & mask_u(self.q)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // Full product word-parallel (see `MulExact::eval_batch`), then
        // the MULt output truncation: keep the q MSBs of the 2n product.
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let n = self.n;
        let shift = 2 * n - self.q;
        let m = mask_u(self.q);
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            *o = (to_u(sext(ai, n).wrapping_mul(sext(bi, n)), 2 * n) >> shift) & m;
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let cols = bw_terms(self.n);
        let columns = build_columns(&mut b, &cols, &av, &bv, |_| true);
        let out = b.compress_columns(columns, 2 * n);
        b.output_bus("y", &out[2 * n - self.q as usize..]);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Rounded fixed-width multiplier `MULr(n, q)`: like [`MulTrunc`] but a
/// rounding constant `2^(2n-q-1)` is injected into the compression grid,
/// centering the quantization error at zero for one extra compressor input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulRound {
    n: u32,
    q: u32,
    cols: Vec<Vec<BwTerm>>,
}

impl MulRound {
    /// Creates `MULr(n, q)`.
    ///
    /// # Panics
    /// Panics unless `2 <= n <= 24` and `1 <= q < 2n`.
    #[must_use]
    pub fn new(n: u32, q: u32) -> Self {
        assert!((2..=24).contains(&n), "n out of range");
        assert!((1..2 * n).contains(&q), "q out of range");
        MulRound {
            n,
            q,
            cols: bw_terms(n),
        }
    }
}

impl ApxOperator for MulRound {
    fn name(&self) -> String {
        format!("MULr({},{})", self.n, self.q)
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.q
    }
    fn output_shift(&self) -> u32 {
        2 * self.n - self.q
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let round = 1u128 << (2 * self.n - self.q - 1);
        let full = sum_terms(&self.cols, a, b, |_| true) + round;
        ((full as u64) & mask_u(2 * self.n)) >> (2 * self.n - self.q)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // Word-parallel product plus the rounding constant, mod 2^{2n}
        // (2n <= 48, so the sum cannot overflow a u64), then the shift.
        assert!(
            a.len() == b.len() && a.len() == out.len(),
            "batch length mismatch"
        );
        let n = self.n;
        let shift = 2 * n - self.q;
        let round = 1u64 << (shift - 1);
        let m = mask_u(2 * n);
        for ((&ai, &bi), o) in a.iter().zip(b).zip(out.iter_mut()) {
            let full = to_u(sext(ai, n).wrapping_mul(sext(bi, n)), 2 * n) + round;
            *o = (full & m) >> shift;
        }
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let cols = bw_terms(self.n);
        let mut columns = build_columns(&mut b, &cols, &av, &bv, |_| true);
        let one = b.tie1();
        columns[(2 * self.n - self.q - 1) as usize].push(one);
        let out = b.compress_columns(columns, 2 * n);
        b.output_bus("y", &out[2 * n - self.q as usize..]);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

/// Approximate Array Multiplier `AAM(n)` — Van, Wang, Feng (IEEE TCAS-II,
/// 2000): a fixed-width (`n`-bit output) array multiplier whose
/// partial-product cells **below the main diagonal are pruned** and
/// replaced by a compensation network built from the diagonal partial
/// products (a row of OR gates feeding the first kept column — the
/// "simple series of AND and OR gates along the diagonal" of the paper).
///
/// Compared with [`MulTrunc`]`(n, n)`, AAM removes roughly half of the
/// array (area win) at the price of a statistical rather than exact carry
/// into the kept half.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aam {
    n: u32,
    tree_compression: bool,
    cols: Vec<Vec<BwTerm>>,
}

impl Aam {
    /// Creates `AAM(n)` with the faithful ripple-array accumulation
    /// structure (Van's design is an array multiplier; its longer, glitchy
    /// carry-save rows are why the paper measures it slower and hungrier
    /// than the synthesized `MULt`).
    ///
    /// # Panics
    /// Panics unless `4 <= n <= 24`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((4..=24).contains(&n), "n out of range");
        Aam {
            n,
            tree_compression: false,
            cols: bw_terms(n),
        }
    }

    /// Ablation variant: same pruning/compensation but with balanced
    /// Wallace-tree accumulation, isolating how much of AAM's cost is the
    /// array structure rather than the approximation.
    #[must_use]
    pub fn with_tree_compression(mut self) -> Self {
        self.tree_compression = true;
        self
    }

    /// Diagonal (column `n-1`) terms in ascending `i` order.
    fn diagonal_terms(&self) -> &[BwTerm] {
        &self.cols[(self.n - 1) as usize]
    }
}

impl ApxOperator for Aam {
    fn name(&self) -> String {
        if self.tree_compression {
            format!("AAMtree({})", self.n)
        } else {
            format!("AAM({})", self.n)
        }
    }
    fn op_class(&self) -> OpClass {
        OpClass::Multiplier
    }
    fn input_bits(&self) -> u32 {
        self.n
    }
    fn output_bits(&self) -> u32 {
        self.n
    }
    fn output_shift(&self) -> u32 {
        self.n
    }
    fn eval_u(&self, a: u64, b: u64) -> u64 {
        let n = self.n;
        // kept half: columns >= n
        let mut total = sum_terms(&self.cols, a, b, |c| c >= n);
        // compensation: OR of adjacent diagonal pairs, injected at weight n
        let diag: Vec<u64> = self
            .diagonal_terms()
            .iter()
            .map(|t| t.value(a, b))
            .collect();
        for pair in diag.chunks(2) {
            let or = pair.iter().copied().fold(0, |acc, v| acc | v);
            total += u128::from(or) << n;
        }
        ((total >> n) as u64) & mask_u(n)
    }
    fn eval_batch(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        // True 64-lane bitslice of the pruned array: every kept grid term
        // becomes one lane word, the compensation ORs collapse to word
        // ORs, and the column sum runs through word-parallel carry-save
        // compression. All terms sit at weight >= n and the scalar model
        // masks to n output bits, so compressing the rebased columns mod
        // 2^n reproduces `(total >> n) & mask(n)` exactly.
        let n = self.n as usize;
        let grid = &self.cols;
        let diag = self.diagonal_terms();
        let mut cols: Vec<Vec<u64>> = vec![Vec::new(); n];
        bitsliced_batch(self.n, a, b, out, move |aw, bw, ow| {
            for c in n..2 * n {
                for term in &grid[c] {
                    cols[c - n].push(term.value64(aw, bw));
                }
            }
            for pair in diag.chunks(2) {
                let or = pair.iter().map(|t| t.value64(aw, bw)).fold(0, |x, y| x | y);
                cols[0].push(or);
            }
            compress_columns64(&mut cols, ow);
        });
    }
    fn batch_accelerated(&self) -> bool {
        true
    }
    fn netlist(&self) -> Netlist {
        let n = self.n as usize;
        let mut b = NetlistBuilder::new(self.name());
        let av = b.input_bus("a", n);
        let bv = b.input_bus("b", n);
        let cols = self.cols.clone();
        // kept columns re-based at weight n (the output scale)
        let mut columns: Vec<Vec<NetId>> = (0..n).map(|_| Vec::new()).collect();
        for c in n..2 * n {
            for term in &cols[c] {
                let net = term.net(&mut b, &av, &bv);
                columns[c - n].push(net);
            }
        }
        // compensation: diagonal terms, OR-ed in adjacent pairs, into col 0
        let diag_nets: Vec<NetId> = self
            .diagonal_terms()
            .iter()
            .map(|t| t.net(&mut b, &av, &bv))
            .collect();
        for pair in diag_nets.chunks(2) {
            let comp = if pair.len() == 2 {
                b.or(pair[0], pair[1])
            } else {
                pair[0]
            };
            columns[0].push(comp);
        }
        let out = if self.tree_compression {
            b.compress_columns(columns, n)
        } else {
            b.compress_columns_array(columns, n)
        };
        b.output_bus("y", &out);
        let mut nl = b.finish();
        nl.prune_dead_gates();
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{sext, to_u};
    use apx_netlist::verify::{verify_exhaustive2, verify_random2};

    #[test]
    fn bw_grid_sums_to_the_signed_product() {
        for n in [2u32, 3, 4, 5, 6] {
            let cols = bw_terms(n);
            for a in 0..1u64 << n {
                for b in 0..1u64 << n {
                    let got = (sum_terms(&cols, a, b, |_| true) as u64) & mask_u(2 * n);
                    let want = to_u(sext(a, n).wrapping_mul(sext(b, n)), 2 * n);
                    assert_eq!(got, want, "n={n} a={a:#x} b={b:#x}");
                }
            }
        }
    }

    #[test]
    fn exact_multiplier_netlist_matches_model() {
        for n in [3u32, 4, 6] {
            let op = MulExact::new(n);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
        let op = MulExact::new(16);
        verify_random2(&op.netlist(), 2_000, 11, |a, b| op.eval_u(a, b)).unwrap();
    }

    #[test]
    fn trunc_multiplier_netlist_matches_model() {
        for (n, q) in [(4u32, 4u32), (4, 8), (6, 6), (6, 3)] {
            let op = MulTrunc::new(n, q);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
    }

    #[test]
    fn round_multiplier_netlist_matches_model() {
        for (n, q) in [(4u32, 4u32), (6, 6), (6, 9)] {
            let op = MulRound::new(n, q);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
    }

    #[test]
    fn aam_power_activity_statistically_matches_the_pre_bitslice_estimator() {
        // Statistical-equivalence guard for the power schema bump on a
        // deep, glitchy array structure (the RCA-side guard lives in
        // apx_netlist::power). The pinned number was captured from the
        // retired serial-chain estimator at exactly these settings; the
        // lane sub-stream semantics may shift it only by sampling noise.
        use apx_netlist::power::{estimate, PowerSettings};
        let report = estimate(
            &Aam::new(16).netlist(),
            &apx_cells::Library::fdsoi28(),
            PowerSettings {
                vectors: 4_000,
                seed: 0xA9CE55,
            },
        );
        let got = report.transitions_per_op;
        assert!(
            (got - 173.40275).abs() / 173.40275 < 0.05,
            "AAM(16) transitions_per_op {got} vs pre-bitslice 173.40275"
        );
    }

    #[test]
    fn aam_netlist_matches_model() {
        for n in [4u32, 6] {
            let op = Aam::new(n);
            verify_exhaustive2(&op.netlist(), |a, b| op.eval_u(a, b)).unwrap();
        }
        let op = Aam::new(16);
        verify_random2(&op.netlist(), 2_000, 13, |a, b| op.eval_u(a, b)).unwrap();
    }

    #[test]
    fn multiplier_batches_match_scalar_eval_exhaustively() {
        let ops: Vec<Box<dyn ApxOperator>> = vec![
            Box::new(MulExact::new(4)),
            Box::new(MulExact::new(8)),
            Box::new(MulTrunc::new(8, 8)),
            Box::new(MulTrunc::new(8, 3)),
            Box::new(MulTrunc::new(8, 16)),
            Box::new(MulRound::new(8, 8)),
            Box::new(MulRound::new(8, 13)),
            Box::new(Aam::new(8)),
        ];
        // all 65536 operand pairs in batches of 256 (4 transposed chunks)
        for op in ops {
            assert!(op.batch_accelerated(), "{}", op.name());
            let m = mask_u(op.input_bits());
            let mut batch_a = Vec::new();
            let mut batch_b = Vec::new();
            let mut out = vec![0u64; (m + 1) as usize];
            for a in 0..=m {
                batch_a.clear();
                batch_b.clear();
                for b in 0..=m {
                    batch_a.push(a);
                    batch_b.push(b);
                }
                op.eval_batch(&batch_a, &batch_b, &mut out);
                for (b, &got) in out.iter().enumerate() {
                    let want = op.eval_u(a, b as u64);
                    assert_eq!(got, want, "{} a={a} b={b}", op.name());
                }
            }
            // ragged tail (len % 64 != 0) through the same kernel
            let take = batch_a.len().min(97);
            let mut ragged = vec![0u64; take];
            op.eval_batch(&batch_a[..take], &batch_b[..take], &mut ragged);
            for (i, &got) in ragged.iter().enumerate() {
                assert_eq!(got, op.eval_u(batch_a[i], batch_b[i]), "{}", op.name());
            }
        }
    }

    #[test]
    fn trunc_error_is_the_dropped_fraction() {
        let op = MulTrunc::new(8, 8);
        for (a, b) in [(0x7Fu64, 0x7Fu64), (0x80, 0x80), (0xAB, 0x34), (0x01, 0xFF)] {
            let e = crate::centered_diff(op.reference_u(a, b), op.aligned_u(a, b), 16);
            assert!((0..256).contains(&e), "e={e}");
        }
    }

    #[test]
    fn aam_tracks_the_exact_fixed_width_product() {
        // Exhaustive 8-bit: AAM output must stay within a few output LSBs
        // of the truncated exact product (Table I: AAM ~1 dB worse).
        let aam = Aam::new(8);
        let mut worst = 0i64;
        for a in 0..256u64 {
            for b in 0..256u64 {
                let e = crate::centered_diff(aam.reference_u(a, b), aam.aligned_u(a, b), 16);
                // e is at product scale; output LSB is 2^8
                worst = worst.max(e.abs() / 256);
            }
        }
        assert!(worst <= 8, "AAM should stay within ~8 output LSBs: {worst}");
    }

    #[test]
    fn aam_is_smaller_than_the_exact_fixed_width_multiplier() {
        let full = MulTrunc::new(16, 16).netlist().stats().num_gates;
        let aam = Aam::new(16).netlist().stats().num_gates;
        assert!(
            aam < full,
            "AAM ({aam} gates) must be smaller than MULt ({full} gates)"
        );
    }

    #[test]
    fn rounding_beats_truncation_on_mse() {
        let tr = MulTrunc::new(6, 6);
        let ro = MulRound::new(6, 6);
        let (mut se_t, mut se_r) = (0i128, 0i128);
        for a in 0..64u64 {
            for b in 0..64u64 {
                let r = tr.reference_u(a, b);
                let et = i128::from(crate::centered_diff(r, tr.aligned_u(a, b), 12));
                let er = i128::from(crate::centered_diff(r, ro.aligned_u(a, b), 12));
                se_t += et * et;
                se_r += er * er;
            }
        }
        assert!(se_r < se_t, "round {se_r} !< trunc {se_t}");
    }
}
