//! Physical characteristics of a standard cell.

use serde::{Deserialize, Serialize};

/// Physical model of one standard cell: area, timing arcs, capacitance,
/// switching energy and leakage.
///
/// Delay of a path through the cell is
/// `delay_ps(input, output) + drive_ps_per_ff * load_ff`, where the load is
/// the sum of the input capacitances of the fanout cells plus wire
/// capacitance (see [`crate::Library::wire_cap_ff_per_fanout`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Input pin capacitance in fF (identical for all pins of the cell).
    pub input_cap_ff: f64,
    /// Intrinsic delay arcs in ps: `arcs_ps[input][output]`.
    ///
    /// Only the entries corresponding to real pins are meaningful; the rest
    /// are zero. For single-output cells only column 0 is used.
    pub arcs_ps: [[f64; 2]; 3],
    /// Load-dependent delay slope in ps per fF of output load.
    pub drive_ps_per_ff: f64,
    /// Energy dissipated per output transition, in fJ (at the library's
    /// nominal supply voltage).
    pub energy_fj: f64,
    /// Static leakage power in nW.
    pub leakage_nw: f64,
}

impl CellSpec {
    /// Intrinsic delay from `input` pin to `output` pin, in picoseconds.
    ///
    /// # Panics
    /// Panics if `input >= 3` or `output >= 2`.
    #[must_use]
    pub fn delay_ps(&self, input: usize, output: usize) -> f64 {
        self.arcs_ps[input][output]
    }

    /// Worst intrinsic delay over all arcs, in picoseconds.
    #[must_use]
    pub fn worst_arc_ps(&self) -> f64 {
        self.arcs_ps
            .iter()
            .flatten()
            .copied()
            .fold(0.0f64, f64::max)
    }

    /// Convenience constructor for a cell whose arcs are all identical.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one scalar per physical quantity
    pub(crate) fn uniform(
        area_um2: f64,
        input_cap_ff: f64,
        delay_ps: f64,
        drive_ps_per_ff: f64,
        energy_fj: f64,
        leakage_nw: f64,
        num_inputs: usize,
        num_outputs: usize,
    ) -> Self {
        let mut arcs_ps = [[0.0; 2]; 3];
        for (i, row) in arcs_ps.iter_mut().enumerate().take(num_inputs.max(1)) {
            for (o, arc) in row.iter_mut().enumerate().take(num_outputs) {
                let _ = (i, o);
                *arc = delay_ps;
            }
        }
        CellSpec {
            area_um2,
            input_cap_ff,
            arcs_ps,
            drive_ps_per_ff,
            energy_fj,
            leakage_nw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_fills_only_requested_arcs() {
        let spec = CellSpec::uniform(1.0, 1.0, 10.0, 2.0, 1.0, 1.0, 2, 1);
        assert_eq!(spec.delay_ps(0, 0), 10.0);
        assert_eq!(spec.delay_ps(1, 0), 10.0);
        assert_eq!(spec.delay_ps(2, 0), 0.0);
        assert_eq!(spec.delay_ps(0, 1), 0.0);
        assert_eq!(spec.worst_arc_ps(), 10.0);
    }
}
