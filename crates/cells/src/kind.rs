//! Logic-cell kinds and their boolean functions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The set of standard cells the netlist substrate can instantiate.
///
/// Every combinational operator netlist in this workspace is built from
/// these cells. Each kind carries its boolean function (see
/// [`CellKind::eval64`]); physical characteristics live in
/// [`crate::CellSpec`] and depend on the chosen [`crate::Library`].
///
/// Input/output conventions:
/// * [`CellKind::Mux2`] inputs are `[d0, d1, sel]`, output `sel ? d1 : d0`.
/// * [`CellKind::Aoi21`] inputs `[a, b, c]`, output `!((a & b) | c)`.
/// * [`CellKind::Oai21`] inputs `[a, b, c]`, output `!((a | b) & c)`.
/// * [`CellKind::Ha`] inputs `[a, b]`, outputs `(sum, carry)`.
/// * [`CellKind::Fa`] inputs `[a, b, cin]`, outputs `(sum, cout)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Constant logic 0 (tie-low cell).
    Tie0,
    /// Constant logic 1 (tie-high cell).
    Tie1,
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer, inputs `[d0, d1, sel]`.
    Mux2,
    /// AND-OR-INVERT 2-1 compound gate.
    Aoi21,
    /// OR-AND-INVERT 2-1 compound gate.
    Oai21,
    /// Half adder, outputs `(sum, carry)`.
    Ha,
    /// Full adder (mirror-adder style), outputs `(sum, cout)`.
    Fa,
    /// Approximate full adder, IMPACT type 1 (Gupta et al., ISLPED'11
    /// style): `cout` exact, `sum` wrong for `(a,b,cin) ∈ {011, 100}`.
    /// Truth table: `sum = (!a & (b | cin)) | (a & b & cin)`.
    FaX1,
    /// Approximate full adder, IMPACT type 2: `cout` exact,
    /// `sum = !cout` (wrong for `(a,b,cin) ∈ {000, 111}`).
    FaX2,
}

/// All cell kinds, in declaration order. Useful for library completeness
/// checks and exhaustive tests.
pub const ALL_CELL_KINDS: &[CellKind] = &[
    CellKind::Tie0,
    CellKind::Tie1,
    CellKind::Buf,
    CellKind::Inv,
    CellKind::And2,
    CellKind::And3,
    CellKind::Or2,
    CellKind::Or3,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::Xor2,
    CellKind::Xnor2,
    CellKind::Mux2,
    CellKind::Aoi21,
    CellKind::Oai21,
    CellKind::Ha,
    CellKind::Fa,
    CellKind::FaX1,
    CellKind::FaX2,
];

impl CellKind {
    /// Number of logic inputs of this cell.
    #[must_use]
    pub const fn num_inputs(self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Buf | CellKind::Inv => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::Ha => 2,
            CellKind::And3
            | CellKind::Or3
            | CellKind::Nand3
            | CellKind::Nor3
            | CellKind::Mux2
            | CellKind::Aoi21
            | CellKind::Oai21
            | CellKind::Fa
            | CellKind::FaX1
            | CellKind::FaX2 => 3,
        }
    }

    /// Number of outputs of this cell (1, or 2 for the adder cells).
    #[must_use]
    pub const fn num_outputs(self) -> usize {
        match self {
            CellKind::Ha | CellKind::Fa | CellKind::FaX1 | CellKind::FaX2 => 2,
            _ => 1,
        }
    }

    /// Evaluate the cell bit-parallel over 64 vectors at once.
    ///
    /// Unused input lanes are ignored. Returns `(out0, out1)`; `out1` is
    /// meaningful only for two-output cells ([`CellKind::Ha`],
    /// [`CellKind::Fa`]) and is 0 otherwise.
    ///
    /// # Example
    /// ```
    /// use apx_cells::CellKind;
    /// let (sum, cout) = CellKind::Fa.eval64([0b1100, 0b1010, 0b1111]);
    /// assert_eq!(sum & 0xF, 0b1001);
    /// assert_eq!(cout & 0xF, 0b1110);
    /// ```
    #[must_use]
    #[inline]
    pub fn eval64(self, ins: [u64; 3]) -> (u64, u64) {
        let [a, b, c] = ins;
        match self {
            CellKind::Tie0 => (0, 0),
            CellKind::Tie1 => (!0, 0),
            CellKind::Buf => (a, 0),
            CellKind::Inv => (!a, 0),
            CellKind::And2 => (a & b, 0),
            CellKind::And3 => (a & b & c, 0),
            CellKind::Or2 => (a | b, 0),
            CellKind::Or3 => (a | b | c, 0),
            CellKind::Nand2 => (!(a & b), 0),
            CellKind::Nand3 => (!(a & b & c), 0),
            CellKind::Nor2 => (!(a | b), 0),
            CellKind::Nor3 => (!(a | b | c), 0),
            CellKind::Xor2 => (a ^ b, 0),
            CellKind::Xnor2 => (!(a ^ b), 0),
            CellKind::Mux2 => ((a & !c) | (b & c), 0),
            CellKind::Aoi21 => (!((a & b) | c), 0),
            CellKind::Oai21 => (!((a | b) & c), 0),
            CellKind::Ha => (a ^ b, a & b),
            CellKind::Fa => (a ^ b ^ c, (a & b) | (a & c) | (b & c)),
            CellKind::FaX1 => {
                let maj = (a & b) | (a & c) | (b & c);
                ((!a & (b | c)) | (a & b & c), maj)
            }
            CellKind::FaX2 => {
                let maj = (a & b) | (a & c) | (b & c);
                (!maj, maj)
            }
        }
    }

    /// Evaluate the cell for a single input combination — the plain 1-bit
    /// form of [`CellKind::eval64`].
    ///
    /// This is the eval the scalar reference implementations use (e.g. the
    /// per-lane power-simulation reference), where broadcasting a single
    /// bool through the 64-lane path would only obscure what is being
    /// computed. Implemented independently of [`CellKind::eval64`] so the
    /// exhaustive equivalence test in this module genuinely cross-checks
    /// the two truth tables.
    ///
    /// # Example
    /// ```
    /// use apx_cells::CellKind;
    /// assert_eq!(CellKind::Fa.eval([true, true, false]), (false, true));
    /// ```
    #[must_use]
    #[inline]
    pub fn eval(self, ins: [bool; 3]) -> (bool, bool) {
        let [a, b, c] = ins;
        match self {
            CellKind::Tie0 => (false, false),
            CellKind::Tie1 => (true, false),
            CellKind::Buf => (a, false),
            CellKind::Inv => (!a, false),
            CellKind::And2 => (a && b, false),
            CellKind::And3 => (a && b && c, false),
            CellKind::Or2 => (a || b, false),
            CellKind::Or3 => (a || b || c, false),
            CellKind::Nand2 => (!(a && b), false),
            CellKind::Nand3 => (!(a && b && c), false),
            CellKind::Nor2 => (!(a || b), false),
            CellKind::Nor3 => (!(a || b || c), false),
            CellKind::Xor2 => (a ^ b, false),
            CellKind::Xnor2 => (!(a ^ b), false),
            CellKind::Mux2 => (if c { b } else { a }, false),
            CellKind::Aoi21 => (!((a && b) || c), false),
            CellKind::Oai21 => (!((a || b) && c), false),
            CellKind::Ha => (a ^ b, a && b),
            CellKind::Fa => (a ^ b ^ c, (a & b) | (a & c) | (b & c)),
            CellKind::FaX1 => {
                let maj = (a & b) | (a & c) | (b & c);
                ((!a & (b | c)) | (a & b & c), maj)
            }
            CellKind::FaX2 => {
                let maj = (a & b) | (a & c) | (b & c);
                (!maj, maj)
            }
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
            CellKind::Buf => "BUF",
            CellKind::Inv => "INV",
            CellKind::And2 => "AND2",
            CellKind::And3 => "AND3",
            CellKind::Or2 => "OR2",
            CellKind::Or3 => "OR3",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor2 => "NOR2",
            CellKind::Nor3 => "NOR3",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Ha => "HA",
            CellKind::Fa => "FA",
            CellKind::FaX1 => "FAX1",
            CellKind::FaX2 => "FAX2",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluate a single scalar input combination through the 64-way path.
    fn eval1(kind: CellKind, a: bool, b: bool, c: bool) -> (bool, bool) {
        let w = |x: bool| if x { !0u64 } else { 0 };
        let (o0, o1) = kind.eval64([w(a), w(b), w(c)]);
        (o0 & 1 == 1, o1 & 1 == 1)
    }

    #[test]
    fn full_adder_truth_table_is_exact() {
        for bits in 0u8..8 {
            let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            let (sum, cout) = eval1(CellKind::Fa, a, b, c);
            let total = u8::from(a) + u8::from(b) + u8::from(c);
            assert_eq!(u8::from(sum), total & 1);
            assert_eq!(u8::from(cout), total >> 1);
        }
    }

    #[test]
    fn half_adder_truth_table_is_exact() {
        for bits in 0u8..4 {
            let (a, b) = (bits & 1 != 0, bits & 2 != 0);
            let (sum, carry) = eval1(CellKind::Ha, a, b, false);
            let total = u8::from(a) + u8::from(b);
            assert_eq!(u8::from(sum), total & 1);
            assert_eq!(u8::from(carry), total >> 1);
        }
    }

    #[test]
    fn mux_selects_d1_when_sel_high() {
        assert!(eval1(CellKind::Mux2, false, true, true).0);
        assert!(!eval1(CellKind::Mux2, false, true, false).0);
        assert!(!eval1(CellKind::Mux2, true, false, true).0);
        assert!(eval1(CellKind::Mux2, true, false, false).0);
    }

    #[test]
    fn compound_gates_match_their_equations() {
        for bits in 0u8..8 {
            let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            assert_eq!(eval1(CellKind::Aoi21, a, b, c).0, !((a && b) || c));
            assert_eq!(eval1(CellKind::Oai21, a, b, c).0, !((a || b) && c));
        }
    }

    #[test]
    fn simple_gates_match_their_equations() {
        for bits in 0u8..8 {
            let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
            assert_eq!(eval1(CellKind::And2, a, b, c).0, a && b);
            assert_eq!(eval1(CellKind::Or2, a, b, c).0, a || b);
            assert_eq!(eval1(CellKind::Nand2, a, b, c).0, !(a && b));
            assert_eq!(eval1(CellKind::Nor2, a, b, c).0, !(a || b));
            assert_eq!(eval1(CellKind::Xor2, a, b, c).0, a ^ b);
            assert_eq!(eval1(CellKind::Xnor2, a, b, c).0, !(a ^ b));
            assert_eq!(eval1(CellKind::And3, a, b, c).0, a && b && c);
            assert_eq!(eval1(CellKind::Or3, a, b, c).0, a || b || c);
            assert_eq!(eval1(CellKind::Nand3, a, b, c).0, !(a && b && c));
            assert_eq!(eval1(CellKind::Nor3, a, b, c).0, !(a || b || c));
            assert_eq!(eval1(CellKind::Inv, a, b, c).0, !a);
            assert_eq!(eval1(CellKind::Buf, a, b, c).0, a);
        }
    }

    #[test]
    fn ties_are_constant() {
        assert_eq!(CellKind::Tie0.eval64([!0, !0, !0]).0, 0);
        assert_eq!(CellKind::Tie1.eval64([0, 0, 0]).0, !0);
    }

    #[test]
    fn scalar_eval_matches_eval64_on_every_cell_and_input() {
        // Exhaustive cross-check of the two independently written truth
        // tables: every kind × every input combination, both with the
        // broadcast all-ones/all-zeros lanes and with a single lane-0 bit
        // (unused high lanes must never leak into lane 0).
        for &kind in ALL_CELL_KINDS {
            for bits in 0u8..8 {
                let (a, b, c) = (bits & 1 != 0, bits & 2 != 0, bits & 4 != 0);
                let scalar = kind.eval([a, b, c]);
                assert_eq!(scalar, eval1(kind, a, b, c), "{kind} broadcast");
                let w = |x: bool| u64::from(x);
                let (o0, o1) = kind.eval64([w(a), w(b), w(c)]);
                assert_eq!(
                    scalar,
                    (o0 & 1 == 1, o1 & 1 == 1),
                    "{kind} single-lane ({a},{b},{c})"
                );
            }
        }
    }

    #[test]
    fn eval64_is_lanewise_independent() {
        // Each lane of eval64 must be exactly the scalar eval of that
        // lane's inputs — the property the bitsliced power simulator's
        // popcount transition counting rests on.
        for &kind in ALL_CELL_KINDS {
            // lane l carries input combination l % 8
            let mut ins = [0u64; 3];
            for lane in 0..64u64 {
                let bits = lane % 8;
                for (i, word) in ins.iter_mut().enumerate() {
                    *word |= ((bits >> i) & 1) << lane;
                }
            }
            let (o0, o1) = kind.eval64(ins);
            for lane in 0..64u64 {
                let bits = lane % 8;
                let expect = kind.eval([bits & 1 != 0, bits & 2 != 0, bits & 4 != 0]);
                assert_eq!(
                    ((o0 >> lane) & 1 == 1, (o1 >> lane) & 1 == 1),
                    expect,
                    "{kind} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn arity_metadata_is_consistent() {
        for &kind in ALL_CELL_KINDS {
            assert!(kind.num_inputs() <= 3);
            assert!(kind.num_outputs() >= 1 && kind.num_outputs() <= 2);
        }
    }
}
