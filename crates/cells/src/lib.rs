//! Synthetic standard-cell library model for the APXPERF-RS hardware substrate.
//!
//! The original APXPERF flow (Barrois et al., DATE 2017) characterizes
//! operators with Synopsys Design Compiler on a 28nm FDSOI technology
//! library, Modelsim gate-level simulation, and PrimeTime power analysis.
//! None of that proprietary ecosystem is available here, so this crate
//! provides the substitution: a small, self-consistent standard-cell
//! library with per-cell **area**, **delay arcs**, **input capacitance**,
//! **switching energy** and **leakage**, calibrated so that the reference
//! anchors of the paper (a 16-bit ripple-carry adder and a 16×16 array
//! multiplier) land in the right absolute neighbourhood, and so that
//! *relative* comparisons between operator structures — which is what the
//! paper's conclusions rest on — are driven by real gate counts and logic
//! depth.
//!
//! # Example
//!
//! ```
//! use apx_cells::{CellKind, Library};
//!
//! let lib = Library::fdsoi28();
//! let fa = lib.spec(CellKind::Fa);
//! assert!(fa.area_um2 > lib.spec(CellKind::Inv).area_um2);
//! // carry-in to carry-out is the fast arc of a full adder
//! assert!(fa.delay_ps(2, 1) < fa.delay_ps(0, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kind;
mod library;
mod spec;

pub use kind::{CellKind, ALL_CELL_KINDS};
pub use library::{Library, OperatingPoint};
pub use spec::CellSpec;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_a_spec_in_every_preset() {
        for lib in [Library::fdsoi28(), Library::generic45()] {
            for &kind in ALL_CELL_KINDS {
                let spec = lib.spec(kind);
                assert!(spec.area_um2 >= 0.0, "{kind:?} area");
                assert!(spec.input_cap_ff >= 0.0, "{kind:?} cap");
                assert!(spec.energy_fj >= 0.0, "{kind:?} energy");
                assert!(spec.leakage_nw >= 0.0, "{kind:?} leakage");
            }
        }
    }

    #[test]
    fn full_adder_arc_ordering_matches_a_mirror_adder() {
        let lib = Library::fdsoi28();
        let fa = lib.spec(CellKind::Fa);
        // cin->cout is the ripple-critical arc and must be the fastest input arc
        // to cout; a->sum is the slowest arc overall.
        assert!(fa.delay_ps(2, 1) < fa.delay_ps(0, 1));
        assert!(fa.delay_ps(0, 0) >= fa.delay_ps(2, 1));
    }

    #[test]
    fn generic45_is_uniformly_larger_and_slower_than_fdsoi28() {
        let small = Library::fdsoi28();
        let big = Library::generic45();
        for &kind in ALL_CELL_KINDS {
            if kind == CellKind::Tie0 || kind == CellKind::Tie1 {
                continue;
            }
            assert!(
                big.spec(kind).area_um2 > small.spec(kind).area_um2,
                "{kind:?} should be larger in 45nm"
            );
        }
    }
}
