//! Technology libraries (presets) and operating conditions.

use crate::{CellKind, CellSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Supply voltage and clock frequency at which power is reported.
///
/// The paper reports all power numbers at 100 MHz; that is the default here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Supply voltage in volts. Switching energy scales with `(vdd/nominal)²`.
    pub vdd_v: f64,
    /// Clock frequency in MHz used to convert energy/op into power.
    pub freq_mhz: f64,
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint {
            vdd_v: 1.0,
            freq_mhz: 100.0,
        }
    }
}

/// A standard-cell technology library: a [`CellSpec`] for every
/// [`CellKind`], a wire-load model and an [`OperatingPoint`].
///
/// Two presets are provided: [`Library::fdsoi28`] (the default, standing in
/// for the paper's 28nm FDSOI library) and [`Library::generic45`] (a slower,
/// larger node used as a sanity cross-check — all conclusions must be
/// node-independent).
///
/// # Example
/// ```
/// use apx_cells::Library;
/// let lib = Library::fdsoi28();
/// assert_eq!(lib.operating_point().freq_mhz, 100.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Library {
    name: String,
    cells: BTreeMap<CellKind, CellSpec>,
    /// Extra wire capacitance per fanout endpoint, in fF.
    wire_cap_ff_per_fanout: f64,
    op: OperatingPoint,
}

impl Library {
    /// The 28nm-FDSOI-class preset used by all paper reproductions.
    ///
    /// Calibration anchors (see `DESIGN.md` §1 and `EXPERIMENTS.md`): a
    /// 16-bit ripple-carry adder comes out near 50 µm² / 0.45 ns, a 16×16
    /// two's-complement array multiplier near 0.8–1.0 · 10³ µm² / 0.9 ns,
    /// matching Table I of the paper within small factors.
    #[must_use]
    pub fn fdsoi28() -> Self {
        let mut cells = BTreeMap::new();
        let mut put = |kind: CellKind, spec: CellSpec| {
            cells.insert(kind, spec);
        };
        put(
            CellKind::Tie0,
            CellSpec::uniform(0.21, 0.0, 0.0, 0.0, 0.0, 0.3, 0, 1),
        );
        put(
            CellKind::Tie1,
            CellSpec::uniform(0.21, 0.0, 0.0, 0.0, 0.0, 0.3, 0, 1),
        );
        put(
            CellKind::Buf,
            CellSpec::uniform(0.62, 1.0, 14.0, 1.8, 0.70, 1.5, 1, 1),
        );
        put(
            CellKind::Inv,
            CellSpec::uniform(0.42, 0.9, 8.0, 2.5, 0.45, 1.2, 1, 1),
        );
        put(
            CellKind::And2,
            CellSpec::uniform(0.83, 1.0, 16.0, 2.0, 0.90, 2.0, 2, 1),
        );
        put(
            CellKind::And3,
            CellSpec::uniform(1.04, 1.1, 18.0, 2.2, 1.10, 2.6, 3, 1),
        );
        put(
            CellKind::Or2,
            CellSpec::uniform(0.83, 1.0, 17.0, 2.1, 0.90, 2.1, 2, 1),
        );
        put(
            CellKind::Or3,
            CellSpec::uniform(1.04, 1.1, 19.0, 2.3, 1.10, 2.7, 3, 1),
        );
        put(
            CellKind::Nand2,
            CellSpec::uniform(0.62, 1.0, 10.0, 2.8, 0.70, 1.6, 2, 1),
        );
        put(
            CellKind::Nand3,
            CellSpec::uniform(0.83, 1.1, 13.0, 3.2, 0.95, 2.2, 3, 1),
        );
        put(
            CellKind::Nor2,
            CellSpec::uniform(0.62, 1.0, 11.0, 3.0, 0.70, 1.7, 2, 1),
        );
        put(
            CellKind::Nor3,
            CellSpec::uniform(0.83, 1.1, 15.0, 3.6, 0.95, 2.4, 3, 1),
        );
        put(
            CellKind::Xor2,
            CellSpec::uniform(1.46, 1.6, 22.0, 3.5, 1.90, 3.5, 2, 1),
        );
        put(
            CellKind::Xnor2,
            CellSpec::uniform(1.46, 1.6, 22.0, 3.5, 1.90, 3.5, 2, 1),
        );
        put(CellKind::Mux2, {
            let mut spec = CellSpec::uniform(1.25, 1.2, 18.0, 3.0, 1.50, 3.0, 3, 1);
            // select pin is the slow arc
            spec.arcs_ps[2][0] = 21.0;
            spec
        });
        put(
            CellKind::Aoi21,
            CellSpec::uniform(0.83, 1.0, 13.0, 3.1, 0.85, 2.0, 3, 1),
        );
        put(
            CellKind::Oai21,
            CellSpec::uniform(0.83, 1.0, 13.0, 3.1, 0.85, 2.0, 3, 1),
        );
        put(CellKind::Ha, {
            let mut spec = CellSpec::uniform(1.90, 1.5, 24.0, 3.0, 2.20, 4.0, 2, 2);
            spec.arcs_ps[0][1] = 16.0; // a -> carry
            spec.arcs_ps[1][1] = 16.0; // b -> carry
            spec
        });
        put(CellKind::Fa, {
            let mut spec = CellSpec::uniform(3.10, 1.7, 45.0, 3.0, 3.40, 6.5, 3, 2);
            spec.arcs_ps[0][1] = 35.0; // a -> cout
            spec.arcs_ps[1][1] = 35.0; // b -> cout
            spec.arcs_ps[2][0] = 30.0; // cin -> sum
            spec.arcs_ps[2][1] = 20.0; // cin -> cout (ripple-critical arc)
            spec
        });
        put(CellKind::FaX1, {
            // ~16 transistors vs 24 for the mirror adder: smaller, faster,
            // lower energy (IMPACT approximation 1).
            let mut spec = CellSpec::uniform(2.10, 1.5, 38.0, 3.0, 2.55, 4.6, 3, 2);
            spec.arcs_ps[0][1] = 30.0;
            spec.arcs_ps[1][1] = 30.0;
            spec.arcs_ps[2][0] = 26.0;
            spec.arcs_ps[2][1] = 17.0;
            spec
        });
        put(CellKind::FaX2, {
            // ~14 transistors: sum is just the inverted carry (IMPACT
            // approximation 2).
            let mut spec = CellSpec::uniform(1.75, 1.4, 34.0, 3.0, 2.10, 3.9, 3, 2);
            spec.arcs_ps[0][1] = 28.0;
            spec.arcs_ps[1][1] = 28.0;
            spec.arcs_ps[2][0] = 24.0;
            spec.arcs_ps[2][1] = 16.0;
            spec
        });
        Library {
            name: "fdsoi28".to_owned(),
            cells,
            wire_cap_ff_per_fanout: 0.4,
            op: OperatingPoint::default(),
        }
    }

    /// A generic 45nm-class preset: ~2.2× area, ~2.5× delay, ~4× energy of
    /// [`Library::fdsoi28`]. Used to check that the paper's conclusions are
    /// insensitive to the technology node.
    #[must_use]
    pub fn generic45() -> Self {
        let base = Library::fdsoi28();
        let cells = base
            .cells
            .into_iter()
            .map(|(kind, mut spec)| {
                spec.area_um2 *= 2.2;
                for row in &mut spec.arcs_ps {
                    for arc in row.iter_mut() {
                        *arc *= 2.5;
                    }
                }
                spec.input_cap_ff *= 1.6;
                spec.drive_ps_per_ff *= 1.4;
                spec.energy_fj *= 4.0;
                spec.leakage_nw *= 0.6;
                (kind, spec)
            })
            .collect();
        Library {
            name: "generic45".to_owned(),
            cells,
            wire_cap_ff_per_fanout: 0.7,
            op: OperatingPoint::default(),
        }
    }

    /// Library name (e.g. `"fdsoi28"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Physical spec of a cell kind.
    ///
    /// # Panics
    /// Panics if the library is missing the cell, which cannot happen for
    /// the built-in presets (checked by tests over [`crate::ALL_CELL_KINDS`]).
    #[must_use]
    pub fn spec(&self, kind: CellKind) -> &CellSpec {
        self.cells
            .get(&kind)
            .unwrap_or_else(|| panic!("library {} has no spec for {kind}", self.name))
    }

    /// Wire capacitance added per fanout endpoint, in fF.
    #[must_use]
    pub fn wire_cap_ff_per_fanout(&self) -> f64 {
        self.wire_cap_ff_per_fanout
    }

    /// The operating point at which power is reported.
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        self.op
    }

    /// Returns a copy of this library at a different operating point.
    /// Switching energy scales with `(vdd / 1.0 V)²`.
    #[must_use]
    pub fn with_operating_point(mut self, op: OperatingPoint) -> Self {
        let scale = (op.vdd_v / self.op.vdd_v).powi(2);
        for spec in self.cells.values_mut() {
            spec.energy_fj *= scale;
        }
        self.op = op;
        self
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::fdsoi28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ALL_CELL_KINDS;

    #[test]
    fn default_is_fdsoi28() {
        assert_eq!(Library::default().name(), "fdsoi28");
    }

    #[test]
    fn voltage_scaling_scales_energy_quadratically() {
        let lib = Library::fdsoi28();
        let e0 = lib.spec(CellKind::Fa).energy_fj;
        let lowered = lib.with_operating_point(OperatingPoint {
            vdd_v: 0.5,
            freq_mhz: 100.0,
        });
        let e1 = lowered.spec(CellKind::Fa).energy_fj;
        assert!((e1 - e0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_kinds_present() {
        let lib = Library::fdsoi28();
        for &kind in ALL_CELL_KINDS {
            let _ = lib.spec(kind);
        }
    }
}
