//! Functional equivalence checking between a netlist and a reference
//! closure — the "Verification" step of the APXPERF flow, which
//! cross-checks the hardware (VHDL, here: gate-level) and software (C,
//! here: Rust functional) models of every operator before fusing their
//! results.

use crate::ir::Netlist;
use crate::sim::Sim64;
use std::error::Error;
use std::fmt;

/// A mismatch between the netlist and the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyMismatchError {
    /// Input bus values at the failing vector, in bus declaration order.
    pub inputs: Vec<(String, u64)>,
    /// Expected concatenated output value.
    pub expected: u64,
    /// Value produced by the netlist.
    pub got: u64,
}

impl fmt::Display for VerifyMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist mismatch: inputs {:?} expected {:#x}, got {:#x}",
            self.inputs, self.expected, self.got
        )
    }
}

impl Error for VerifyMismatchError {}

fn bus_widths(nl: &Netlist) -> Vec<(String, usize)> {
    nl.inputs()
        .iter()
        .map(|(n, b)| (n.clone(), b.len()))
        .collect()
}

/// Reads every output bus and concatenates them (first bus in the low
/// bits) into a single value per lane.
fn read_concat_outputs(sim: &Sim64<'_>, nl: &Netlist, lanes: usize) -> Vec<u64> {
    let total: usize = nl.outputs().iter().map(|(_, b)| b.len()).sum();
    assert!(total <= 64, "concatenated outputs exceed 64 bits");
    let mut acc = vec![0u64; lanes];
    let mut shift = 0;
    for (name, bus) in nl.outputs() {
        let vals = sim.read_bus_lanes(name, lanes);
        for (a, v) in acc.iter_mut().zip(vals) {
            *a |= v << shift;
        }
        shift += bus.len();
    }
    acc
}

/// Runs one batch of up to 64 vectors; `operands[i]` is the value of input
/// bus `i` for each lane.
fn run_batch(nl: &Netlist, operands: &[Vec<u64>]) -> Vec<u64> {
    let lanes = operands.first().map_or(0, Vec::len);
    let mut sim = Sim64::new(nl);
    for ((name, _), vals) in nl.inputs().iter().zip(operands) {
        sim.set_bus_lanes(name, vals);
    }
    sim.run();
    read_concat_outputs(&sim, nl, lanes)
}

fn check_batch(
    nl: &Netlist,
    operands: &[Vec<u64>],
    expected: &[u64],
) -> Result<(), VerifyMismatchError> {
    let got = run_batch(nl, operands);
    for (lane, (&g, &e)) in got.iter().zip(expected).enumerate() {
        if g != e {
            return Err(VerifyMismatchError {
                inputs: nl
                    .inputs()
                    .iter()
                    .zip(operands)
                    .map(|((n, _), vals)| (n.clone(), vals[lane]))
                    .collect(),
                expected: e,
                got: g,
            });
        }
    }
    Ok(())
}

/// Exhaustively verifies a netlist whose inputs are viewed as one
/// concatenated word (first declared bus in the low bits).
///
/// # Errors
/// Returns the first mismatching vector.
///
/// # Panics
/// Panics if the total input width exceeds 24 bits (exhaustive sweep would
/// be too large — use [`verify_random2`]).
pub fn verify_exhaustive1(nl: &Netlist, f: impl Fn(u64) -> u64) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    let total: usize = widths.iter().map(|(_, w)| w).sum();
    assert!(total <= 24, "exhaustive verification over {total} bits");
    let count = 1u64 << total;
    let mut v = 0u64;
    while v < count {
        let lanes = ((count - v).min(64)) as usize;
        let lane_vals: Vec<u64> = (0..lanes as u64).map(|l| v + l).collect();
        let mut operands = Vec::with_capacity(widths.len());
        let mut shift = 0;
        for (_, w) in &widths {
            let mask = if *w == 64 { !0u64 } else { (1u64 << w) - 1 };
            operands.push(lane_vals.iter().map(|x| (x >> shift) & mask).collect());
            shift += w;
        }
        let expected: Vec<u64> = lane_vals.iter().map(|&x| f(x)).collect();
        check_batch(nl, &operands, &expected)?;
        v += lanes as u64;
    }
    Ok(())
}

/// Exhaustively verifies a two-operand netlist (buses in declaration
/// order are `a`, then `b`) against `f(a, b)`.
///
/// # Errors
/// Returns the first mismatching vector.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses, or the
/// total input width exceeds 24 bits.
pub fn verify_exhaustive2(
    nl: &Netlist,
    f: impl Fn(u64, u64) -> u64,
) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    assert_eq!(widths.len(), 2, "expected exactly two input buses");
    let wa = widths[0].1;
    verify_exhaustive1(nl, |v| {
        let mask_a = if wa == 64 { !0u64 } else { (1u64 << wa) - 1 };
        f(v & mask_a, v >> wa)
    })
}

/// Verifies a two-operand netlist on `samples` uniform random vectors.
///
/// # Errors
/// Returns the first mismatching vector.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses.
pub fn verify_random2(
    nl: &Netlist,
    samples: usize,
    seed: u64,
    f: impl Fn(u64, u64) -> u64,
) -> Result<(), VerifyMismatchError> {
    use rand::{RngExt, SeedableRng};
    let widths = bus_widths(nl);
    assert_eq!(widths.len(), 2, "expected exactly two input buses");
    let (wa, wb) = (widths[0].1, widths[1].1);
    let mask = |w: usize| if w == 64 { !0u64 } else { (1u64 << w) - 1 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut done = 0;
    while done < samples {
        let lanes = (samples - done).min(64);
        let av: Vec<u64> = (0..lanes).map(|_| rng.random::<u64>() & mask(wa)).collect();
        let bv: Vec<u64> = (0..lanes).map(|_| rng.random::<u64>() & mask(wb)).collect();
        let expected: Vec<u64> = av.iter().zip(&bv).map(|(&a, &b)| f(a, b)).collect();
        check_batch(nl, &[av, bv], &expected)?;
        done += lanes;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn adder(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &y, zero);
        b.output_bus("sum", &sum);
        b.output_bus("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn exhaustive_accepts_correct_reference() {
        let nl = adder(5);
        verify_exhaustive2(&nl, |a, b| (a + b) & 0x3F).unwrap();
    }

    #[test]
    fn exhaustive_rejects_wrong_reference() {
        let nl = adder(3);
        let err = verify_exhaustive2(&nl, |a, b| (a + b + 1) & 0xF).unwrap_err();
        assert_eq!(err.inputs.len(), 2);
        // the very first vector (0,0) already mismatches: expected 1, got 0
        assert_eq!(err.expected, 1);
        assert_eq!(err.got, 0);
    }

    #[test]
    fn random_verification_matches_exhaustive_result() {
        let nl = adder(16);
        verify_random2(&nl, 5_000, 7, |a, b| (a + b) & 0x1_FFFF).unwrap();
    }
}
