//! Functional equivalence checking between a netlist and a reference
//! closure — the "Verification" step of the APXPERF flow, which
//! cross-checks the hardware (VHDL, here: gate-level) and software (C,
//! here: Rust functional) models of every operator before fusing their
//! results.
//!
//! Both the exhaustive and the random checks are **sharded**: the vector
//! space (or sample count) is split into fixed-size chunks via
//! [`apx_engine::plan_shards_sized`], each with its own RNG stream, and
//! the `_with` variants run the chunks on an [`Engine`]. The shard plan
//! and streams never depend on the thread count, and a mismatch is always
//! reported from the lowest-indexed failing shard — so the verdict (and
//! the reported counterexample) is identical for any worker count.

use crate::ir::{NetId, Netlist};
use crate::sim::Sim64;
use apx_engine::{plan_shards_sized, shard_seed, Engine};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Vectors per verification shard: large enough to amortize a task spawn
/// over thousands of 64-lane sweeps, small enough to parallelize the
/// default sample counts.
const VERIFY_SHARD: usize = 16_384;

/// Stream id mixed into [`shard_seed`] for random verification draws.
const STREAM_VERIFY: u64 = 0x5EC0_17F1;

/// A mismatch between the netlist and the reference model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyMismatchError {
    /// Input bus values at the failing vector, in bus declaration order.
    pub inputs: Vec<(String, u64)>,
    /// Expected concatenated output value.
    pub expected: u64,
    /// Value produced by the netlist.
    pub got: u64,
}

impl fmt::Display for VerifyMismatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist mismatch: inputs {:?} expected {:#x}, got {:#x}",
            self.inputs, self.expected, self.got
        )
    }
}

impl Error for VerifyMismatchError {}

fn bus_widths(nl: &Netlist) -> Vec<(String, usize)> {
    nl.inputs()
        .iter()
        .map(|(n, b)| (n.clone(), b.len()))
        .collect()
}

/// A reusable batch checker: one simulator plus every per-batch buffer,
/// allocated once per shard so the 64-lane loop itself never touches the
/// heap.
struct BatchChecker<'n> {
    nl: &'n Netlist,
    sim: Sim64<'n>,
    /// Pre-resolved net slice per input bus, in declaration order —
    /// resolved once here so the per-window loop never repeats the
    /// by-name bus lookups.
    input_nets: Vec<&'n [NetId]>,
    /// Pre-resolved (net slice, concat shift) per output bus.
    output_nets: Vec<(&'n [NetId], usize)>,
    /// Per-lane concatenated netlist outputs of the current batch.
    got: Vec<u64>,
    /// Scratch for one output bus worth of lane values.
    vals: Vec<u64>,
    /// One lane-value buffer per input bus.
    operands: Vec<Vec<u64>>,
    /// Per-lane expected outputs of the current batch.
    expected: Vec<u64>,
}

impl<'n> BatchChecker<'n> {
    fn new(nl: &'n Netlist) -> Self {
        let total: usize = nl.outputs().iter().map(|(_, b)| b.len()).sum();
        assert!(total <= 64, "concatenated outputs exceed 64 bits");
        let mut shift = 0;
        let output_nets = nl
            .outputs()
            .iter()
            .map(|(_, bus)| {
                let entry = (bus.as_slice(), shift);
                shift += bus.len();
                entry
            })
            .collect();
        BatchChecker {
            nl,
            sim: Sim64::new(nl),
            input_nets: nl.inputs().iter().map(|(_, bus)| bus.as_slice()).collect(),
            output_nets,
            got: Vec::new(),
            vals: Vec::new(),
            operands: vec![Vec::new(); nl.inputs().len()],
            expected: Vec::new(),
        }
    }

    /// Simulates the loaded `operands` batch and compares the
    /// concatenated outputs against the loaded `expected` values.
    fn check(&mut self) -> Result<(), VerifyMismatchError> {
        let lanes = self.operands.first().map_or(0, Vec::len);
        for (nets, vals) in self.input_nets.iter().zip(&self.operands) {
            self.sim.set_bus_lanes_at(nets, vals);
        }
        self.sim.run();
        self.got.clear();
        self.got.resize(lanes, 0);
        for &(nets, shift) in &self.output_nets {
            self.sim.read_bus_lanes_at_into(nets, lanes, &mut self.vals);
            for (a, v) in self.got.iter_mut().zip(&self.vals) {
                *a |= v << shift;
            }
        }
        for (lane, (&g, &e)) in self.got.iter().zip(&self.expected).enumerate() {
            if g != e {
                return Err(VerifyMismatchError {
                    inputs: self
                        .nl
                        .inputs()
                        .iter()
                        .zip(&self.operands)
                        .map(|((n, _), vals)| (n.clone(), vals[lane]))
                        .collect(),
                    expected: e,
                    got: g,
                });
            }
        }
        Ok(())
    }
}

/// Exhaustively verifies the concatenated-word range `[start, end)` on a
/// reused simulator — one shard of [`verify_exhaustive1_with`].
fn verify_exhaustive1_range(
    nl: &Netlist,
    widths: &[(String, usize)],
    start: u64,
    end: u64,
    f: impl Fn(u64) -> u64,
) -> Result<(), VerifyMismatchError> {
    let mut checker = BatchChecker::new(nl);
    let mut v = start;
    while v < end {
        let lanes = (end - v).min(64);
        let mut shift = 0;
        for (operand, (_, w)) in checker.operands.iter_mut().zip(widths) {
            let mask = if *w == 64 { !0u64 } else { (1u64 << w) - 1 };
            operand.clear();
            operand.extend((v..v + lanes).map(|x| (x >> shift) & mask));
            shift += w;
        }
        checker.expected.clear();
        checker.expected.extend((v..v + lanes).map(&f));
        checker.check()?;
        v += lanes;
    }
    Ok(())
}

/// Exhaustively verifies a netlist whose inputs are viewed as one
/// concatenated word (first declared bus in the low bits).
///
/// # Errors
/// Returns the first mismatching vector.
///
/// # Panics
/// Panics if the total input width exceeds 24 bits (exhaustive sweep would
/// be too large — use [`verify_random2`]).
pub fn verify_exhaustive1(nl: &Netlist, f: impl Fn(u64) -> u64) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    let total: usize = widths.iter().map(|(_, w)| w).sum();
    assert!(total <= 24, "exhaustive verification over {total} bits");
    verify_exhaustive1_range(nl, &widths, 0, 1u64 << total, f)
}

/// Sharded-parallel form of [`verify_exhaustive1`]: the vector space is
/// split into fixed chunks verified on `engine`. A mismatch is reported
/// from the lowest-numbered vector range, so the result is independent of
/// the worker count.
///
/// # Errors
/// Returns the mismatch of the lowest failing range.
///
/// # Panics
/// Panics if the total input width exceeds 24 bits.
pub fn verify_exhaustive1_with(
    nl: &Netlist,
    engine: &Engine,
    f: impl Fn(u64) -> u64 + Sync,
) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    let total: usize = widths.iter().map(|(_, w)| w).sum();
    assert!(total <= 24, "exhaustive verification over {total} bits");
    let count = 1usize << total;
    let shards = plan_shards_sized(count, VERIFY_SHARD);
    let min_failed = AtomicUsize::new(usize::MAX);
    let results = engine.map_indexed(shards.len(), |i| {
        if i > min_failed.load(Ordering::Relaxed) {
            // A lower shard already failed; this shard's verdict cannot
            // win, so skip the simulation (deterministic: shards at or
            // below the lowest failing index always run in full).
            return Ok(());
        }
        let shard = shards[i];
        let result = verify_exhaustive1_range(
            nl,
            &widths,
            shard.start as u64,
            (shard.start + shard.len) as u64,
            &f,
        );
        if result.is_err() {
            min_failed.fetch_min(i, Ordering::Relaxed);
        }
        result
    });
    results.into_iter().find(Result::is_err).unwrap_or(Ok(()))
}

/// Exhaustively verifies a two-operand netlist (buses in declaration
/// order are `a`, then `b`) against `f(a, b)`.
///
/// # Errors
/// Returns the first mismatching vector.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses, or the
/// total input width exceeds 24 bits.
pub fn verify_exhaustive2(
    nl: &Netlist,
    f: impl Fn(u64, u64) -> u64,
) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    assert_eq!(widths.len(), 2, "expected exactly two input buses");
    let wa = widths[0].1;
    verify_exhaustive1(nl, |v| {
        let mask_a = if wa == 64 { !0u64 } else { (1u64 << wa) - 1 };
        f(v & mask_a, v >> wa)
    })
}

/// Sharded-parallel form of [`verify_exhaustive2`]
/// (see [`verify_exhaustive1_with`]).
///
/// # Errors
/// Returns the mismatch of the lowest failing range.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses, or the
/// total input width exceeds 24 bits.
pub fn verify_exhaustive2_with(
    nl: &Netlist,
    engine: &Engine,
    f: impl Fn(u64, u64) -> u64 + Sync,
) -> Result<(), VerifyMismatchError> {
    verify_exhaustive2_batch_with(nl, engine, |av, bv, out| {
        for ((&a, &b), o) in av.iter().zip(bv).zip(out.iter_mut()) {
            *o = f(a, b);
        }
    })
}

/// Exhaustively verifies the two-operand vector range `[start, end)` of
/// concatenated words on a reused simulator, with the expected side
/// filled a whole 64-lane batch at a time — one shard of
/// [`verify_exhaustive2_batch_with`].
fn verify_exhaustive2_range(
    nl: &Netlist,
    widths: &[(String, usize)],
    start: u64,
    end: u64,
    f: impl Fn(&[u64], &[u64], &mut [u64]),
) -> Result<(), VerifyMismatchError> {
    let mut checker = BatchChecker::new(nl);
    let mut v = start;
    while v < end {
        let lanes = (end - v).min(64);
        let mut shift = 0;
        for (operand, (_, w)) in checker.operands.iter_mut().zip(widths) {
            let mask = if *w == 64 { !0u64 } else { (1u64 << w) - 1 };
            operand.clear();
            operand.extend((v..v + lanes).map(|x| (x >> shift) & mask));
            shift += w;
        }
        checker.expected.clear();
        checker.expected.resize(lanes as usize, 0);
        f(
            &checker.operands[0],
            &checker.operands[1],
            &mut checker.expected,
        );
        checker.check()?;
        v += lanes;
    }
    Ok(())
}

/// Batched form of [`verify_exhaustive2_with`]: the reference closure
/// fills a whole batch of expected outputs (`out[i] = expected(a[i],
/// b[i])`) instead of being called per lane, so a bitsliced
/// `eval_batch` override accelerates the expected side of the
/// equivalence check exactly as it does the error-sampling loop. Shard
/// plan, vector order and reported counterexample are identical to the
/// per-lane form.
///
/// # Errors
/// Returns the mismatch of the lowest failing range.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses, or the
/// total input width exceeds 24 bits.
pub fn verify_exhaustive2_batch_with(
    nl: &Netlist,
    engine: &Engine,
    f: impl Fn(&[u64], &[u64], &mut [u64]) + Sync,
) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    assert_eq!(widths.len(), 2, "expected exactly two input buses");
    let total: usize = widths.iter().map(|(_, w)| w).sum();
    assert!(total <= 24, "exhaustive verification over {total} bits");
    let count = 1usize << total;
    let shards = plan_shards_sized(count, VERIFY_SHARD);
    let min_failed = AtomicUsize::new(usize::MAX);
    let results = engine.map_indexed(shards.len(), |i| {
        if i > min_failed.load(Ordering::Relaxed) {
            return Ok(()); // outranked by a lower failing shard already
        }
        let shard = shards[i];
        let result = verify_exhaustive2_range(
            nl,
            &widths,
            shard.start as u64,
            (shard.start + shard.len) as u64,
            &f,
        );
        if result.is_err() {
            min_failed.fetch_min(i, Ordering::Relaxed);
        }
        result
    });
    results.into_iter().find(Result::is_err).unwrap_or(Ok(()))
}

/// Verifies one shard of random vectors on a reused simulator with its
/// own seed stream.
fn verify_random2_shard(
    nl: &Netlist,
    samples: usize,
    seed: u64,
    widths: &[(String, usize)],
    f: impl Fn(&[u64], &[u64], &mut [u64]),
) -> Result<(), VerifyMismatchError> {
    use rand::{RngExt, SeedableRng};
    let (wa, wb) = (widths[0].1, widths[1].1);
    let mask = |w: usize| if w == 64 { !0u64 } else { (1u64 << w) - 1 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut checker = BatchChecker::new(nl);
    let mut done = 0;
    while done < samples {
        let lanes = (samples - done).min(64);
        for (operand, w) in checker.operands.iter_mut().zip([wa, wb]) {
            operand.clear();
            operand.extend((0..lanes).map(|_| rng.random::<u64>() & mask(w)));
        }
        checker.expected.clear();
        checker.expected.resize(lanes, 0);
        f(
            &checker.operands[0],
            &checker.operands[1],
            &mut checker.expected,
        );
        checker.check()?;
        done += lanes;
    }
    Ok(())
}

/// Verifies a two-operand netlist on `samples` uniform random vectors.
///
/// The samples are drawn from per-shard streams derived from `seed`
/// (serially here; [`verify_random2_with`] runs the same shards on an
/// engine), so the two forms always agree on the verdict.
///
/// # Errors
/// Returns the first mismatching vector.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses.
pub fn verify_random2(
    nl: &Netlist,
    samples: usize,
    seed: u64,
    f: impl Fn(u64, u64) -> u64 + Sync,
) -> Result<(), VerifyMismatchError> {
    verify_random2_with(nl, samples, seed, &Engine::single_threaded(), f)
}

/// Sharded-parallel form of [`verify_random2`]: same shards, same per
/// shard streams, executed on `engine`; mismatches are reported from the
/// lowest-indexed failing shard. Bit-identical verdict to
/// [`verify_random2`] for any thread count.
///
/// # Errors
/// Returns the mismatch of the lowest failing shard.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses.
pub fn verify_random2_with(
    nl: &Netlist,
    samples: usize,
    seed: u64,
    engine: &Engine,
    f: impl Fn(u64, u64) -> u64 + Sync,
) -> Result<(), VerifyMismatchError> {
    verify_random2_batch_with(nl, samples, seed, engine, |av, bv, out| {
        for ((&a, &b), o) in av.iter().zip(bv).zip(out.iter_mut()) {
            *o = f(a, b);
        }
    })
}

/// Batched form of [`verify_random2_with`]: the reference closure fills
/// a whole 64-lane batch of expected outputs at once (see
/// [`verify_exhaustive2_batch_with`]). Shard plan, RNG streams and the
/// reported counterexample are identical to the per-lane form.
///
/// # Errors
/// Returns the mismatch of the lowest failing shard.
///
/// # Panics
/// Panics if the netlist does not have exactly two input buses.
pub fn verify_random2_batch_with(
    nl: &Netlist,
    samples: usize,
    seed: u64,
    engine: &Engine,
    f: impl Fn(&[u64], &[u64], &mut [u64]) + Sync,
) -> Result<(), VerifyMismatchError> {
    let widths = bus_widths(nl);
    assert_eq!(widths.len(), 2, "expected exactly two input buses");
    let shards = plan_shards_sized(samples, VERIFY_SHARD);
    let min_failed = AtomicUsize::new(usize::MAX);
    let results = engine.map_indexed(shards.len(), |i| {
        if i > min_failed.load(Ordering::Relaxed) {
            return Ok(()); // outranked by a lower failing shard already
        }
        let shard = shards[i];
        let result = verify_random2_shard(
            nl,
            shard.len,
            shard_seed(seed, STREAM_VERIFY, shard.index as u64),
            &widths,
            &f,
        );
        if result.is_err() {
            min_failed.fetch_min(i, Ordering::Relaxed);
        }
        result
    });
    results.into_iter().find(Result::is_err).unwrap_or(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn adder(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &y, zero);
        b.output_bus("sum", &sum);
        b.output_bus("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn exhaustive_accepts_correct_reference() {
        let nl = adder(5);
        verify_exhaustive2(&nl, |a, b| (a + b) & 0x3F).unwrap();
    }

    #[test]
    fn exhaustive_rejects_wrong_reference() {
        let nl = adder(3);
        let err = verify_exhaustive2(&nl, |a, b| (a + b + 1) & 0xF).unwrap_err();
        assert_eq!(err.inputs.len(), 2);
        // the very first vector (0,0) already mismatches: expected 1, got 0
        assert_eq!(err.expected, 1);
        assert_eq!(err.got, 0);
    }

    #[test]
    fn random_verification_matches_exhaustive_result() {
        let nl = adder(16);
        verify_random2(&nl, 5_000, 7, |a, b| (a + b) & 0x1_FFFF).unwrap();
    }

    #[test]
    fn batched_reference_forms_match_the_per_lane_forms() {
        let nl = adder(8);
        let good = |a: u64, b: u64| (a + b) & 0x1FF;
        let bad = |a: u64, b: u64| (a + b + u64::from(a == 3 && b == 5)) & 0x1FF;
        let bad_often = |a: u64, b: u64| (a + b + u64::from(a == 3)) & 0x1FF;
        fn batched(f: impl Fn(u64, u64) -> u64) -> impl Fn(&[u64], &[u64], &mut [u64]) {
            move |av, bv, out| {
                for ((&a, &b), o) in av.iter().zip(bv).zip(out.iter_mut()) {
                    *o = f(a, b);
                }
            }
        }
        for threads in [1, 4] {
            let engine = Engine::new(threads);
            verify_exhaustive2_batch_with(&nl, &engine, batched(good)).unwrap();
            // same counterexample as the serial per-lane sweep
            assert_eq!(
                verify_exhaustive2_batch_with(&nl, &engine, batched(bad)).unwrap_err(),
                verify_exhaustive2(&nl, bad).unwrap_err()
            );
            verify_random2_batch_with(&nl, 40_000, 9, &engine, batched(good)).unwrap();
            assert_eq!(
                verify_random2_batch_with(&nl, 50_000, 9, &engine, batched(bad_often)).unwrap_err(),
                verify_random2(&nl, 50_000, 9, bad_often).unwrap_err()
            );
        }
    }

    #[test]
    fn parallel_verdicts_match_serial_for_any_thread_count() {
        let nl = adder(8);
        let good = |a: u64, b: u64| (a + b) & 0x1FF;
        let bad = |a: u64, b: u64| (a + b + u64::from(a == 3 && b == 5)) & 0x1FF;
        // a 1-in-256 fault so the random check hits it with certainty
        let bad_often = |a: u64, b: u64| (a + b + u64::from(a == 3)) & 0x1FF;
        let serial_bad = verify_exhaustive2(&nl, bad).unwrap_err();
        let serial_rand = verify_random2(&nl, 50_000, 9, bad_often).unwrap_err();
        for threads in [1, 2, 8] {
            let engine = Engine::new(threads);
            verify_exhaustive2_with(&nl, &engine, good).unwrap();
            assert_eq!(
                verify_exhaustive2_with(&nl, &engine, bad).unwrap_err(),
                serial_bad
            );
            verify_random2_with(&nl, 40_000, 9, &engine, good).unwrap();
            // serial and parallel random verification share shard streams,
            // and the lowest failing shard wins: identical counterexample
            assert_eq!(
                verify_random2_with(&nl, 50_000, 9, &engine, bad_often).unwrap_err(),
                serial_rand,
                "threads={threads}"
            );
        }
    }
}
