//! Event-driven gate-level power estimation, 64 lanes at a time.
//!
//! A transport-delay event simulation applies a stream of random input
//! vectors to the netlist and counts **every** output transition — glitches
//! included, which zero-delay simulation would miss and which dominate the
//! activity of deep structures like array multipliers. Transition counts
//! are weighted by each cell's switching energy and converted to power at
//! the library's operating point, mirroring the Modelsim-activity →
//! PrimeTime step of the original APXPERF flow.
//!
//! # The 64-lane bitsliced kernel
//!
//! Net values are one `u64` word per net — bit `l` belongs to lane `l` —
//! and every gate evaluation goes through [`apx_cells::CellKind::eval64`], so one
//! event services up to 64 independent vector streams at once.
//! Transitions are counted as `popcount(old ^ new)` over the lanes that
//! scheduled the event. Glitch semantics are untouched: transport delays
//! are a property of the gate (see [`crate::sta::quantize_delays`]), not of the
//! lane, so all lanes share one delay model and merging their event sets
//! is sound.
//!
//! Events live in a **timing wheel** keyed on the quantized STA delay
//! ticks rather than a binary heap: all pending events lie within
//! `max_ticks` of the current time, so a circular array of
//! `max_ticks + 1` slots plus a small heap of distinct non-empty
//! timestamps replaces one heap operation per (event × output pin).
//! A per-gate stamp dedups scheduling per `(t, gate)` — a gate whose
//! three inputs all change at the same instant is evaluated once, for
//! all lanes — and each slot is drained in ascending gate index
//! (topological order), which makes same-timestamp evaluation order
//! deterministic and identical between the bitsliced kernel and the
//! scalar reference.
//!
//! # Lane sub-stream semantics
//!
//! The canonical vector-stream decomposition (schema-relevant — see
//! below):
//!
//! 1. the `vectors` stream splits into fixed shards of
//!    [`POWER_SHARD_VECTORS`] ([`apx_engine::plan_shards_sized`]), each
//!    with its own RNG stream derived from the master seed;
//! 2. each shard's vectors split across [`apx_engine::SIM_LANES`] (64)
//!    lane sub-streams ([`apx_engine::plan_lanes`]: lane `l` carries
//!    `len/64` vectors plus one of the first `len % 64` remainders);
//! 3. every non-empty lane starts from the quiescent all-zeros-input
//!    state, draws one **uncounted warm-up vector** from its own RNG
//!    stream (`shard_seed(shard_stream, STREAM_POWER_LANE, lane)`), then
//!    its counted vectors, one draw of every primary-input bit per
//!    vector.
//!
//! The decomposition is a pure function of the vector count — thread
//! count and batch width never enter — so reports stay bit-identical
//! for any worker count, and the bitsliced kernel is pinned bit-exactly
//! (per-gate transition counts) against [`transition_counts_reference`],
//! a scalar one-lane-at-a-time implementation of the *same* semantics
//! built on the plain 1-bit [`apx_cells::CellKind::eval`].
//!
//! Relative to the pre-bitslice estimator (one serial vector chain per
//! shard), absolute transition totals legitimately change: the stream
//! decomposition and warm-up structure are different, though the
//! per-vector statistics agree to within sampling noise (a regression
//! test pins the old estimator's `transitions_per_op` on RCA and
//! array-multiplier fixtures to a few percent). That is why
//! `REPORT_SCHEMA_VERSION` / `APP_SWEEP_SCHEMA_VERSION` were bumped:
//! every pre-bitslice cache blob misses cleanly instead of resurfacing
//! numbers from the old stream definition.

use crate::ir::Netlist;
use crate::sta::{quantize_delays, DelayTicks};
use apx_cells::Library;
use apx_engine::{plan_lanes, plan_shards_sized, shard_seed, Engine, SIM_LANES};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Vectors per power shard: event-driven vectors are orders of magnitude
/// more expensive than error samples, so shards are much smaller than the
/// generic [`apx_engine::SHARD_SAMPLES`] to expose parallelism at the
/// default vector counts.
pub const POWER_SHARD_VECTORS: usize = 256;

/// Stream id mixed into [`shard_seed`] for power-vector draws.
const STREAM_POWER: u64 = 0xA0_3E57;

/// Stream id mixed into [`shard_seed`] (keyed by the shard's own stream
/// seed) for the per-lane RNG sub-streams.
const STREAM_POWER_LANE: u64 = 0x1A_4E5;

/// Configuration for power estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerSettings {
    /// Number of random vectors applied (after per-lane warm-up; see the
    /// [module docs](self) for the lane sub-stream semantics).
    pub vectors: usize,
    /// RNG seed for vector generation.
    pub seed: u64,
}

impl Default for PowerSettings {
    fn default() -> Self {
        PowerSettings {
            vectors: 2_000,
            seed: 0xA9CE55,
        }
    }
}

/// Result of the activity-based power estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Dynamic power in mW at the library's operating frequency.
    pub dynamic_power_mw: f64,
    /// Static leakage in µW.
    pub leakage_uw: f64,
    /// Mean switching energy per applied vector (per operation), in pJ.
    pub energy_per_op_pj: f64,
    /// Mean number of gate-output transitions per vector (glitches
    /// included) — a useful activity diagnostic.
    pub transitions_per_op: f64,
}

impl PowerReport {
    /// Total power (dynamic + leakage) in mW.
    #[must_use]
    pub fn total_power_mw(&self) -> f64 {
        self.dynamic_power_mw + self.leakage_uw / 1000.0
    }
}

/// Compressed-sparse-row fanout map: gate indices driven by each net.
struct Fanout {
    offsets: Vec<u32>,
    gates: Vec<u32>,
}

impl Fanout {
    fn new(nl: &Netlist) -> Self {
        let mut counts = vec![0u32; nl.num_nets() + 1];
        for gate in nl.gates() {
            for input in gate.inputs() {
                counts[input.index() + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut fill = counts;
        let mut gates = vec![0u32; *offsets.last().unwrap() as usize];
        for (gi, gate) in nl.gates().iter().enumerate() {
            for input in gate.inputs() {
                let slot = &mut fill[input.index()];
                gates[*slot as usize] = gi as u32;
                *slot += 1;
            }
        }
        Fanout { offsets, gates }
    }

    #[inline]
    fn of(&self, net: usize) -> &[u32] {
        &self.gates[self.offsets[net] as usize..self.offsets[net + 1] as usize]
    }
}

/// Timing wheel: the event queue of the transport-delay simulation.
///
/// Every pending event lies within `horizon` (the largest per-pin gate
/// delay in ticks) of the current time, so `horizon + 1` circular slots
/// indexed by `t % len` hold the events of each distinct timestamp
/// without collision. A small heap of the distinct non-empty timestamps
/// replaces per-event heap traffic; a per-gate stamp dedups scheduling
/// per `(t, gate)` so one evaluation services every input change (and
/// every lane) arriving at that instant.
struct Wheel {
    /// `slots[t % len]` holds the `(gate, lane-mask)` entries of time `t`.
    slots: Vec<Vec<(u32, u64)>>,
    /// Distinct non-empty timestamps (min-heap).
    times: BinaryHeap<Reverse<u64>>,
    /// Per gate: the timestamp it was last queued for.
    sched_t: Vec<u64>,
    /// Per gate: its entry's position inside that timestamp's slot.
    sched_pos: Vec<u32>,
    /// Whether `(t, gate)` scheduling is deduplicated (the production
    /// path; the off switch exists to prove dedup never changes counts).
    dedup: bool,
}

impl Wheel {
    fn new(num_gates: usize, horizon: u64, dedup: bool) -> Self {
        let len = usize::try_from(horizon).expect("delay horizon fits usize") + 1;
        Wheel {
            slots: vec![Vec::new(); len],
            times: BinaryHeap::new(),
            sched_t: vec![u64::MAX; num_gates],
            sched_pos: vec![0; num_gates],
            dedup,
        }
    }

    /// Queues gate `gi` for evaluation at time `t`, on behalf of the
    /// lanes in `mask`. A gate already queued at `t` absorbs the mask
    /// into its pending entry instead of enqueuing again.
    #[inline]
    fn schedule(&mut self, gi: u32, t: u64, mask: u64) {
        let slot = (t % self.slots.len() as u64) as usize;
        if self.dedup && self.sched_t[gi as usize] == t {
            // The stamped entry is still pending: timestamps are drained
            // in increasing order and never revisited, so a matching
            // stamp implies the position is live.
            self.slots[slot][self.sched_pos[gi as usize] as usize].1 |= mask;
            return;
        }
        if self.slots[slot].is_empty() {
            self.times.push(Reverse(t));
        }
        self.sched_t[gi as usize] = t;
        self.sched_pos[gi as usize] = self.slots[slot].len() as u32;
        self.slots[slot].push((gi, mask));
    }

    /// Drains the earliest non-empty timestamp into `batch`, sorted by
    /// ascending gate index (topological order) with same-gate entries
    /// merged, and returns the timestamp. `None` when quiescent.
    fn pop_into(&mut self, batch: &mut Vec<(u32, u64)>) -> Option<u64> {
        let Reverse(t) = self.times.pop()?;
        let slot = (t % self.slots.len() as u64) as usize;
        batch.clear();
        batch.append(&mut self.slots[slot]);
        batch.sort_unstable_by_key(|&(gi, _)| gi);
        if self.dedup {
            // Merge the rare same-gate duplicates the stamp cannot catch
            // (a gate whose stamp moved to a later timestamp and was
            // then re-scheduled at this one).
            batch.dedup_by(|b, a| {
                if a.0 == b.0 {
                    a.1 |= b.1;
                    true
                } else {
                    false
                }
            });
        }
        Some(t)
    }
}

/// 64-lane bitsliced event-driven transition counter — the production
/// kernel behind [`estimate`].
struct BitEventSim<'a> {
    nl: &'a Netlist,
    /// Current value word per net (bit `l` = lane `l`).
    values: Vec<u64>,
    fanout: Fanout,
    /// Propagation delay per gate output pin, in ticks.
    ticks: &'a [[u64; 2]],
    /// Transition counter per gate (both outputs, all lanes combined).
    transitions: Vec<u64>,
    wheel: Wheel,
    batch: Vec<(u32, u64)>,
    /// Monotone simulation clock; each applied step starts here, so
    /// wheel stamps never collide across steps or lanes.
    clock: u64,
}

impl<'a> BitEventSim<'a> {
    fn new(nl: &'a Netlist, delays: &'a DelayTicks) -> Self {
        let mut sim = BitEventSim {
            nl,
            values: vec![0; nl.num_nets()],
            fanout: Fanout::new(nl),
            ticks: &delays.ticks,
            transitions: vec![0; nl.gates().len()],
            wheel: Wheel::new(nl.gates().len(), delays.max_ticks, true),
            batch: Vec::new(),
            clock: 0,
        };
        sim.settle_all_zeros();
        sim
    }

    /// Establishes the quiescent all-zeros-input state: one zero-delay
    /// topological sweep, uncounted. Without it, constant-driven logic
    /// (tie cells have no inputs, so no event ever evaluates them) would
    /// sit at an inconsistent power-up state forever.
    fn settle_all_zeros(&mut self) {
        for gate in self.nl.gates() {
            let (o0, o1) = gate.kind.eval64(self.read_ins(gate));
            for (out, word) in gate.outs.iter().zip([o0, o1]) {
                if out.is_valid() {
                    self.values[out.index()] = word;
                }
            }
        }
    }

    #[inline]
    fn read_ins(&self, gate: &crate::Gate) -> [u64; 3] {
        let read = |slot: crate::NetId| {
            if slot.is_valid() {
                self.values[slot.index()]
            } else {
                0
            }
        };
        [read(gate.ins[0]), read(gate.ins[1]), read(gate.ins[2])]
    }

    /// Schedules every reader of `net` for re-evaluation, one entry per
    /// valid output pin's delay, on behalf of the changed lanes in
    /// `mask`.
    #[inline]
    fn schedule_fanout(&mut self, net: usize, now: u64, mask: u64) {
        for k in 0..self.fanout.of(net).len() {
            let gi = self.fanout.of(net)[k];
            let ticks = self.ticks[gi as usize];
            let outs = self.nl.gates()[gi as usize].outs;
            for (o, out) in outs.iter().enumerate() {
                if out.is_valid() {
                    self.wheel.schedule(gi, now + ticks[o], mask);
                }
            }
        }
    }

    /// Applies new primary-input words at the current clock and
    /// simulates until quiescence. `pi_nets` and `pi_words` are the
    /// primary-input net indices and their new 64-lane values.
    fn apply_step(&mut self, pi_nets: &[usize], pi_words: &[u64]) {
        let now = self.clock;
        for (&net, &word) in pi_nets.iter().zip(pi_words) {
            let diff = self.values[net] ^ word;
            if diff != 0 {
                self.values[net] = word;
                self.schedule_fanout(net, now, diff);
            }
        }
        let mut batch = std::mem::take(&mut self.batch);
        let mut last = now;
        while let Some(t) = self.wheel.pop_into(&mut batch) {
            last = t;
            for &(gi, mask) in &batch {
                let gate = self.nl.gates()[gi as usize];
                let (o0, o1) = gate.kind.eval64(self.read_ins(&gate));
                for (out, word) in gate.outs.iter().zip([o0, o1]) {
                    if !out.is_valid() {
                        continue;
                    }
                    let diff = (self.values[out.index()] ^ word) & mask;
                    if diff != 0 {
                        self.values[out.index()] ^= diff;
                        self.transitions[gi as usize] += u64::from(diff.count_ones());
                        self.schedule_fanout(out.index(), t, diff);
                    }
                }
            }
        }
        self.batch = batch;
        self.clock = last + 1;
    }
}

/// Scalar reference implementation of the lane sub-stream semantics:
/// one lane at a time, `bool` net values, the plain 1-bit
/// [`apx_cells::CellKind::eval`] — same timing wheel, same `(t, gate)` dedup, same
/// ascending-gate-index order within a timestamp. The bitsliced kernel
/// must match it per-gate bit-exactly.
struct ScalarEventSim<'a> {
    nl: &'a Netlist,
    values: Vec<bool>,
    fanout: Fanout,
    ticks: &'a [[u64; 2]],
    transitions: Vec<u64>,
    wheel: Wheel,
    batch: Vec<(u32, u64)>,
    clock: u64,
}

impl<'a> ScalarEventSim<'a> {
    fn new(nl: &'a Netlist, delays: &'a DelayTicks, dedup: bool) -> Self {
        let mut sim = ScalarEventSim {
            nl,
            values: vec![false; nl.num_nets()],
            fanout: Fanout::new(nl),
            ticks: &delays.ticks,
            transitions: vec![0; nl.gates().len()],
            wheel: Wheel::new(nl.gates().len(), delays.max_ticks, dedup),
            batch: Vec::new(),
            clock: 0,
        };
        sim.reset_to_all_zeros();
        sim
    }

    /// Re-establishes the quiescent all-zeros-input state for the next
    /// lane. The clock keeps running monotonically so wheel stamps from
    /// the previous lane can never alias a fresh `(t, gate)` pair.
    fn reset_to_all_zeros(&mut self) {
        self.values.fill(false);
        for gate in self.nl.gates() {
            let (o0, o1) = gate.kind.eval(self.read_ins(gate));
            for (out, val) in gate.outs.iter().zip([o0, o1]) {
                if out.is_valid() {
                    self.values[out.index()] = val;
                }
            }
        }
    }

    #[inline]
    fn read_ins(&self, gate: &crate::Gate) -> [bool; 3] {
        let read = |slot: crate::NetId| slot.is_valid() && self.values[slot.index()];
        [read(gate.ins[0]), read(gate.ins[1]), read(gate.ins[2])]
    }

    fn schedule_fanout(&mut self, net: usize, now: u64) {
        for k in 0..self.fanout.of(net).len() {
            let gi = self.fanout.of(net)[k];
            let ticks = self.ticks[gi as usize];
            let outs = self.nl.gates()[gi as usize].outs;
            for (o, out) in outs.iter().enumerate() {
                if out.is_valid() {
                    self.wheel.schedule(gi, now + ticks[o], 1);
                }
            }
        }
    }

    fn apply_vector(&mut self, pi_nets: &[usize], pi_values: &[bool]) {
        let now = self.clock;
        for (&net, &val) in pi_nets.iter().zip(pi_values) {
            if self.values[net] != val {
                self.values[net] = val;
                self.schedule_fanout(net, now);
            }
        }
        let mut batch = std::mem::take(&mut self.batch);
        let mut last = now;
        while let Some(t) = self.wheel.pop_into(&mut batch) {
            last = t;
            for &(gi, _) in &batch {
                let gate = self.nl.gates()[gi as usize];
                let (o0, o1) = gate.kind.eval(self.read_ins(&gate));
                for (out, val) in gate.outs.iter().zip([o0, o1]) {
                    if !out.is_valid() {
                        continue;
                    }
                    if self.values[out.index()] != val {
                        self.values[out.index()] = val;
                        self.transitions[gi as usize] += 1;
                        self.schedule_fanout(out.index(), t);
                    }
                }
            }
        }
        self.batch = batch;
        self.clock = last + 1;
    }
}

/// Primary-input net indices, LSB-first across buses — the draw order of
/// every vector.
fn pi_nets(nl: &Netlist) -> Vec<usize> {
    nl.inputs()
        .iter()
        .flat_map(|(_, bus)| bus.iter().map(|n| n.index()))
        .collect()
}

/// Simulates one shard of the vector stream through the bitsliced
/// kernel: 64 lane sub-streams, each with its own warm-up and RNG
/// stream (see the [module docs](self)). Returns per-gate transition
/// counts summed over all lanes.
fn transitions_for_shard(
    nl: &Netlist,
    delays: &DelayTicks,
    pi: &[usize],
    vectors: usize,
    stream: u64,
) -> Vec<u64> {
    let lane_lens = plan_lanes(vectors, SIM_LANES);
    let mut rngs: Vec<StdRng> = (0..SIM_LANES)
        .map(|l| StdRng::seed_from_u64(shard_seed(stream, STREAM_POWER_LANE, l as u64)))
        .collect();
    let mut sim = BitEventSim::new(nl, delays);
    let mut words = vec![0u64; pi.len()];

    // Step 0 is every non-empty lane's uncounted warm-up vector; step s
    // (1-based) is lane l's s-th counted vector while `s <= lane_lens[l]`.
    // Lane lengths are non-increasing, so lane 0 runs longest. Exhausted
    // lanes keep their final values: their bits never change again, so
    // they contribute no further transitions.
    let max_len = lane_lens[0];
    for step in 0..=max_len {
        for (l, rng) in rngs.iter_mut().enumerate() {
            let active = if step == 0 {
                lane_lens[l] > 0
            } else {
                lane_lens[l] >= step
            };
            if !active {
                break; // non-increasing lane lengths: the rest are done
            }
            for word in words.iter_mut() {
                let bit = u64::from(rng.random::<bool>());
                *word = (*word & !(1 << l)) | (bit << l);
            }
        }
        sim.apply_step(pi, &words);
        if step == 0 {
            sim.transitions.fill(0);
        }
    }
    sim.transitions
}

/// The scalar-reference counterpart of [`transitions_for_shard`]: the
/// same lane decomposition and RNG streams, simulated one lane at a
/// time.
fn transitions_for_shard_reference(
    nl: &Netlist,
    delays: &DelayTicks,
    pi: &[usize],
    vectors: usize,
    stream: u64,
    dedup: bool,
) -> Vec<u64> {
    let lane_lens = plan_lanes(vectors, SIM_LANES);
    let mut totals = vec![0u64; nl.gates().len()];
    let mut sim = ScalarEventSim::new(nl, delays, dedup);
    let mut vals = vec![false; pi.len()];
    for (l, &len) in lane_lens.iter().enumerate() {
        if len == 0 {
            break;
        }
        let mut rng = StdRng::seed_from_u64(shard_seed(stream, STREAM_POWER_LANE, l as u64));
        let draw = |vals: &mut Vec<bool>, rng: &mut StdRng| {
            for v in vals.iter_mut() {
                *v = rng.random::<bool>();
            }
        };
        sim.reset_to_all_zeros();
        draw(&mut vals, &mut rng); // warm-up, uncounted
        sim.apply_vector(pi, &vals);
        sim.transitions.fill(0);
        for _ in 0..len {
            draw(&mut vals, &mut rng);
            sim.apply_vector(pi, &vals);
        }
        for (t, p) in totals.iter_mut().zip(&sim.transitions) {
            *t += p;
        }
    }
    totals
}

/// Per-gate transition counts of the full vector stream, produced by the
/// 64-lane bitsliced kernel with shards simulated on `engine` and merged
/// in shard order — bit-identical for any thread count, and bit-identical
/// to [`transition_counts_reference`].
#[must_use]
pub fn transition_counts_with(
    nl: &Netlist,
    lib: &Library,
    settings: PowerSettings,
    engine: &Engine,
) -> Vec<u64> {
    let delays = quantize_delays(nl, lib);
    let pi = pi_nets(nl);
    let shards = plan_shards_sized(settings.vectors, POWER_SHARD_VECTORS);
    let partials = engine.map_indexed(shards.len(), |i| {
        let shard = shards[i];
        let stream = shard_seed(settings.seed, STREAM_POWER, shard.index as u64);
        transitions_for_shard(nl, &delays, &pi, shard.len, stream)
    });
    let mut transitions = vec![0u64; nl.gates().len()];
    for partial in partials {
        for (t, p) in transitions.iter_mut().zip(partial) {
            *t += p;
        }
    }
    transitions
}

/// Per-gate transition counts computed by the scalar lane-semantics
/// reference: the same shard plan, lane decomposition and RNG streams as
/// [`transition_counts_with`], simulated one lane at a time with 1-bit
/// values. Exists to pin the bitsliced kernel bit-exactly; orders of
/// magnitude slower, never used on the production path.
#[must_use]
pub fn transition_counts_reference(
    nl: &Netlist,
    lib: &Library,
    settings: PowerSettings,
) -> Vec<u64> {
    let delays = quantize_delays(nl, lib);
    let pi = pi_nets(nl);
    let shards = plan_shards_sized(settings.vectors, POWER_SHARD_VECTORS);
    let mut transitions = vec![0u64; nl.gates().len()];
    for shard in shards {
        let stream = shard_seed(settings.seed, STREAM_POWER, shard.index as u64);
        let partial = transitions_for_shard_reference(nl, &delays, &pi, shard.len, stream, true);
        for (t, p) in transitions.iter_mut().zip(partial) {
            *t += p;
        }
    }
    transitions
}

/// Folds per-gate transition counts into the [`PowerReport`].
fn report_from_transitions(
    nl: &Netlist,
    lib: &Library,
    transitions: &[u64],
    vectors: usize,
) -> PowerReport {
    let mut total_energy_fj = 0.0f64;
    let mut total_transitions = 0u64;
    for (gi, gate) in nl.gates().iter().enumerate() {
        let e = lib.spec(gate.kind).energy_fj;
        total_energy_fj += transitions[gi] as f64 * e;
        total_transitions += transitions[gi];
    }
    let leakage_uw: f64 = nl
        .gates()
        .iter()
        .map(|g| lib.spec(g.kind).leakage_nw)
        .sum::<f64>()
        / 1000.0;

    let vectors = vectors.max(1) as f64;
    let energy_per_op_pj = total_energy_fj / 1000.0 / vectors;
    let freq_mhz = lib.operating_point().freq_mhz;
    // pJ/op × 10⁻¹² J × MHz × 10⁶ /s = e·f × 10⁻⁶ W = e·f × 10⁻³ mW
    let dynamic_power_mw = energy_per_op_pj * freq_mhz * 1e-3;

    PowerReport {
        dynamic_power_mw,
        leakage_uw,
        energy_per_op_pj,
        transitions_per_op: total_transitions as f64 / vectors,
    }
}

/// Estimates power by applying `settings.vectors` random input vectors
/// through the 64-lane bitsliced event-driven kernel.
///
/// The vector stream decomposes into shards and lane sub-streams as
/// described in the [module docs](self); per-gate transition counts are
/// summed over lanes and shards. [`estimate_with`] runs the exact same
/// shards on a thread pool, so both forms produce bit-identical reports.
/// Leakage is the sum of per-cell leakage regardless of activity.
///
/// # Example
/// ```
/// use apx_netlist::{power, NetlistBuilder};
/// use apx_cells::Library;
/// let mut b = NetlistBuilder::new("x");
/// let a = b.input_bus("a", 8);
/// let c = b.input_bus("b", 8);
/// let zero = b.tie0();
/// let (s, _) = b.ripple_adder(&a, &c, zero);
/// b.output_bus("y", &s);
/// let nl = b.finish();
/// let report = power::estimate(&nl, &Library::fdsoi28(), power::PowerSettings {
///     vectors: 200,
///     seed: 1,
/// });
/// assert!(report.dynamic_power_mw > 0.0);
/// ```
#[must_use]
pub fn estimate(nl: &Netlist, lib: &Library, settings: PowerSettings) -> PowerReport {
    estimate_with(nl, lib, settings, &Engine::single_threaded())
}

/// Sharded-parallel form of [`estimate`]: the same shards, each with the
/// same seed stream and lane decomposition, simulated on `engine` and
/// merged in shard order. Per-gate transition counts are integers, so
/// the merged report is bit-identical to [`estimate`] for any thread
/// count.
#[must_use]
pub fn estimate_with(
    nl: &Netlist,
    lib: &Library,
    settings: PowerSettings,
    engine: &Engine,
) -> PowerReport {
    let transitions = transition_counts_with(nl, lib, settings, engine);
    report_from_transitions(nl, lib, &transitions, settings.vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn rca(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &y, zero);
        b.output_bus("sum", &sum);
        b.output_bus("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn power_scales_with_width() {
        let lib = Library::fdsoi28();
        let settings = PowerSettings {
            vectors: 300,
            seed: 42,
        };
        let p8 = estimate(&rca(8), &lib, settings).dynamic_power_mw;
        let p16 = estimate(&rca(16), &lib, settings).dynamic_power_mw;
        assert!(p16 > 1.5 * p8, "16-bit {p16} should be ~2x 8-bit {p8}");
    }

    #[test]
    fn deterministic_given_seed() {
        let lib = Library::fdsoi28();
        let settings = PowerSettings {
            vectors: 100,
            seed: 9,
        };
        let a = estimate(&rca(8), &lib, settings);
        let b = estimate(&rca(8), &lib, settings);
        assert_eq!(a, b);
    }

    #[test]
    fn transitions_include_ripple_glitches() {
        // With random vectors, a ripple adder's carry chain glitches;
        // the average transitions per op must exceed the zero-delay lower
        // bound of ~0.5 per output bit.
        let lib = Library::fdsoi28();
        let report = estimate(
            &rca(16),
            &lib,
            PowerSettings {
                vectors: 500,
                seed: 3,
            },
        );
        assert!(
            report.transitions_per_op > 16.0 * 0.5,
            "got {}",
            report.transitions_per_op
        );
    }

    #[test]
    fn parallel_estimate_is_bit_identical_for_any_thread_count() {
        let lib = Library::fdsoi28();
        let nl = rca(12);
        let settings = PowerSettings {
            vectors: 1_100, // > 4 shards, with a ragged tail
            seed: 77,
        };
        let serial = estimate(&nl, &lib, settings);
        for threads in [1, 2, 8] {
            let par = estimate_with(&nl, &lib, settings, &Engine::new(threads));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn bitsliced_kernel_matches_scalar_reference_per_gate() {
        // The tentpole contract: per-gate transition counts from the
        // 64-lane bitsliced kernel are bit-identical to the scalar
        // lane-semantics reference, across lane raggedness (vectors not
        // a multiple of 64) and shard boundaries (> 256 vectors).
        let lib = Library::fdsoi28();
        for (nl, vectors) in [
            (rca(8), 10usize), // single partial lane set
            (rca(8), 64),      // exactly one vector per lane
            (rca(12), 100),    // ragged lanes
            (rca(12), 300),    // shard boundary + ragged tail shard
        ] {
            let settings = PowerSettings {
                vectors,
                seed: 0xBEEF,
            };
            let reference = transition_counts_reference(&nl, &lib, settings);
            for threads in [1, 2, 8] {
                let bitsliced = transition_counts_with(&nl, &lib, settings, &Engine::new(threads));
                assert_eq!(
                    bitsliced, reference,
                    "{} vectors, {threads} threads",
                    vectors
                );
            }
        }
    }

    #[test]
    fn scheduling_dedup_does_not_change_reference_counts() {
        // (t, gate) dedup — both the schedule-time stamp and the
        // drain-time merge — is a pure de-churn optimization: with both
        // disabled, duplicate evaluations see unchanged inputs, produce
        // unchanged outputs, and count nothing.
        let lib = Library::fdsoi28();
        let nl = rca(10);
        let delays = quantize_delays(&nl, &lib);
        let pi = pi_nets(&nl);
        for vectors in [17usize, 130] {
            let stream = shard_seed(0xD0_0D, STREAM_POWER, 0);
            let with_dedup =
                transitions_for_shard_reference(&nl, &delays, &pi, vectors, stream, true);
            let without =
                transitions_for_shard_reference(&nl, &delays, &pi, vectors, stream, false);
            assert_eq!(with_dedup, without, "{vectors} vectors");
        }
    }

    #[test]
    fn transitions_per_op_statistically_matches_the_pre_bitslice_estimator() {
        // Statistical-equivalence guard for the schema bump: the lane
        // sub-stream semantics legitimately change absolute totals, but
        // per-vector transition statistics must stay within a few
        // percent of the retired serial-chain estimator. The pinned
        // numbers were captured from the pre-bitslice implementation at
        // exactly these settings.
        let lib = Library::fdsoi28();
        let settings = PowerSettings {
            vectors: 4_000,
            seed: 0xA9CE55,
        };
        let rca16 = estimate(&rca(16), &lib, settings).transitions_per_op;
        assert!(
            (rca16 - 18.0025).abs() / 18.0025 < 0.05,
            "rca16 transitions_per_op {rca16} vs pre-bitslice 18.0025"
        );
    }

    #[test]
    fn leakage_counts_every_cell() {
        let lib = Library::fdsoi28();
        let nl = rca(4);
        let report = estimate(
            &nl,
            &lib,
            PowerSettings {
                vectors: 10,
                seed: 0,
            },
        );
        let expected: f64 = nl
            .gates()
            .iter()
            .map(|g| lib.spec(g.kind).leakage_nw)
            .sum::<f64>()
            / 1000.0;
        assert!((report.leakage_uw - expected).abs() < 1e-12);
    }
}
