//! Event-driven gate-level power estimation.
//!
//! A transport-delay event simulation applies a stream of random input
//! vectors to the netlist and counts **every** output transition — glitches
//! included, which zero-delay simulation would miss and which dominate the
//! activity of deep structures like array multipliers. Transition counts
//! are weighted by each cell's switching energy and converted to power at
//! the library's operating point, mirroring the Modelsim-activity →
//! PrimeTime step of the original APXPERF flow.

use crate::ir::Netlist;
use crate::sta::gate_output_delays_ps;
use apx_cells::Library;
use apx_engine::{plan_shards_sized, shard_seed, Engine};
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Vectors per power shard: event-driven vectors are orders of magnitude
/// more expensive than error samples, so shards are much smaller than the
/// generic [`apx_engine::SHARD_SAMPLES`] to expose parallelism at the
/// default vector counts.
const POWER_SHARD_VECTORS: usize = 256;

/// Stream id mixed into [`shard_seed`] for power-vector draws.
const STREAM_POWER: u64 = 0xA0_3E57;

/// Configuration for power estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerSettings {
    /// Number of random vectors applied (after a one-vector warm-up).
    pub vectors: usize,
    /// RNG seed for vector generation.
    pub seed: u64,
}

impl Default for PowerSettings {
    fn default() -> Self {
        PowerSettings {
            vectors: 2_000,
            seed: 0xA9CE55,
        }
    }
}

/// Result of the activity-based power estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Dynamic power in mW at the library's operating frequency.
    pub dynamic_power_mw: f64,
    /// Static leakage in µW.
    pub leakage_uw: f64,
    /// Mean switching energy per applied vector (per operation), in pJ.
    pub energy_per_op_pj: f64,
    /// Mean number of gate-output transitions per vector (glitches
    /// included) — a useful activity diagnostic.
    pub transitions_per_op: f64,
}

impl PowerReport {
    /// Total power (dynamic + leakage) in mW.
    #[must_use]
    pub fn total_power_mw(&self) -> f64 {
        self.dynamic_power_mw + self.leakage_uw / 1000.0
    }
}

/// Event-driven transition-counting simulator.
struct EventSim<'a> {
    nl: &'a Netlist,
    /// Current boolean value per net.
    values: Vec<bool>,
    /// Gate indices driven by each net.
    fanout: Vec<Vec<u32>>,
    /// Propagation delay per gate output pin, ps.
    delays: Vec<[u64; 2]>,
    /// Transition counter per gate (both outputs combined).
    transitions: Vec<u64>,
    queue: BinaryHeap<Reverse<(u64, u32)>>,
}

impl<'a> EventSim<'a> {
    fn new(nl: &'a Netlist, lib: &Library) -> Self {
        let mut fanout = vec![Vec::new(); nl.num_nets()];
        for (gi, gate) in nl.gates().iter().enumerate() {
            for input in gate.inputs() {
                fanout[input.index()].push(gi as u32);
            }
        }
        EventSim {
            nl,
            values: vec![false; nl.num_nets()],
            fanout,
            delays: gate_output_delays_ps(nl, lib),
            transitions: vec![0; nl.gates().len()],
            queue: BinaryHeap::new(),
        }
    }

    fn schedule_fanout(&mut self, net: usize, now: u64) {
        // Collect first to appease the borrow checker without cloning the
        // fanout list on the hot path.
        for k in 0..self.fanout[net].len() {
            let gi = self.fanout[net][k];
            let delays = self.delays[gi as usize];
            let gate = &self.nl.gates()[gi as usize];
            for (o, &out) in gate.outs.iter().enumerate() {
                if out.is_valid() {
                    self.queue.push(Reverse((now + delays[o], gi)));
                }
            }
        }
    }

    fn eval_gate(&self, gi: usize) -> (bool, bool) {
        let gate = &self.nl.gates()[gi];
        let read = |slot: crate::NetId| {
            if slot.is_valid() {
                self.values[slot.index()]
            } else {
                false
            }
        };
        let to_word = |b: bool| if b { !0u64 } else { 0 };
        let (o0, o1) = gate.kind.eval64([
            to_word(read(gate.ins[0])),
            to_word(read(gate.ins[1])),
            to_word(read(gate.ins[2])),
        ]);
        (o0 & 1 == 1, o1 & 1 == 1)
    }

    /// Applies a new set of primary-input values at t=0 and simulates until
    /// quiescence, counting transitions.
    fn apply_vector(&mut self, pi_values: &[(usize, bool)]) {
        for &(net, val) in pi_values {
            if self.values[net] != val {
                self.values[net] = val;
                self.schedule_fanout(net, 0);
            }
        }
        while let Some(Reverse((t, gi))) = self.queue.pop() {
            let (o0, o1) = self.eval_gate(gi as usize);
            let gate = self.nl.gates()[gi as usize];
            for (o, (&out, val)) in gate.outs.iter().zip([o0, o1]).enumerate() {
                let _ = o;
                if !out.is_valid() {
                    continue;
                }
                if self.values[out.index()] != val {
                    self.values[out.index()] = val;
                    self.transitions[gi as usize] += 1;
                    self.schedule_fanout(out.index(), t);
                }
            }
        }
    }
}

/// Simulates one shard of the vector stream on a private [`EventSim`]:
/// one uncounted warm-up vector from the all-zeros state, then `vectors`
/// counted vectors, all drawn from the shard's own seed stream. Returns
/// the per-gate transition counts.
fn transitions_for_shard(nl: &Netlist, lib: &Library, vectors: usize, seed: u64) -> Vec<u64> {
    let mut sim = EventSim::new(nl, lib);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let pi_nets: Vec<usize> = nl
        .inputs()
        .iter()
        .flat_map(|(_, bus)| bus.iter().map(|n| n.index()))
        .collect();

    let mut draw_buf: Vec<(usize, bool)> = Vec::with_capacity(pi_nets.len());
    let draw = |rng: &mut rand::rngs::StdRng, buf: &mut Vec<(usize, bool)>| {
        buf.clear();
        buf.extend(pi_nets.iter().map(|&n| (n, rng.random::<bool>())));
    };

    // Warm-up vector: settle from the all-zero state, then reset counters.
    draw(&mut rng, &mut draw_buf);
    sim.apply_vector(&draw_buf);
    for t in &mut sim.transitions {
        *t = 0;
    }

    for _ in 0..vectors {
        draw(&mut rng, &mut draw_buf);
        sim.apply_vector(&draw_buf);
    }
    sim.transitions
}

/// Folds per-gate transition counts into the [`PowerReport`].
fn report_from_transitions(
    nl: &Netlist,
    lib: &Library,
    transitions: &[u64],
    vectors: usize,
) -> PowerReport {
    let mut total_energy_fj = 0.0f64;
    let mut total_transitions = 0u64;
    for (gi, gate) in nl.gates().iter().enumerate() {
        let e = lib.spec(gate.kind).energy_fj;
        total_energy_fj += transitions[gi] as f64 * e;
        total_transitions += transitions[gi];
    }
    let leakage_uw: f64 = nl
        .gates()
        .iter()
        .map(|g| lib.spec(g.kind).leakage_nw)
        .sum::<f64>()
        / 1000.0;

    let vectors = vectors.max(1) as f64;
    let energy_per_op_pj = total_energy_fj / 1000.0 / vectors;
    let freq_mhz = lib.operating_point().freq_mhz;
    // pJ/op × 10⁻¹² J × MHz × 10⁶ /s = e·f × 10⁻⁶ W = e·f × 10⁻³ mW
    let dynamic_power_mw = energy_per_op_pj * freq_mhz * 1e-3;

    PowerReport {
        dynamic_power_mw,
        leakage_uw,
        energy_per_op_pj,
        transitions_per_op: total_transitions as f64 / vectors,
    }
}

/// Estimates power by applying `settings.vectors` random input vectors.
///
/// The vector stream is split into fixed shards, each simulated from the
/// all-zeros state with one uncounted warm-up vector and its own RNG
/// stream derived from `settings.seed`; per-gate transition counts are
/// then summed over shards. [`estimate_with`] runs the exact same shards
/// on a thread pool, so both forms produce bit-identical reports.
/// Leakage is the sum of per-cell leakage regardless of activity.
///
/// # Example
/// ```
/// use apx_netlist::{power, NetlistBuilder};
/// use apx_cells::Library;
/// let mut b = NetlistBuilder::new("x");
/// let a = b.input_bus("a", 8);
/// let c = b.input_bus("b", 8);
/// let zero = b.tie0();
/// let (s, _) = b.ripple_adder(&a, &c, zero);
/// b.output_bus("y", &s);
/// let nl = b.finish();
/// let report = power::estimate(&nl, &Library::fdsoi28(), power::PowerSettings {
///     vectors: 200,
///     seed: 1,
/// });
/// assert!(report.dynamic_power_mw > 0.0);
/// ```
#[must_use]
pub fn estimate(nl: &Netlist, lib: &Library, settings: PowerSettings) -> PowerReport {
    estimate_with(nl, lib, settings, &Engine::single_threaded())
}

/// Sharded-parallel form of [`estimate`]: the same shards, each with the
/// same seed stream, simulated on `engine` and merged in shard order.
/// Per-gate transition counts are integers, so the merged report is
/// bit-identical to [`estimate`] for any thread count.
#[must_use]
pub fn estimate_with(
    nl: &Netlist,
    lib: &Library,
    settings: PowerSettings,
    engine: &Engine,
) -> PowerReport {
    let shards = plan_shards_sized(settings.vectors, POWER_SHARD_VECTORS);
    let partials = engine.map_indexed(shards.len(), |i| {
        let shard = shards[i];
        let seed = shard_seed(settings.seed, STREAM_POWER, shard.index as u64);
        transitions_for_shard(nl, lib, shard.len, seed)
    });
    let mut transitions = vec![0u64; nl.gates().len()];
    for partial in partials {
        for (t, p) in transitions.iter_mut().zip(partial) {
            *t += p;
        }
    }
    report_from_transitions(nl, lib, &transitions, settings.vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn rca(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &y, zero);
        b.output_bus("sum", &sum);
        b.output_bus("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn power_scales_with_width() {
        let lib = Library::fdsoi28();
        let settings = PowerSettings {
            vectors: 300,
            seed: 42,
        };
        let p8 = estimate(&rca(8), &lib, settings).dynamic_power_mw;
        let p16 = estimate(&rca(16), &lib, settings).dynamic_power_mw;
        assert!(p16 > 1.5 * p8, "16-bit {p16} should be ~2x 8-bit {p8}");
    }

    #[test]
    fn deterministic_given_seed() {
        let lib = Library::fdsoi28();
        let settings = PowerSettings {
            vectors: 100,
            seed: 9,
        };
        let a = estimate(&rca(8), &lib, settings);
        let b = estimate(&rca(8), &lib, settings);
        assert_eq!(a, b);
    }

    #[test]
    fn transitions_include_ripple_glitches() {
        // With random vectors, a ripple adder's carry chain glitches;
        // the average transitions per op must exceed the zero-delay lower
        // bound of ~0.5 per output bit.
        let lib = Library::fdsoi28();
        let report = estimate(
            &rca(16),
            &lib,
            PowerSettings {
                vectors: 500,
                seed: 3,
            },
        );
        assert!(
            report.transitions_per_op > 16.0 * 0.5,
            "got {}",
            report.transitions_per_op
        );
    }

    #[test]
    fn parallel_estimate_is_bit_identical_for_any_thread_count() {
        let lib = Library::fdsoi28();
        let nl = rca(12);
        let settings = PowerSettings {
            vectors: 1_100, // > 4 shards, with a ragged tail
            seed: 77,
        };
        let serial = estimate(&nl, &lib, settings);
        for threads in [1, 2, 8] {
            let par = estimate_with(&nl, &lib, settings, &Engine::new(threads));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn leakage_counts_every_cell() {
        let lib = Library::fdsoi28();
        let nl = rca(4);
        let report = estimate(
            &nl,
            &lib,
            PowerSettings {
                vectors: 10,
                seed: 0,
            },
        );
        let expected: f64 = nl
            .gates()
            .iter()
            .map(|g| lib.spec(g.kind).leakage_nw)
            .sum::<f64>()
            / 1000.0;
        assert!((report.leakage_uw - expected).abs() < 1e-12);
    }
}
