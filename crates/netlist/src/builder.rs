//! Incremental construction of well-formed netlists.

use crate::ir::{Gate, NetId, Netlist};
use apx_cells::CellKind;

/// Builds a [`Netlist`] gate by gate, guaranteeing the IR invariants
/// (single driver per net, topological gate order).
///
/// The arithmetic-oriented helpers ([`NetlistBuilder::full_adder`],
/// [`NetlistBuilder::ripple_adder`], [`NetlistBuilder::compress_columns`],
/// …) cover the recurring structures of the operator generators.
///
/// # Example
/// ```
/// use apx_netlist::NetlistBuilder;
/// let mut b = NetlistBuilder::new("maj3");
/// let x = b.input_bus("x", 3);
/// let (_, maj) = b.full_adder(x[0], x[1], x[2]);
/// b.output_bus("maj", &[maj]);
/// let nl = b.finish();
/// assert_eq!(nl.gates().len(), 1);
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    name: String,
    num_nets: u32,
    gates: Vec<Gate>,
    inputs: Vec<(String, Vec<NetId>)>,
    outputs: Vec<(String, Vec<NetId>)>,
    tie0: Option<NetId>,
    tie1: Option<NetId>,
}

impl NetlistBuilder {
    /// Starts a new netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            num_nets: 0,
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            tie0: None,
            tie1: None,
        }
    }

    fn fresh_net(&mut self) -> NetId {
        let id = NetId(self.num_nets);
        self.num_nets += 1;
        id
    }

    /// Declares a primary input bus of `width` bits (LSB first).
    ///
    /// # Panics
    /// Panics if a bus with the same name already exists.
    pub fn input_bus(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let name = name.into();
        assert!(
            self.inputs.iter().all(|(n, _)| *n != name),
            "duplicate input bus {name}"
        );
        let bus: Vec<NetId> = (0..width).map(|_| self.fresh_net()).collect();
        self.inputs.push((name, bus.clone()));
        bus
    }

    /// Declares a primary output bus referencing existing nets (LSB first).
    ///
    /// # Panics
    /// Panics if a bus with the same name already exists or a net is invalid.
    pub fn output_bus(&mut self, name: impl Into<String>, bits: &[NetId]) {
        let name = name.into();
        assert!(
            self.outputs.iter().all(|(n, _)| *n != name),
            "duplicate output bus {name}"
        );
        assert!(bits.iter().all(|n| n.is_valid() && n.0 < self.num_nets));
        self.outputs.push((name, bits.to_vec()));
    }

    /// Instantiates a single-output gate and returns its output net.
    ///
    /// # Panics
    /// Panics if `ins` does not match the cell's arity, the cell has two
    /// outputs, or an input net does not exist yet.
    pub fn gate1(&mut self, kind: CellKind, ins: &[NetId]) -> NetId {
        assert_eq!(kind.num_outputs(), 1, "{kind} has two outputs, use gate2");
        assert_eq!(ins.len(), kind.num_inputs(), "{kind} arity mismatch");
        assert!(ins.iter().all(|n| n.is_valid() && n.0 < self.num_nets));
        let out = self.fresh_net();
        let mut pins = [NetId::INVALID; 3];
        pins[..ins.len()].copy_from_slice(ins);
        self.gates.push(Gate {
            kind,
            ins: pins,
            outs: [out, NetId::INVALID],
        });
        out
    }

    /// Instantiates a two-output gate (`Ha`/`Fa`), returning `(out0, out1)`.
    ///
    /// # Panics
    /// Panics on arity mismatch as for [`NetlistBuilder::gate1`].
    pub fn gate2(&mut self, kind: CellKind, ins: &[NetId]) -> (NetId, NetId) {
        assert_eq!(kind.num_outputs(), 2, "{kind} has one output, use gate1");
        assert_eq!(ins.len(), kind.num_inputs(), "{kind} arity mismatch");
        assert!(ins.iter().all(|n| n.is_valid() && n.0 < self.num_nets));
        let o0 = self.fresh_net();
        let o1 = self.fresh_net();
        let mut pins = [NetId::INVALID; 3];
        pins[..ins.len()].copy_from_slice(ins);
        self.gates.push(Gate {
            kind,
            ins: pins,
            outs: [o0, o1],
        });
        (o0, o1)
    }

    /// Constant-0 net (tie cell, shared across the design).
    pub fn tie0(&mut self) -> NetId {
        if let Some(n) = self.tie0 {
            return n;
        }
        let n = self.gate1(CellKind::Tie0, &[]);
        self.tie0 = Some(n);
        n
    }

    /// Constant-1 net (tie cell, shared across the design).
    pub fn tie1(&mut self) -> NetId {
        if let Some(n) = self.tie1 {
            return n;
        }
        let n = self.gate1(CellKind::Tie1, &[]);
        self.tie1 = Some(n);
        n
    }

    /// `!a`
    pub fn not(&mut self, a: NetId) -> NetId {
        self.gate1(CellKind::Inv, &[a])
    }

    /// `a & b`
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate1(CellKind::And2, &[a, b])
    }

    /// `a | b`
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate1(CellKind::Or2, &[a, b])
    }

    /// `a ^ b`
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate1(CellKind::Xor2, &[a, b])
    }

    /// `!(a ^ b)`
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate1(CellKind::Xnor2, &[a, b])
    }

    /// `!(a & b)`
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate1(CellKind::Nand2, &[a, b])
    }

    /// `sel ? d1 : d0`
    pub fn mux(&mut self, sel: NetId, d0: NetId, d1: NetId) -> NetId {
        self.gate1(CellKind::Mux2, &[d0, d1, sel])
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NetId, b: NetId) -> (NetId, NetId) {
        self.gate2(CellKind::Ha, &[a, b])
    }

    /// Full adder: returns `(sum, cout)`.
    pub fn full_adder(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId) {
        self.gate2(CellKind::Fa, &[a, b, cin])
    }

    /// Carry-propagate cell without the sum output:
    /// `cout = (a & b) | ((a ^ b) & cin)`, built from shared
    /// propagate/generate terms. Used by speculative carry chains (ACA,
    /// ETAIV) where the sum bits of the chain are never consumed.
    ///
    /// Returns `(p, g, cout)` so callers can reuse the propagate term for
    /// the sum XOR.
    pub fn carry_cell(&mut self, a: NetId, b: NetId, cin: NetId) -> (NetId, NetId, NetId) {
        let p = self.xor(a, b);
        let g = self.and(a, b);
        let pc = self.and(p, cin);
        let cout = self.or(g, pc);
        (p, g, cout)
    }

    /// `width`-bit ripple-carry adder over two equal-width buses.
    /// Returns `(sum_bits, cout)`.
    ///
    /// # Panics
    /// Panics if the buses differ in width or are empty.
    pub fn ripple_adder(&mut self, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "operand width mismatch");
        assert!(!a.is_empty(), "zero-width adder");
        let mut carry = cin;
        let mut sum = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b) {
            let (s, c) = self.full_adder(ai, bi, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Ripple chain that adds a single bit `inc` into bus `a` (an
    /// increment-by-0/1 row built from half adders). Returns
    /// `(sum_bits, carry_out)`.
    pub fn increment_row(&mut self, a: &[NetId], inc: NetId) -> (Vec<NetId>, NetId) {
        let mut carry = inc;
        let mut sum = Vec::with_capacity(a.len());
        for &ai in a {
            let (s, c) = self.half_adder(ai, carry);
            sum.push(s);
            carry = c;
        }
        (sum, carry)
    }

    /// Reduces a column-indexed bag of partial-product bits to a single
    /// binary number using a greedy Wallace-style FA/HA compressor followed
    /// by a ripple carry-propagate stage.
    ///
    /// `columns[w]` holds the bits of weight `2^w`. Returns `width` result
    /// bits (LSB first); any carry beyond `width` is discarded (modular
    /// arithmetic, as in real fixed-width datapaths).
    pub fn compress_columns(&mut self, mut columns: Vec<Vec<NetId>>, width: usize) -> Vec<NetId> {
        columns.resize_with(width.max(columns.len()), Vec::new);
        // Phase 1: reduce every column to at most 2 bits. Bits are consumed
        // FIFO (earliest-produced first), so reduction forms a balanced
        // Wallace-style tree of logarithmic depth rather than a serial
        // chain — this is what keeps multiplier critical paths near the
        // paper's ~0.9 ns anchor.
        let mut w = 0;
        while w < columns.len() {
            let mut cursor = 0;
            while columns[w].len() - cursor > 2 {
                let a = columns[w][cursor];
                let b = columns[w][cursor + 1];
                let c = columns[w][cursor + 2];
                cursor += 3;
                let (s, cout) = self.full_adder(a, b, c);
                columns[w].push(s);
                if w + 1 < width {
                    if w + 1 >= columns.len() {
                        columns.resize_with(w + 2, Vec::new);
                    }
                    columns[w + 1].push(cout);
                }
            }
            columns[w].drain(..cursor);
            w += 1;
        }
        // Phase 2: carry-propagate the (≤2)-bit columns with a ripple chain.
        self.final_carry_propagate(columns, width)
    }

    /// Ripple carry-propagate over columns that phase 1 reduced to ≤2 bits.
    fn final_carry_propagate(&mut self, columns: Vec<Vec<NetId>>, width: usize) -> Vec<NetId> {
        let zero = self.tie0();
        let mut result = Vec::with_capacity(width);
        let mut carry = zero;
        for w in 0..width {
            let col = if w < columns.len() {
                columns[w].as_slice()
            } else {
                &[]
            };
            match col.len() {
                0 => {
                    // only the carry
                    result.push(carry);
                    carry = zero;
                }
                1 => {
                    let (s, c) = self.half_adder(col[0], carry);
                    result.push(s);
                    carry = c;
                }
                2 => {
                    let (s, c) = self.full_adder(col[0], col[1], carry);
                    result.push(s);
                    carry = c;
                }
                _ => unreachable!("phase 1 leaves at most 2 bits per column"),
            }
        }
        result
    }

    /// Array-style (carry-save row) variant of
    /// [`NetlistBuilder::compress_columns`]: at most **one** full adder per
    /// column per stage, modelling the classic ripple array multiplier
    /// structure (as in Van's AAM) instead of a balanced Wallace tree.
    /// Same function, longer critical path, more glitch activity — exactly
    /// the structural difference the paper's Table I reflects between the
    /// synthesized `MULt` and the RTL array of `AAM`.
    pub fn compress_columns_array(
        &mut self,
        mut columns: Vec<Vec<NetId>>,
        width: usize,
    ) -> Vec<NetId> {
        columns.resize_with(width.max(columns.len()), Vec::new);
        loop {
            let mut progressed = false;
            let mut carries: Vec<Vec<NetId>> = vec![Vec::new(); columns.len() + 1];
            for w in 0..columns.len() {
                if columns[w].len() >= 3 {
                    let a = columns[w].remove(0);
                    let b = columns[w].remove(0);
                    let c = columns[w].remove(0);
                    let (s, cout) = self.full_adder(a, b, c);
                    columns[w].push(s);
                    if w + 1 < width {
                        carries[w + 1].push(cout);
                    }
                    progressed = true;
                }
            }
            for (w, mut cs) in carries.into_iter().enumerate() {
                if w < columns.len() {
                    columns[w].append(&mut cs);
                }
            }
            if !progressed {
                break;
            }
        }
        // final carry-propagate stage shared with the tree variant
        self.final_carry_propagate(columns, width)
    }

    /// Number of gates added so far.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Finalizes the netlist.
    ///
    /// # Panics
    /// Panics if no output bus was declared.
    #[must_use]
    pub fn finish(self) -> Netlist {
        assert!(!self.outputs.is_empty(), "netlist without outputs");
        Netlist {
            name: self.name,
            num_nets: self.num_nets,
            gates: self.gates,
            inputs: self.inputs,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_exhaustive2;

    #[test]
    fn ripple_adder_is_exact() {
        for width in 1..=6usize {
            let mut b = NetlistBuilder::new(format!("rca{width}"));
            let a = b.input_bus("a", width);
            let y = b.input_bus("b", width);
            let zero = b.tie0();
            let (sum, cout) = b.ripple_adder(&a, &y, zero);
            let mut out = sum;
            out.push(cout);
            b.output_bus("y", &out);
            let nl = b.finish();
            let mask = (1u64 << (width + 1)) - 1;
            verify_exhaustive2(&nl, |x, y| (x + y) & mask).expect("adder must be exact");
        }
    }

    #[test]
    fn compressor_sums_arbitrary_columns() {
        // columns encode 3*1 + 2*2 + 1*4 = 3 + 4 + 4: verify against a
        // closure that recomputes the column sum from the inputs.
        let mut b = NetlistBuilder::new("columns");
        let x = b.input_bus("a", 6);
        let columns = vec![vec![x[0], x[1], x[2]], vec![x[3], x[4]], vec![x[5]]];
        let out = b.compress_columns(columns, 4);
        b.output_bus("y", &out);
        let nl = b.finish();
        crate::verify::verify_exhaustive1(&nl, |v| {
            let bit = |i: usize| (v >> i) & 1;
            (bit(0) + bit(1) + bit(2) + 2 * (bit(3) + bit(4)) + 4 * bit(5)) & 0xF
        })
        .expect("compressor must be exact");
    }

    #[test]
    fn increment_row_adds_one_bit() {
        let mut b = NetlistBuilder::new("inc");
        let a = b.input_bus("a", 4);
        let inc = b.input_bus("inc", 1);
        let (sum, cout) = b.increment_row(&a, inc[0]);
        let mut out = sum;
        out.push(cout);
        b.output_bus("y", &out);
        let nl = b.finish();
        crate::verify::verify_exhaustive1(&nl, |v| {
            let a = v & 0xF;
            let inc = (v >> 4) & 1;
            (a + inc) & 0x1F
        })
        .expect("increment row must be exact");
    }

    #[test]
    #[should_panic(expected = "duplicate input bus")]
    fn duplicate_bus_name_panics() {
        let mut b = NetlistBuilder::new("dup");
        let _ = b.input_bus("a", 1);
        let _ = b.input_bus("a", 1);
    }

    #[test]
    fn tie_cells_are_shared() {
        let mut b = NetlistBuilder::new("tie");
        let t0 = b.tie0();
        let t0b = b.tie0();
        assert_eq!(t0, t0b);
        let x = b.input_bus("a", 1);
        let y = b.or(x[0], t0);
        b.output_bus("y", &[y]);
        assert_eq!(b.finish().stats().cell_histogram[&CellKind::Tie0], 1);
    }
}
