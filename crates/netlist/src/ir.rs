//! Netlist intermediate representation.

use apx_cells::CellKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a net (a wire) inside one [`Netlist`].
///
/// Nets are dense indices `0..netlist.num_nets()`. The sentinel
/// [`NetId::INVALID`] marks unused gate pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Sentinel for unused gate pins.
    pub const INVALID: NetId = NetId(u32::MAX);

    /// Dense index of this net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this id refers to a real net.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != NetId::INVALID
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One instantiated standard cell.
///
/// Unused input/output pins hold [`NetId::INVALID`]. The number of valid
/// pins always matches [`CellKind::num_inputs`] / [`CellKind::num_outputs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Cell kind instantiated by this gate.
    pub kind: CellKind,
    /// Input nets (LSB-pin first; see [`CellKind`] pin conventions).
    pub ins: [NetId; 3],
    /// Output nets; `outs[1]` is used only by `Ha`/`Fa`.
    pub outs: [NetId; 2],
}

impl Gate {
    /// Iterator over the valid input nets.
    pub fn inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.ins.iter().copied().filter(|n| n.is_valid())
    }

    /// Iterator over the valid output nets.
    pub fn outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.outs.iter().copied().filter(|n| n.is_valid())
    }
}

/// A combinational gate-level netlist.
///
/// Invariants (maintained by [`crate::NetlistBuilder`]):
/// * gates are stored in topological order — every gate's inputs are either
///   primary inputs or outputs of earlier gates;
/// * every net has exactly one driver (a primary input or one gate output);
/// * primary output buses may reference any net.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) num_nets: u32,
    pub(crate) gates: Vec<Gate>,
    pub(crate) inputs: Vec<(String, Vec<NetId>)>,
    pub(crate) outputs: Vec<(String, Vec<NetId>)>,
}

/// Summary counters for a netlist (see [`Netlist::stats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Number of gate instances.
    pub num_gates: usize,
    /// Number of nets (wires), including primary inputs.
    pub num_nets: usize,
    /// Number of primary input bits.
    pub num_input_bits: usize,
    /// Number of primary output bits.
    pub num_output_bits: usize,
    /// Instance count per cell kind.
    pub cell_histogram: BTreeMap<CellKind, usize>,
}

impl Netlist {
    /// Human-readable name of the design.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.num_nets as usize
    }

    /// The gates in topological order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Named primary input buses, LSB first within each bus.
    #[must_use]
    pub fn inputs(&self) -> &[(String, Vec<NetId>)] {
        &self.inputs
    }

    /// Named primary output buses, LSB first within each bus.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Vec<NetId>)] {
        &self.outputs
    }

    /// Looks up an input bus by name.
    #[must_use]
    pub fn input_bus(&self, name: &str) -> Option<&[NetId]> {
        self.inputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, bus)| bus.as_slice())
    }

    /// Looks up an output bus by name.
    #[must_use]
    pub fn output_bus(&self, name: &str) -> Option<&[NetId]> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, bus)| bus.as_slice())
    }

    /// Summary statistics: gate/net counts and per-cell histogram.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut cell_histogram = BTreeMap::new();
        for gate in &self.gates {
            *cell_histogram.entry(gate.kind).or_insert(0) += 1;
        }
        NetlistStats {
            num_gates: self.gates.len(),
            num_nets: self.num_nets(),
            num_input_bits: self.inputs.iter().map(|(_, b)| b.len()).sum(),
            num_output_bits: self.outputs.iter().map(|(_, b)| b.len()).sum(),
            cell_histogram,
        }
    }

    /// Removes gates whose outputs do not (transitively) reach a primary
    /// output. Returns the number of gates removed.
    ///
    /// Operator generators occasionally produce speculative logic whose
    /// result is discarded (as real synthesis would prune it); calling this
    /// keeps area/power accounting honest.
    pub fn prune_dead_gates(&mut self) -> usize {
        let mut live = vec![false; self.num_nets()];
        for (_, bus) in &self.outputs {
            for net in bus {
                live[net.index()] = true;
            }
        }
        // Walk gates backwards: a gate is live if any output net is live.
        let mut keep = vec![false; self.gates.len()];
        for (gi, gate) in self.gates.iter().enumerate().rev() {
            if gate.outputs().any(|o| live[o.index()]) {
                keep[gi] = true;
                for i in gate.inputs() {
                    live[i.index()] = true;
                }
            }
        }
        let before = self.gates.len();
        let mut gi = 0;
        self.gates.retain(|_| {
            let k = keep[gi];
            gi += 1;
            k
        });
        before - self.gates.len()
    }

    /// Renders the netlist in Graphviz DOT format (for debugging small
    /// operators).
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR;");
        for (name, bus) in &self.inputs {
            for (i, net) in bus.iter().enumerate() {
                let _ = writeln!(s, "  {net} [shape=triangle,label=\"{name}[{i}]\"];");
            }
        }
        for (gi, gate) in self.gates.iter().enumerate() {
            let _ = writeln!(s, "  g{gi} [shape=box,label=\"{}\"];", gate.kind);
            for input in gate.inputs() {
                let _ = writeln!(s, "  {input} -> g{gi};");
            }
            for output in gate.outputs() {
                let _ = writeln!(s, "  g{gi} -> {output};");
            }
        }
        for (name, bus) in &self.outputs {
            for (i, net) in bus.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "  out_{name}_{i} [shape=invtriangle,label=\"{name}[{i}]\"];"
                );
                let _ = writeln!(s, "  {net} -> out_{name}_{i};");
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input_bus("a", 2);
        let x = b.gate1(CellKind::Xor2, &[a[0], a[1]]);
        let dead = b.gate1(CellKind::And2, &[a[0], a[1]]);
        let _ = dead;
        b.output_bus("y", &[x]);
        b.finish()
    }

    #[test]
    fn stats_count_gates_and_bits() {
        let nl = tiny();
        let stats = nl.stats();
        assert_eq!(stats.num_gates, 2);
        assert_eq!(stats.num_input_bits, 2);
        assert_eq!(stats.num_output_bits, 1);
        assert_eq!(stats.cell_histogram[&CellKind::Xor2], 1);
    }

    #[test]
    fn prune_removes_only_dead_logic() {
        let mut nl = tiny();
        assert_eq!(nl.prune_dead_gates(), 1);
        assert_eq!(nl.gates().len(), 1);
        assert_eq!(nl.gates()[0].kind, CellKind::Xor2);
        // pruning again is a no-op
        assert_eq!(nl.prune_dead_gates(), 0);
    }

    #[test]
    fn dot_export_mentions_every_gate() {
        let nl = tiny();
        let dot = nl.to_dot();
        assert!(dot.contains("XOR2"));
        assert!(dot.contains("digraph"));
    }

    #[test]
    fn bus_lookup_by_name() {
        let nl = tiny();
        assert_eq!(nl.input_bus("a").unwrap().len(), 2);
        assert_eq!(nl.output_bus("y").unwrap().len(), 1);
        assert!(nl.input_bus("nope").is_none());
    }
}
