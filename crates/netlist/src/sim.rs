//! Zero-delay, 64-way bit-parallel logic simulation.
//!
//! Each net carries a 64-bit word: lane `l` of every net belongs to test
//! vector `l`, so one sweep over the gate list evaluates 64 input vectors
//! at once. This is the fast path used for functional verification and for
//! the high-sample-count error characterization (the paper runs >10⁷
//! random inputs through the C models; we get the same throughput via lane
//! parallelism).

use crate::ir::{NetId, Netlist};

/// Packs up to 64 operand values into per-bit lane words.
///
/// `words[bit]` has lane `l` set iff bit `bit` of `values[l]` is set.
///
/// # Example
/// ```
/// let words = apx_netlist::pack_operand(2, &[0b01, 0b10, 0b11]);
/// assert_eq!(words[0], 0b101); // bit0 of vectors 0 and 2
/// assert_eq!(words[1], 0b110); // bit1 of vectors 1 and 2
/// ```
///
/// # Panics
/// Panics if more than 64 values are supplied.
#[must_use]
pub fn pack_operand(width: usize, values: &[u64]) -> Vec<u64> {
    assert!(values.len() <= 64, "at most 64 lanes");
    let mut words = vec![0u64; width];
    for (lane, &v) in values.iter().enumerate() {
        for (bit, word) in words.iter_mut().enumerate() {
            *word |= ((v >> bit) & 1) << lane;
        }
    }
    words
}

/// Inverse of [`pack_operand`]: converts per-bit lane words back into
/// `lanes` output values.
#[must_use]
pub fn unpack_outputs(words: &[u64], lanes: usize) -> Vec<u64> {
    assert!(lanes <= 64, "at most 64 lanes");
    let mut values = vec![0u64; lanes];
    for (bit, &word) in words.iter().enumerate() {
        for (lane, value) in values.iter_mut().enumerate() {
            *value |= ((word >> lane) & 1) << bit;
        }
    }
    values
}

/// 64-way bit-parallel zero-delay simulator over one [`Netlist`].
///
/// # Example
/// ```
/// use apx_netlist::{NetlistBuilder, Sim64};
/// let mut b = NetlistBuilder::new("and");
/// let a = b.input_bus("a", 1);
/// let c = b.input_bus("b", 1);
/// let y = b.and(a[0], c[0]);
/// b.output_bus("y", &[y]);
/// let nl = b.finish();
///
/// let mut sim = Sim64::new(&nl);
/// sim.set_bus_lanes("a", &[0, 1, 0, 1]);
/// sim.set_bus_lanes("b", &[0, 0, 1, 1]);
/// sim.run();
/// assert_eq!(sim.read_bus_lanes("y", 4), vec![0, 0, 0, 1]);
/// ```
#[derive(Debug)]
pub struct Sim64<'a> {
    nl: &'a Netlist,
    values: Vec<u64>,
}

impl<'a> Sim64<'a> {
    /// Creates a simulator with all nets at 0.
    #[must_use]
    pub fn new(nl: &'a Netlist) -> Self {
        Sim64 {
            nl,
            values: vec![0; nl.num_nets()],
        }
    }

    /// Sets the raw 64-lane word of a single net.
    pub fn set_net(&mut self, net: NetId, word: u64) {
        self.values[net.index()] = word;
    }

    /// Raw 64-lane word of a net (valid after [`Sim64::run`]).
    #[must_use]
    pub fn net(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// Loads up to 64 operand values into the named input bus.
    ///
    /// # Panics
    /// Panics if the bus does not exist.
    pub fn set_bus_lanes(&mut self, bus: &str, values: &[u64]) {
        let nets: Vec<NetId> = self
            .nl
            .input_bus(bus)
            .unwrap_or_else(|| panic!("no input bus {bus}"))
            .to_vec();
        let words = pack_operand(nets.len(), values);
        for (net, word) in nets.iter().zip(words) {
            self.set_net(*net, word);
        }
    }

    /// Evaluates all gates in topological order.
    pub fn run(&mut self) {
        for gate in self.nl.gates() {
            let read = |slot: NetId, values: &[u64]| {
                if slot.is_valid() {
                    values[slot.index()]
                } else {
                    0
                }
            };
            let ins = [
                read(gate.ins[0], &self.values),
                read(gate.ins[1], &self.values),
                read(gate.ins[2], &self.values),
            ];
            let (o0, o1) = gate.kind.eval64(ins);
            if gate.outs[0].is_valid() {
                self.values[gate.outs[0].index()] = o0;
            }
            if gate.outs[1].is_valid() {
                self.values[gate.outs[1].index()] = o1;
            }
        }
    }

    /// Reads `lanes` values back from the named output bus
    /// (valid after [`Sim64::run`]).
    ///
    /// # Panics
    /// Panics if the bus does not exist.
    #[must_use]
    pub fn read_bus_lanes(&self, bus: &str, lanes: usize) -> Vec<u64> {
        let nets = self
            .nl
            .output_bus(bus)
            .unwrap_or_else(|| panic!("no output bus {bus}"));
        let words: Vec<u64> = nets.iter().map(|n| self.net(*n)).collect();
        unpack_outputs(&words, lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn pack_unpack_roundtrip() {
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) & 0xFFFF).collect();
        let words = pack_operand(16, &values);
        assert_eq!(unpack_outputs(&words, 64), values);
    }

    #[test]
    fn single_lane_matches_scalar_logic() {
        let mut b = NetlistBuilder::new("fa1");
        let a = b.input_bus("a", 1);
        let c = b.input_bus("b", 1);
        let d = b.input_bus("cin", 1);
        let (s, co) = b.full_adder(a[0], c[0], d[0]);
        b.output_bus("sum", &[s]);
        b.output_bus("cout", &[co]);
        let nl = b.finish();
        let mut sim = Sim64::new(&nl);
        for bits in 0u64..8 {
            sim.set_bus_lanes("a", &[bits & 1]);
            sim.set_bus_lanes("b", &[(bits >> 1) & 1]);
            sim.set_bus_lanes("cin", &[(bits >> 2) & 1]);
            sim.run();
            let total = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            assert_eq!(sim.read_bus_lanes("sum", 1)[0], total & 1);
            assert_eq!(sim.read_bus_lanes("cout", 1)[0], total >> 1);
        }
    }
}
