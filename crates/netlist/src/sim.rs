//! Zero-delay, 64-way bit-parallel logic simulation.
//!
//! Each net carries a 64-bit word: lane `l` of every net belongs to test
//! vector `l`, so one sweep over the gate list evaluates 64 input vectors
//! at once. This is the fast path used for functional verification and for
//! the high-sample-count error characterization (the paper runs >10⁷
//! random inputs through the C models; we get the same throughput via lane
//! parallelism).

use crate::ir::{NetId, Netlist};

/// Packs up to 64 operand values into per-bit lane words.
///
/// `words[bit]` has lane `l` set iff bit `bit` of `values[l]` is set.
///
/// # Example
/// ```
/// let words = apx_netlist::pack_operand(2, &[0b01, 0b10, 0b11]);
/// assert_eq!(words[0], 0b101); // bit0 of vectors 0 and 2
/// assert_eq!(words[1], 0b110); // bit1 of vectors 1 and 2
/// ```
///
/// # Panics
/// Panics if more than 64 values are supplied.
#[must_use]
pub fn pack_operand(width: usize, values: &[u64]) -> Vec<u64> {
    let mut words = Vec::new();
    pack_operand_into(width, values, &mut words);
    words
}

/// Buffer-reusing form of [`pack_operand`]: clears and fills `words`
/// without allocating when its capacity already suffices. This is the
/// variant the characterization hot loops use, where a fresh `Vec` per
/// 64-lane batch would dominate the simulator's own work.
///
/// # Panics
/// Panics if more than 64 values are supplied.
pub fn pack_operand_into(width: usize, values: &[u64], words: &mut Vec<u64>) {
    assert!(values.len() <= 64, "at most 64 lanes");
    words.clear();
    words.resize(width, 0);
    for (lane, &v) in values.iter().enumerate() {
        for (bit, word) in words.iter_mut().enumerate() {
            *word |= ((v >> bit) & 1) << lane;
        }
    }
}

/// Inverse of [`pack_operand`]: converts per-bit lane words back into
/// `lanes` output values.
#[must_use]
pub fn unpack_outputs(words: &[u64], lanes: usize) -> Vec<u64> {
    let mut values = Vec::new();
    unpack_outputs_into(words, lanes, &mut values);
    values
}

/// Buffer-reusing form of [`unpack_outputs`] (see [`pack_operand_into`]).
///
/// # Panics
/// Panics if more than 64 lanes are requested.
pub fn unpack_outputs_into(words: &[u64], lanes: usize, values: &mut Vec<u64>) {
    assert!(lanes <= 64, "at most 64 lanes");
    values.clear();
    values.resize(lanes, 0);
    for (bit, &word) in words.iter().enumerate() {
        for (lane, value) in values.iter_mut().enumerate() {
            *value |= ((word >> lane) & 1) << bit;
        }
    }
}

/// 64-way bit-parallel zero-delay simulator over one [`Netlist`].
///
/// The simulator owns its net-value storage and an internal pack scratch
/// buffer, so one instance can be reused across any number of batches
/// without allocating — reuse it in loops rather than constructing a new
/// one per batch.
///
/// # Example
/// ```
/// use apx_netlist::{NetlistBuilder, Sim64};
/// let mut b = NetlistBuilder::new("and");
/// let a = b.input_bus("a", 1);
/// let c = b.input_bus("b", 1);
/// let y = b.and(a[0], c[0]);
/// b.output_bus("y", &[y]);
/// let nl = b.finish();
///
/// let mut sim = Sim64::new(&nl);
/// sim.set_bus_lanes("a", &[0, 1, 0, 1]);
/// sim.set_bus_lanes("b", &[0, 0, 1, 1]);
/// sim.run();
/// assert_eq!(sim.read_bus_lanes("y", 4), vec![0, 0, 0, 1]);
/// ```
#[derive(Debug)]
pub struct Sim64<'a> {
    nl: &'a Netlist,
    values: Vec<u64>,
    pack_buf: Vec<u64>,
}

impl<'a> Sim64<'a> {
    /// Creates a simulator with all nets at 0.
    #[must_use]
    pub fn new(nl: &'a Netlist) -> Self {
        Sim64 {
            nl,
            values: vec![0; nl.num_nets()],
            pack_buf: Vec::new(),
        }
    }

    /// Sets the raw 64-lane word of a single net.
    pub fn set_net(&mut self, net: NetId, word: u64) {
        self.values[net.index()] = word;
    }

    /// Raw 64-lane word of a net (valid after [`Sim64::run`]).
    #[must_use]
    pub fn net(&self, net: NetId) -> u64 {
        self.values[net.index()]
    }

    /// Loads up to 64 operand values into the named input bus.
    ///
    /// # Panics
    /// Panics if the bus does not exist.
    pub fn set_bus_lanes(&mut self, bus: &str, values: &[u64]) {
        let nets = self
            .nl
            .input_bus(bus)
            .unwrap_or_else(|| panic!("no input bus {bus}"));
        self.set_bus_lanes_at(nets, values);
    }

    /// Pre-resolved form of [`Sim64::set_bus_lanes`]: takes the bus's net
    /// slice (from [`Netlist::input_bus`]) directly. Hot loops that sweep
    /// thousands of 64-lane windows over the same netlist resolve each
    /// bus name once up front instead of once per window.
    ///
    /// # Panics
    /// Panics if more than 64 values are supplied.
    pub fn set_bus_lanes_at(&mut self, nets: &[NetId], values: &[u64]) {
        let mut words = std::mem::take(&mut self.pack_buf);
        pack_operand_into(nets.len(), values, &mut words);
        for (net, word) in nets.iter().zip(&words) {
            self.values[net.index()] = *word;
        }
        self.pack_buf = words;
    }

    /// Evaluates all gates in topological order.
    pub fn run(&mut self) {
        for gate in self.nl.gates() {
            let read = |slot: NetId, values: &[u64]| {
                if slot.is_valid() {
                    values[slot.index()]
                } else {
                    0
                }
            };
            let ins = [
                read(gate.ins[0], &self.values),
                read(gate.ins[1], &self.values),
                read(gate.ins[2], &self.values),
            ];
            let (o0, o1) = gate.kind.eval64(ins);
            if gate.outs[0].is_valid() {
                self.values[gate.outs[0].index()] = o0;
            }
            if gate.outs[1].is_valid() {
                self.values[gate.outs[1].index()] = o1;
            }
        }
    }

    /// Reads `lanes` values back from the named output bus
    /// (valid after [`Sim64::run`]).
    ///
    /// # Panics
    /// Panics if the bus does not exist.
    #[must_use]
    pub fn read_bus_lanes(&self, bus: &str, lanes: usize) -> Vec<u64> {
        let mut values = Vec::new();
        self.read_bus_lanes_into(bus, lanes, &mut values);
        values
    }

    /// Buffer-reusing form of [`Sim64::read_bus_lanes`]: unpacks the
    /// output bus straight from the net words into `values`, with no
    /// intermediate word buffer.
    ///
    /// # Panics
    /// Panics if the bus does not exist or more than 64 lanes are
    /// requested.
    pub fn read_bus_lanes_into(&self, bus: &str, lanes: usize, values: &mut Vec<u64>) {
        let nets = self
            .nl
            .output_bus(bus)
            .unwrap_or_else(|| panic!("no output bus {bus}"));
        self.read_bus_lanes_at_into(nets, lanes, values);
    }

    /// Pre-resolved form of [`Sim64::read_bus_lanes_into`]: takes the
    /// bus's net slice (from [`Netlist::output_bus`]) directly (see
    /// [`Sim64::set_bus_lanes_at`]).
    ///
    /// # Panics
    /// Panics if more than 64 lanes are requested.
    pub fn read_bus_lanes_at_into(&self, nets: &[NetId], lanes: usize, values: &mut Vec<u64>) {
        assert!(lanes <= 64, "at most 64 lanes");
        values.clear();
        values.resize(lanes, 0);
        for (bit, net) in nets.iter().enumerate() {
            let word = self.net(*net);
            for (lane, value) in values.iter_mut().enumerate() {
                *value |= ((word >> lane) & 1) << bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn pack_unpack_roundtrip() {
        let values: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) & 0xFFFF).collect();
        let words = pack_operand(16, &values);
        assert_eq!(unpack_outputs(&words, 64), values);
    }

    #[test]
    fn into_variants_reuse_and_match_the_allocating_forms() {
        let values: Vec<u64> = (0..40).map(|i| (i * 0x9E37) & 0xFF).collect();
        let mut words = vec![0xFFFF_FFFF; 3]; // stale content must be cleared
        pack_operand_into(8, &values, &mut words);
        assert_eq!(words, pack_operand(8, &values));
        let mut back = vec![7u64; 99];
        unpack_outputs_into(&words, 40, &mut back);
        assert_eq!(back, unpack_outputs(&words, 40));
        assert_eq!(back, values);
    }

    #[test]
    fn single_lane_matches_scalar_logic() {
        let mut b = NetlistBuilder::new("fa1");
        let a = b.input_bus("a", 1);
        let c = b.input_bus("b", 1);
        let d = b.input_bus("cin", 1);
        let (s, co) = b.full_adder(a[0], c[0], d[0]);
        b.output_bus("sum", &[s]);
        b.output_bus("cout", &[co]);
        let nl = b.finish();
        let mut sim = Sim64::new(&nl);
        for bits in 0u64..8 {
            sim.set_bus_lanes("a", &[bits & 1]);
            sim.set_bus_lanes("b", &[(bits >> 1) & 1]);
            sim.set_bus_lanes("cin", &[(bits >> 2) & 1]);
            sim.run();
            let total = (bits & 1) + ((bits >> 1) & 1) + ((bits >> 2) & 1);
            assert_eq!(sim.read_bus_lanes("sum", 1)[0], total & 1);
            assert_eq!(sim.read_bus_lanes("cout", 1)[0], total >> 1);
        }
    }

    #[test]
    fn simulator_reuse_across_batches_is_clean() {
        // a reused simulator must not leak lane state between batches
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", 4);
        let c = b.input_bus("b", 4);
        let zero = b.tie0();
        let (sum, _) = b.ripple_adder(&a, &c, zero);
        b.output_bus("y", &sum);
        let nl = b.finish();
        let mut sim = Sim64::new(&nl);
        let mut out = Vec::new();
        // full 64-lane batch, then a short 3-lane batch
        let full: Vec<u64> = (0..64u64).map(|i| i % 16).collect();
        sim.set_bus_lanes("a", &full);
        sim.set_bus_lanes("b", &full);
        sim.run();
        sim.set_bus_lanes("a", &[1, 2, 3]);
        sim.set_bus_lanes("b", &[4, 5, 6]);
        sim.run();
        sim.read_bus_lanes_into("y", 3, &mut out);
        assert_eq!(out, vec![5, 7, 9]);
    }
}
