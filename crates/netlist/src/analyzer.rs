//! One-call hardware characterization: area + timing + power.

use crate::ir::Netlist;
use crate::power::{self, PowerSettings};
use crate::sta;
use apx_cells::Library;
use apx_engine::Engine;
use serde::{Deserialize, Serialize};

/// Settings shared by the analysis steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisSettings {
    /// Random vectors for power estimation (paper: 10⁵; default here is
    /// smaller because the event-driven simulation converges quickly and
    /// repro binaries can raise it).
    pub power_vectors: usize,
    /// RNG seed for the power vectors.
    pub seed: u64,
}

impl Default for AnalysisSettings {
    fn default() -> Self {
        AnalysisSettings {
            power_vectors: 2_000,
            seed: 0xA9CE55,
        }
    }
}

/// Hardware characterization of one operator netlist — the per-operator
/// output of the "RTL Synthesis / Gate-Level Sim. / Power Estimation"
/// column of the APXPERF flow (Fig. 2 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwReport {
    /// Design name (from the netlist).
    pub name: String,
    /// Total cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Total power (dynamic + leakage) in mW at the operating point.
    pub power_mw: f64,
    /// Leakage component in µW.
    pub leakage_uw: f64,
    /// Mean switching energy per operation in pJ.
    pub energy_per_op_pj: f64,
    /// Power-delay product in pJ (`power_mw × delay_ns`), the paper's
    /// energy figure of merit.
    pub pdp_pj: f64,
    /// Gate instance count.
    pub num_gates: usize,
    /// Net count.
    pub num_nets: usize,
    /// Mean gate-output transitions per operation (glitches included).
    pub transitions_per_op: f64,
}

/// Couples a [`Library`] with [`AnalysisSettings`] and characterizes
/// netlists.
///
/// # Example
/// ```
/// use apx_netlist::{HwAnalyzer, NetlistBuilder};
/// use apx_cells::Library;
/// let mut b = NetlistBuilder::new("inc2");
/// let a = b.input_bus("a", 2);
/// let one = b.tie1();
/// let (s, c) = b.increment_row(&a, one);
/// let mut out = s;
/// out.push(c);
/// b.output_bus("y", &out);
/// let lib = Library::fdsoi28();
/// let report = HwAnalyzer::new(&lib).analyze(&b.finish());
/// assert_eq!(report.num_gates, 3); // tie + 2 half adders
/// ```
#[derive(Debug, Clone)]
pub struct HwAnalyzer<'a> {
    lib: &'a Library,
    settings: AnalysisSettings,
    engine: Engine,
}

impl<'a> HwAnalyzer<'a> {
    /// Creates an analyzer with default settings, running serially.
    #[must_use]
    pub fn new(lib: &'a Library) -> Self {
        HwAnalyzer {
            lib,
            settings: AnalysisSettings::default(),
            engine: Engine::single_threaded(),
        }
    }

    /// Replaces the analysis settings.
    #[must_use]
    pub fn with_settings(mut self, settings: AnalysisSettings) -> Self {
        self.settings = settings;
        self
    }

    /// Runs the power-vector shards on `engine`. Reports are bit-identical
    /// for any worker count (see [`power::estimate_with`]); only the
    /// wall-clock changes.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Characterizes a netlist: area roll-up, STA, event-driven power.
    #[must_use]
    pub fn analyze(&self, nl: &Netlist) -> HwReport {
        let area_um2: f64 = nl
            .gates()
            .iter()
            .map(|g| self.lib.spec(g.kind).area_um2)
            .sum();
        let timing = sta::analyze(nl, self.lib);
        let pwr = power::estimate_with(
            nl,
            self.lib,
            PowerSettings {
                vectors: self.settings.power_vectors,
                seed: self.settings.seed,
            },
            &self.engine,
        );
        let stats = nl.stats();
        HwReport {
            name: nl.name().to_owned(),
            area_um2,
            delay_ns: timing.critical_path_ns,
            power_mw: pwr.total_power_mw(),
            leakage_uw: pwr.leakage_uw,
            energy_per_op_pj: pwr.energy_per_op_pj,
            pdp_pj: pwr.total_power_mw() * timing.critical_path_ns,
            num_gates: stats.num_gates,
            num_nets: stats.num_nets,
            transitions_per_op: pwr.transitions_per_op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn rca(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new(format!("rca{width}"));
        let a = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &y, zero);
        b.output_bus("sum", &sum);
        b.output_bus("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn pdp_is_power_times_delay() {
        let lib = Library::fdsoi28();
        let report = HwAnalyzer::new(&lib)
            .with_settings(AnalysisSettings {
                power_vectors: 200,
                seed: 1,
            })
            .analyze(&rca(8));
        assert!((report.pdp_pj - report.power_mw * report.delay_ns).abs() < 1e-12);
    }

    #[test]
    fn paper_anchor_16bit_adder() {
        // Fig. 3: 16-bit fixed-point adders sit around 0.01-0.05 mW,
        // 0.3-0.5 ns, with PDP in the 10⁻²-pJ decade.
        let lib = Library::fdsoi28();
        let report = HwAnalyzer::new(&lib).analyze(&rca(16));
        assert!(
            (0.005..0.10).contains(&report.power_mw),
            "power {}",
            report.power_mw
        );
        assert!(
            (0.25..0.7).contains(&report.delay_ns),
            "delay {}",
            report.delay_ns
        );
        assert!(
            (0.002..0.05).contains(&report.pdp_pj),
            "pdp {}",
            report.pdp_pj
        );
    }

    #[test]
    fn area_is_sum_of_cells() {
        let lib = Library::fdsoi28();
        let nl = rca(4);
        let report = HwAnalyzer::new(&lib).analyze(&nl);
        let expected: f64 = nl.gates().iter().map(|g| lib.spec(g.kind).area_um2).sum();
        assert!((report.area_um2 - expected).abs() < 1e-9);
    }
}
