//! Load-aware static timing analysis.
//!
//! Computes per-net arrival times over the topologically ordered gate list
//! using the cell library's per-arc intrinsic delays plus a linear
//! load-dependent term (fanout input capacitance + wire capacitance).
//! This plays the role of the timing report from RTL synthesis in the
//! original APXPERF flow.

use crate::ir::{NetId, Netlist};
use apx_cells::Library;

/// Result of a static timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst arrival time over all primary outputs, in ns.
    pub critical_path_ns: f64,
    /// Arrival time per net, in ns (primary inputs arrive at 0).
    pub arrival_ns: Vec<f64>,
}

/// Capacitive load per net in fF: sum of fanout pin capacitances plus wire
/// capacitance per fanout endpoint. Primary outputs count as one endpoint.
#[must_use]
pub fn net_loads_ff(nl: &Netlist, lib: &Library) -> Vec<f64> {
    let wire = lib.wire_cap_ff_per_fanout();
    let mut load = vec![0.0f64; nl.num_nets()];
    for gate in nl.gates() {
        let cap = lib.spec(gate.kind).input_cap_ff;
        for input in gate.inputs() {
            load[input.index()] += cap + wire;
        }
    }
    for (_, bus) in nl.outputs() {
        for net in bus {
            load[net.index()] += wire;
        }
    }
    load
}

/// Runs static timing analysis over `nl` with library `lib`.
///
/// # Example
/// ```
/// use apx_netlist::{sta, NetlistBuilder};
/// use apx_cells::Library;
/// let mut b = NetlistBuilder::new("chain");
/// let a = b.input_bus("a", 2);
/// let x = b.xor(a[0], a[1]);
/// let y = b.xor(x, a[0]);
/// b.output_bus("y", &[y]);
/// let nl = b.finish();
/// let t = sta::analyze(&nl, &Library::fdsoi28());
/// assert!(t.critical_path_ns > 0.0);
/// ```
#[must_use]
pub fn analyze(nl: &Netlist, lib: &Library) -> TimingReport {
    let loads = net_loads_ff(nl, lib);
    let mut arrival = vec![0.0f64; nl.num_nets()];
    for gate in nl.gates() {
        let spec = lib.spec(gate.kind);
        for (o, &out) in gate.outs.iter().enumerate() {
            if !out.is_valid() {
                continue;
            }
            let load_term = spec.drive_ps_per_ff * loads[out.index()];
            let mut at = 0.0f64;
            if gate.kind.num_inputs() == 0 {
                // tie cells arrive immediately
            } else {
                for (i, &input) in gate.ins.iter().enumerate() {
                    if !input.is_valid() {
                        continue;
                    }
                    let cand = arrival[input.index()] + (spec.delay_ps(i, o) + load_term) / 1000.0;
                    at = at.max(cand);
                }
            }
            arrival[out.index()] = at;
        }
    }
    let mut critical = 0.0f64;
    for (_, bus) in nl.outputs() {
        for net in bus {
            critical = critical.max(arrival[net.index()]);
        }
    }
    TimingReport {
        critical_path_ns: critical,
        arrival_ns: arrival,
    }
}

/// Per-output-pin propagation delay of each gate in ps (worst input arc
/// plus load term), used by the event-driven power simulator.
#[must_use]
pub(crate) fn gate_output_delays_ps(nl: &Netlist, lib: &Library) -> Vec<[u64; 2]> {
    let loads = net_loads_ff(nl, lib);
    nl.gates()
        .iter()
        .map(|gate| {
            let spec = lib.spec(gate.kind);
            let mut delays = [0u64; 2];
            for (o, &out) in gate.outs.iter().enumerate() {
                if !out.is_valid() {
                    continue;
                }
                let load_term = spec.drive_ps_per_ff * loads[out.index()];
                let worst = (0..gate.kind.num_inputs())
                    .map(|i| spec.delay_ps(i, o))
                    .fold(0.0f64, f64::max);
                delays[o] = (worst + load_term).round().max(1.0) as u64;
            }
            delays
        })
        .collect()
}

/// Per-gate propagation delays quantized onto the event simulator's tick
/// grid (see [`quantize_delays`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayTicks {
    /// Per-gate, per-output-pin propagation delay in ticks. Unused pins
    /// hold 0; every used pin is ≥ 1 tick.
    pub ticks: Vec<[u64; 2]>,
    /// Physical duration of one tick in ps — the GCD of every used
    /// per-pin delay, so the quantization is exact: `ticks × tick_ps`
    /// reproduces the ps delays bit for bit and relative event order is
    /// untouched.
    pub tick_ps: u64,
    /// Largest per-pin delay in ticks. This bounds the event simulator's
    /// timing-wheel horizon: every pending event lies within `max_ticks`
    /// of the current simulation time.
    pub max_ticks: u64,
}

/// Quantizes the per-output-pin propagation delays of every gate onto
/// the coarsest exact tick grid.
///
/// The event-driven power simulator keys its timing wheel on these
/// ticks. Dividing all ps delays by their GCD is a *lossless*
/// requantization — event timestamps scale uniformly, so coincidence
/// (which gates evaluate in the same wheel slot) and ordering are
/// identical to simulating in raw ps — while minimizing the wheel
/// horizon the simulator has to sweep.
///
/// # Example
/// ```
/// use apx_netlist::{sta, NetlistBuilder};
/// use apx_cells::Library;
/// let mut b = NetlistBuilder::new("x");
/// let a = b.input_bus("a", 2);
/// let y = b.xor(a[0], a[1]);
/// b.output_bus("y", &[y]);
/// let q = sta::quantize_delays(&b.finish(), &Library::fdsoi28());
/// assert!(q.tick_ps >= 1 && q.max_ticks >= 1);
/// ```
#[must_use]
pub fn quantize_delays(nl: &Netlist, lib: &Library) -> DelayTicks {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    let ps = gate_output_delays_ps(nl, lib);
    let mut tick_ps = 0u64;
    for (gate, delays) in nl.gates().iter().zip(&ps) {
        for (o, &out) in gate.outs.iter().enumerate() {
            if out.is_valid() {
                tick_ps = gcd(tick_ps, delays[o]);
            }
        }
    }
    let tick_ps = tick_ps.max(1);
    let mut max_ticks = 0u64;
    let ticks = nl
        .gates()
        .iter()
        .zip(&ps)
        .map(|(gate, delays)| {
            let mut t = [0u64; 2];
            for (o, &out) in gate.outs.iter().enumerate() {
                if out.is_valid() {
                    t[o] = delays[o] / tick_ps;
                    max_ticks = max_ticks.max(t[o]);
                }
            }
            t
        })
        .collect();
    DelayTicks {
        ticks,
        tick_ps,
        max_ticks,
    }
}

/// Helper used by tests and benches: the arrival time of a specific net.
#[must_use]
pub fn arrival_of(report: &TimingReport, net: NetId) -> f64 {
    report.arrival_ns[net.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn rca(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("rca");
        let a = b.input_bus("a", width);
        let y = b.input_bus("b", width);
        let zero = b.tie0();
        let (sum, cout) = b.ripple_adder(&a, &y, zero);
        b.output_bus("sum", &sum);
        b.output_bus("cout", &[cout]);
        b.finish()
    }

    #[test]
    fn ripple_delay_grows_linearly_with_width() {
        let lib = Library::fdsoi28();
        let d4 = analyze(&rca(4), &lib).critical_path_ns;
        let d8 = analyze(&rca(8), &lib).critical_path_ns;
        let d16 = analyze(&rca(16), &lib).critical_path_ns;
        assert!(d8 > d4 && d16 > d8);
        // per-stage increments should be roughly constant (ripple chain)
        let inc1 = d8 - d4;
        let inc2 = d16 - d8;
        assert!((inc2 - 2.0 * inc1).abs() < 0.35 * inc2.max(inc1));
    }

    #[test]
    fn sixteen_bit_adder_lands_near_the_paper_anchor() {
        // Paper Fig. 3b: 16-bit fixed-point adders around 0.35-0.5 ns.
        let lib = Library::fdsoi28();
        let d = analyze(&rca(16), &lib).critical_path_ns;
        assert!((0.25..0.7).contains(&d), "16-bit RCA delay {d} ns");
    }

    #[test]
    fn arrival_is_monotone_along_the_carry_chain() {
        let lib = Library::fdsoi28();
        let nl = rca(8);
        let report = analyze(&nl, &lib);
        let sums = nl.output_bus("sum").unwrap();
        for w in sums.windows(2) {
            assert!(arrival_of(&report, w[1]) >= arrival_of(&report, w[0]));
        }
    }

    #[test]
    fn quantized_delays_reproduce_the_ps_delays_exactly() {
        let lib = Library::fdsoi28();
        let nl = rca(8);
        let ps = gate_output_delays_ps(&nl, &lib);
        let q = quantize_delays(&nl, &lib);
        assert_eq!(q.ticks.len(), ps.len());
        let mut seen_max = 0;
        for (gate, (ticks, ps)) in nl.gates().iter().zip(q.ticks.iter().zip(&ps)) {
            for (o, &out) in gate.outs.iter().enumerate() {
                if out.is_valid() {
                    assert_eq!(ticks[o] * q.tick_ps, ps[o], "lossless requantization");
                    assert!(ticks[o] >= 1);
                    seen_max = seen_max.max(ticks[o]);
                } else {
                    assert_eq!(ticks[o], 0);
                }
            }
        }
        assert_eq!(q.max_ticks, seen_max);
    }

    #[test]
    fn loads_include_wire_and_pin_caps() {
        let lib = Library::fdsoi28();
        let mut b = NetlistBuilder::new("fanout");
        let a = b.input_bus("a", 1);
        let x1 = b.not(a[0]);
        let x2 = b.not(a[0]);
        b.output_bus("y", &[x1, x2]);
        let nl = b.finish();
        let loads = net_loads_ff(&nl, &lib);
        let pin = lib.spec(apx_cells::CellKind::Inv).input_cap_ff;
        let wire = lib.wire_cap_ff_per_fanout();
        assert!((loads[0] - 2.0 * (pin + wire)).abs() < 1e-9);
    }
}
