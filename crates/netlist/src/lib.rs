//! Gate-level netlist substrate for APXPERF-RS.
//!
//! This crate replaces the proprietary EDA flow of the original APXPERF
//! framework (Design Compiler → Modelsim → PrimeTime) with an open,
//! self-contained pipeline over the same conceptual steps:
//!
//! 1. **Structure** — [`NetlistBuilder`] constructs a gate-level [`Netlist`]
//!    from [`apx_cells::CellKind`] instances (the "RTL synthesis" output;
//!    our operator generators emit the structural netlists directly).
//! 2. **Verification** — [`verify`] checks a netlist bit-for-bit against a
//!    functional closure, exhaustively for narrow operators and on random
//!    vectors for wide ones (the paper's "Verification" box that
//!    cross-checks the VHDL and C models).
//! 3. **Timing & area** — [`sta`] performs a load-aware static timing
//!    analysis; area is rolled up from the cell library.
//! 4. **Power** — [`power`] runs an event-driven (transport-delay)
//!    gate-level simulation on random vectors and counts every transition,
//!    glitches included, converting activity into dynamic power at the
//!    library's operating point (the "Gate-Level Sim. + Power Estimation"
//!    boxes).
//!
//! [`HwAnalyzer`] bundles steps 3–4 into one call producing a [`HwReport`].
//!
//! # Example
//!
//! ```
//! use apx_netlist::{HwAnalyzer, NetlistBuilder};
//! use apx_cells::Library;
//!
//! // A 4-bit ripple-carry adder.
//! let mut b = NetlistBuilder::new("rca4");
//! let a = b.input_bus("a", 4);
//! let y = b.input_bus("b", 4);
//! let mut carry = b.tie0();
//! let mut sum = Vec::new();
//! for i in 0..4 {
//!     let (s, c) = b.full_adder(a[i], y[i], carry);
//!     sum.push(s);
//!     carry = c;
//! }
//! b.output_bus("sum", &sum);
//! b.output_bus("cout", &[carry]);
//! let nl = b.finish();
//!
//! // Verify against integer addition, then characterize.
//! apx_netlist::verify::verify_exhaustive2(&nl, |a, b| (a + b) & 0x1F).unwrap();
//! let lib = Library::fdsoi28();
//! let report = HwAnalyzer::new(&lib).analyze(&nl);
//! assert!(report.area_um2 > 10.0 && report.delay_ns > 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod builder;
mod ir;
pub mod power;
mod sim;
pub mod sta;
pub mod verify;

pub use analyzer::{AnalysisSettings, HwAnalyzer, HwReport};
pub use builder::NetlistBuilder;
pub use ir::{Gate, NetId, Netlist, NetlistStats};
pub use sim::{pack_operand, pack_operand_into, unpack_outputs, unpack_outputs_into, Sim64};
