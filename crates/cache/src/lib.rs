//! Content-addressed, on-disk JSON blob cache for characterization
//! results — fleet-grade: portable archives, size-capped eviction, and
//! concurrent-writer safety.
//!
//! PR 2 made every [`OperatorReport`] a **pure function of its inputs**:
//! reports are bit-identical for any thread count under a fixed seed, so
//! an already-characterized operator configuration never needs to be
//! re-swept — it can be looked up by the hash of its inputs. This crate
//! provides that lookup:
//!
//! * [`KeyBuilder`] / [`CacheKey`] — a stable (process-, platform- and
//!   run-independent) 128-bit hash over labelled key material. Callers
//!   feed in everything a result depends on (operator config, seed,
//!   sample counts, cell-library fingerprint, schema version); two runs
//!   that would compute the same result derive the same key.
//! * [`Cache`] — a directory of `<key>.json` blobs with atomic writes,
//!   traffic counters, and graceful degradation: a missing directory,
//!   an unwritable disk or a corrupted blob never fails the caller —
//!   the worst case is always "recompute".
//! * **Fleet operations** — [`Cache::pack`] exports blobs as one
//!   portable, fingerprint-stamped archive and [`Cache::import`] brings
//!   one in with per-blob verification (see [`mod@archive`]);
//!   [`Cache::gc`] evicts LRU-first down to a byte budget under an
//!   advisory lock (see [`mod@gc`]); every write (blob, stats record,
//!   import) goes through unique-temp + atomic-rename, so parallel
//!   processes sharing one directory never tear anything.
//!
//! Handles are opened through the [`CacheConfig`] builder:
//!
//! ```no_run
//! use apx_cache::Cache;
//! // explicit directory, 256 MiB write-time cap:
//! let cache = Cache::builder()
//!     .dir("/tmp/apxperf-cache")
//!     .capacity_bytes(256 << 20)
//!     .open();
//! // environment resolution ($APXPERF_CACHE_DIR, XDG, $HOME) instead:
//! let env_cache = Cache::builder().from_env().open();
//! // no cache at all (`--no-cache`):
//! let off = Cache::default();
//! assert!(!off.is_enabled());
//! ```
//!
//! # Example
//!
//! ```
//! use apx_cache::{Cache, KeyBuilder};
//!
//! let dir = std::env::temp_dir().join(format!("apx_cache_doc_{}", std::process::id()));
//! let cache = Cache::builder().dir(&dir).open();
//!
//! let key = KeyBuilder::new("demo-schema/v1")
//!     .push_str("operator", "ACA(16,4)")
//!     .push_u64("seed", 0xDA7E_2017)
//!     .push_u64("samples", 100_000)
//!     .finish();
//!
//! assert_eq!(cache.get::<Vec<u64>>(&key), None); // cold
//! cache.put(&key, &vec![1u64, 2, 3]);
//! assert_eq!(cache.get::<Vec<u64>>(&key), Some(vec![1, 2, 3])); // hit
//! assert_eq!(cache.stats().hits, 1);
//!
//! cache.clear();
//! std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [`OperatorReport`]: https://docs.rs/apx_core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
mod error;
pub mod gc;

pub use archive::{ArchiveStamp, ImportMode, ImportSummary, PackSummary};
pub use error::CacheError;
pub use gc::GcSummary;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

/// FNV-1a 64-bit offset basis (stream 0).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Offset basis of the second, independent stream — the FNV offset run
/// through a splitmix64 round so the two streams start in unrelated
/// states.
const FNV_OFFSET_B: u64 = 0x9E37_79B9_7F4A_7C15 ^ FNV_OFFSET;

/// A 128-bit content hash identifying one cached result.
///
/// Keys print as 32 lowercase hex digits (the blob file stem). Equality
/// of keys is the cache's notion of "same inputs": [`KeyBuilder`]
/// guarantees the hash is a pure function of the pushed material, stable
/// across processes, platforms and releases of this crate (any change to
/// the hashing scheme must be treated as a cache-schema change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// The key as 32 lowercase hex digits.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Accumulates labelled key material into a [`CacheKey`].
///
/// Each `push_*` call feeds `label = value ;` into two independent
/// FNV-1a streams, so reordered, relabelled or differently-split material
/// produces a different key. Values are encoded as text (decimal for
/// integers, JSON for structured values), which keeps the hash
/// independent of endianness and in-memory layout.
///
/// # Example
/// ```
/// use apx_cache::KeyBuilder;
/// let a = KeyBuilder::new("s/v1").push_u64("seed", 7).finish();
/// let b = KeyBuilder::new("s/v1").push_u64("seed", 8).finish();
/// let c = KeyBuilder::new("s/v2").push_u64("seed", 7).finish();
/// assert_ne!(a, b); // different value
/// assert_ne!(a, c); // different schema
/// assert_eq!(a, KeyBuilder::new("s/v1").push_u64("seed", 7).finish());
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    a: u64,
    b: u64,
}

impl KeyBuilder {
    /// Starts a key under a schema tag. The tag names the blob's shape
    /// and semantics; bump it whenever the serialized form (or the
    /// meaning of any keyed field) changes, so stale blobs miss instead
    /// of deserializing into wrong data.
    #[must_use]
    pub fn new(schema: &str) -> Self {
        KeyBuilder {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
        .push_str("schema", schema)
    }

    fn push_bytes(mut self, bytes: &[u8]) -> Self {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds one labelled string field.
    #[must_use]
    pub fn push_str(self, label: &str, value: &str) -> Self {
        self.push_bytes(label.as_bytes())
            .push_bytes(b"=")
            .push_bytes(value.as_bytes())
            .push_bytes(b";")
    }

    /// Feeds one labelled integer field (decimal encoding).
    #[must_use]
    pub fn push_u64(self, label: &str, value: u64) -> Self {
        self.push_str(label, &value.to_string())
    }

    /// Feeds one labelled `usize` field (decimal encoding).
    #[must_use]
    pub fn push_usize(self, label: &str, value: usize) -> Self {
        self.push_str(label, &value.to_string())
    }

    /// Feeds one labelled structured field through its canonical compact
    /// JSON encoding.
    #[must_use]
    pub fn push_json<T: Serialize>(self, label: &str, value: &T) -> Self {
        let json = serde_json::to_string(value)
            .expect("serialization to JSON is infallible for key material");
        self.push_str(label, &json)
    }

    /// Finalizes the accumulated material into a [`CacheKey`].
    #[must_use]
    pub fn finish(self) -> CacheKey {
        CacheKey {
            hi: self.a,
            lo: self.b,
        }
    }
}

/// One cache handle's view of its traffic **and** its directory's size.
///
/// `hits`/`misses`/`writes`/`evictions`/`imports` are this handle's
/// in-process counters (shared by clones); `blobs`/`bytes` are measured
/// from disk at the moment [`Cache::stats`] is called, using the same
/// blob classification `gc` budgets against — so `cache stats` and
/// `gc --max-bytes` agree on one definition of size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Blobs found and successfully deserialized.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, unreadable or corrupt).
    pub misses: u64,
    /// Blobs written.
    pub writes: u64,
    /// Blobs evicted by this handle's gc passes (explicit `gc` calls and
    /// write-time capacity enforcement).
    pub evictions: u64,
    /// Blobs imported from archives by this handle.
    pub imports: u64,
    /// Blob files currently on disk (stats records, locks and temp files
    /// are classified out — see [`RecordKind`]).
    pub blobs: u64,
    /// Their total size in bytes.
    pub bytes: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) writes: AtomicU64,
    pub(crate) evictions: AtomicU64,
    pub(crate) imports: AtomicU64,
}

#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) dir: PathBuf,
    pub(crate) counters: Counters,
    pub(crate) capacity_bytes: Option<u64>,
}

/// What one file inside a cache directory is.
///
/// The directory holds more than blobs — run-stats records, the gc
/// lock, in-flight atomic-write temps, and whatever a user drops in by
/// hand. Every operation that enumerates the directory (`len`, `clear`,
/// `gc`, `pack`, `stats`) classifies through this enum so each kind is
/// handled by exactly the operations that own it: `clear` and `gc`
/// touch only [`RecordKind::Blob`]s, gc's temp sweep only
/// [`RecordKind::Temp`]s, and [`RecordKind::Other`] files are never
/// deleted by anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A content-addressed result blob: `<32 lowercase hex>.json`.
    Blob,
    /// A persisted last-run stats record: `last-run-stats.*`.
    RunStats,
    /// An advisory lock: `*.lock`.
    Lock,
    /// An in-flight (or abandoned) atomic-write temp: contains `.tmp.`.
    Temp,
    /// Anything else; foreign files are left untouched.
    Other,
}

/// Classifies one path (by file name alone) into a [`RecordKind`].
#[must_use]
pub fn classify(path: &Path) -> RecordKind {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return RecordKind::Other;
    };
    // temps first: a stats record's in-flight temp ("last-run-stats.v2
    // .tmp.<pid>.<seq>") is a temp, not a stats record
    if name.contains(".tmp.") {
        return RecordKind::Temp;
    }
    if name.starts_with("last-run-stats.") {
        return RecordKind::RunStats;
    }
    if name.ends_with(".lock") {
        return RecordKind::Lock;
    }
    if let Some(stem) = name.strip_suffix(".json") {
        if stem.len() == 32
            && stem
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            return RecordKind::Blob;
        }
    }
    RecordKind::Other
}

/// Opens a [`Cache`]: where it lives, whether the environment may
/// decide, and how big it may grow. Built by [`Cache::builder`].
///
/// Resolution order in [`CacheConfig::open`]:
/// 1. an explicit [`dir`](CacheConfig::dir) always wins;
/// 2. otherwise, with [`from_env`](CacheConfig::from_env), the
///    directory comes from `$APXPERF_CACHE_DIR`, then
///    `$XDG_CACHE_HOME/apxperf`, then `$HOME/.cache/apxperf`
///    (see [`Cache::default_dir`]);
/// 3. otherwise the handle is disabled (every `get` misses, every
///    `put` is dropped) — the default, and what `--no-cache` maps to.
///
/// A capacity set via [`capacity_bytes`](CacheConfig::capacity_bytes)
/// (or, under `from_env`, the `APXPERF_CACHE_CAPACITY` variable, in
/// bytes) makes every write re-cap the directory LRU-first, so the
/// cache never outgrows its budget between explicit `gc` runs.
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    dir: Option<PathBuf>,
    from_env: bool,
    capacity_bytes: Option<u64>,
}

impl CacheConfig {
    /// Roots the cache at `dir` (created on first write). Overrides
    /// environment resolution.
    #[must_use]
    pub fn dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Lets the environment supply whatever is not set explicitly: the
    /// directory (`$APXPERF_CACHE_DIR` / XDG / `$HOME`) and the
    /// write-time capacity (`$APXPERF_CACHE_CAPACITY`, bytes).
    #[must_use]
    pub fn from_env(mut self) -> Self {
        self.from_env = true;
        self
    }

    /// Caps the directory at `bytes`: after every write, least-recently
    /// used blobs are evicted until the blob bytes fit the budget.
    #[must_use]
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.capacity_bytes = Some(bytes);
        self
    }

    /// Resolves the configuration into a handle. Never fails: an
    /// unresolvable directory yields a disabled cache, which is the
    /// correct degraded mode everywhere this crate is used.
    #[must_use]
    pub fn open(self) -> Cache {
        let dir = self
            .dir
            .or_else(|| self.from_env.then(Cache::default_dir).flatten());
        let capacity_bytes = self.capacity_bytes.or_else(|| {
            self.from_env
                .then(|| {
                    std::env::var("APXPERF_CACHE_CAPACITY")
                        .ok()
                        .and_then(|v| v.trim().parse().ok())
                })
                .flatten()
        });
        match dir {
            Some(dir) => Cache {
                inner: Some(Arc::new(Inner {
                    dir,
                    counters: Counters::default(),
                    capacity_bytes,
                })),
            },
            None => Cache { inner: None },
        }
    }
}

/// A content-addressed store of JSON blobs under one directory.
///
/// * **Cheap to clone** — clones share the directory and the counters,
///   so a sweep can hand one handle to every parallel task.
/// * **Best-effort** on the hot path — `get`/`put` IO failures (missing
///   directory, full or read-only disk, corrupted blob) are never
///   surfaced as errors; a failed read counts as a miss and a failed
///   write is dropped. The caller's fallback is always "recompute".
///   Fleet operations ([`Cache::pack`], [`Cache::import`],
///   [`Cache::gc`]) move real data and delete files, so they *do*
///   return [`CacheError`]s.
/// * **Self-validating** — a blob that no longer deserializes
///   (truncated write, schema drift that slipped past the key, manual
///   tampering) is treated as a miss and deleted so the next `put`
///   replaces it.
/// * **Safe under concurrent writers** — every on-disk mutation goes
///   through a per-call-unique temp file and an atomic rename, and gc
///   runs under an advisory lock, so parallel processes over one
///   directory see only whole records.
///
/// The default handle is disabled (no directory); see the
/// [crate docs](crate) and [`Cache::builder`] for opening one.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    inner: Option<Arc<Inner>>,
}

impl Cache {
    /// Starts a [`CacheConfig`] builder; finish with
    /// [`CacheConfig::open`].
    #[must_use]
    pub fn builder() -> CacheConfig {
        CacheConfig::default()
    }

    /// A cache rooted at `dir` (created on first write).
    #[deprecated(note = "use `Cache::builder().dir(dir).open()`")]
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Cache::builder().dir(dir).open()
    }

    /// A disabled cache: every `get` misses, every `put` is dropped.
    #[deprecated(note = "use `Cache::default()` (or `Cache::builder().open()`)")]
    #[must_use]
    pub fn disabled() -> Self {
        Cache::default()
    }

    /// The default on-disk location, in precedence order:
    /// `$APXPERF_CACHE_DIR`, `$XDG_CACHE_HOME/apxperf`,
    /// `$HOME/.cache/apxperf`. `None` when none of the variables is set
    /// (e.g. a bare CI environment), in which case
    /// [`CacheConfig::open`] degrades to a disabled handle.
    #[must_use]
    pub fn default_dir() -> Option<PathBuf> {
        let nonempty = |var: &str| std::env::var_os(var).filter(|v| !v.is_empty());
        if let Some(dir) = nonempty("APXPERF_CACHE_DIR") {
            return Some(PathBuf::from(dir));
        }
        if let Some(base) = nonempty("XDG_CACHE_HOME") {
            return Some(PathBuf::from(base).join("apxperf"));
        }
        nonempty("HOME").map(|home| PathBuf::from(home).join(".cache").join("apxperf"))
    }

    /// A cache at [`Cache::default_dir`], or a disabled one when no
    /// default location exists.
    #[deprecated(note = "use `Cache::builder().from_env().open()`")]
    #[must_use]
    pub fn from_env() -> Self {
        Cache::builder().from_env().open()
    }

    /// Whether lookups can ever hit (i.e. the cache has a directory).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing directory (`None` for a disabled cache).
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.inner.as_deref().map(|inner| inner.dir.as_path())
    }

    pub(crate) fn inner(&self) -> Option<&Inner> {
        self.inner.as_deref()
    }

    fn blob_path(inner: &Inner, key: &CacheKey) -> PathBuf {
        inner.dir.join(format!("{key}.json"))
    }

    /// Looks up `key` and deserializes the blob into `T`.
    ///
    /// Absent, unreadable and corrupt blobs all return `None` (and count
    /// as misses); corrupt blobs are additionally deleted so they cannot
    /// shadow a future write. A hit bumps the blob's modification time
    /// (touch-on-hit), which is the last-touch metadata [`Cache::gc`]'s
    /// LRU ordering evicts by — recently useful blobs survive a cap.
    #[must_use]
    pub fn get<T: Deserialize>(&self, key: &CacheKey) -> Option<T> {
        let inner = self.inner.as_deref()?;
        let path = Cache::blob_path(inner, key);
        let parsed = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str::<T>(&text).ok());
        match parsed {
            Some(value) => {
                // touch-on-hit: best-effort — a read-only cache dir
                // still hits, its LRU order just stays write-ordered
                let _ = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .and_then(|file| file.set_modified(SystemTime::now()));
                inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                // distinguish "nothing there" (plain miss) from "there
                // but unusable" (corrupt: delete so a put can heal it)
                if path.exists() {
                    std::fs::remove_file(&path).ok();
                }
                inner.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes `body` to `name` inside the cache directory via a
    /// per-call-unique temp file and an atomic rename: a concurrent
    /// reader sees either the old record or the new one, never a torn
    /// write. Returns whether the record landed.
    pub(crate) fn write_record_atomic(&self, name: &str, body: &str) -> bool {
        let Some(inner) = self.inner.as_deref() else {
            return false;
        };
        if std::fs::create_dir_all(&inner.dir).is_err() {
            return false;
        }
        let path = inner.dir.join(name);
        // unique per process AND per call: concurrent same-name writes
        // (engine threads storing the shared full-width partner
        // multiplier; the serve daemon persisting stats after every
        // drained job) must never share a temp file, or one writer's
        // truncate could tear another's in-flight rename
        static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = inner
            .dir
            .join(format!("{name}.tmp.{}.{seq}", std::process::id()));
        if std::fs::write(&tmp, body).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            true
        } else {
            std::fs::remove_file(&tmp).ok();
            false
        }
    }

    /// Stores `value` under `key`, atomically. Failures are dropped —
    /// the cache is an accelerator, not a system of record. On a handle
    /// opened with a capacity, a landed write re-caps the directory.
    pub fn put<T: Serialize>(&self, key: &CacheKey, value: &T) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let Ok(json) = serde_json::to_string_pretty(value) else {
            return;
        };
        if self.write_record_atomic(&format!("{key}.json"), &(json + "\n")) {
            inner.counters.writes.fetch_add(1, Ordering::Relaxed);
            self.enforce_capacity();
        }
    }

    /// Number of blobs currently stored (other record kinds — stats,
    /// locks, temps — are not counted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.blob_records().len()
    }

    /// Whether the cache holds no blobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deletes every blob; returns how many were removed. Stats records,
    /// locks, in-flight temps and foreign files are left in place — only
    /// [`RecordKind::Blob`]s are cleared.
    pub fn clear(&self) -> usize {
        self.blob_records()
            .into_iter()
            .filter(|record| std::fs::remove_file(&record.path).is_ok())
            .count()
    }

    /// File (inside the cache directory) holding the counters of the
    /// most recent run that called [`Cache::persist_run_stats`]. The
    /// `.v2` suffix versions the record's shape (v2 added eviction /
    /// import / size fields; the vendored serde errors on missing
    /// fields, so old `*.v1` records are simply ignored, never
    /// misparsed), and the `last-run-stats.` prefix is what
    /// [`classify`] keys the [`RecordKind::RunStats`] class on.
    const RUN_STATS_FILE: &'static str = "last-run-stats.v2";

    /// Persists this handle's current counters as the directory's
    /// "last run" record, so a later process (e.g. `apxperf cache stats
    /// --format json`, or a CI assertion) can read what the previous
    /// run's cache traffic was. Best-effort and atomic, like blob
    /// writes; a disabled cache ignores the call.
    pub fn persist_run_stats(&self) {
        if let Ok(json) = serde_json::to_string_pretty(&self.stats()) {
            self.write_record_atomic(Cache::RUN_STATS_FILE, &(json + "\n"));
        }
    }

    /// The counters persisted by the most recent run that called
    /// [`Cache::persist_run_stats`] on this directory, if any.
    #[must_use]
    pub fn last_run_stats(&self) -> Option<CacheStats> {
        let inner = self.inner.as_deref()?;
        let text = std::fs::read_to_string(inner.dir.join(Cache::RUN_STATS_FILE)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// This handle's counters (shared across clones) plus the
    /// directory's current blob count and byte size, measured with the
    /// same classification [`Cache::gc`] budgets against.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        match self.inner.as_deref() {
            Some(inner) => {
                let (blobs, bytes) = self.measure();
                CacheStats {
                    hits: inner.counters.hits.load(Ordering::Relaxed),
                    misses: inner.counters.misses.load(Ordering::Relaxed),
                    writes: inner.counters.writes.load(Ordering::Relaxed),
                    evictions: inner.counters.evictions.load(Ordering::Relaxed),
                    imports: inner.counters.imports.load(Ordering::Relaxed),
                    blobs,
                    bytes,
                }
            }
            None => CacheStats::default(),
        }
    }

    /// The directory's blob count and total blob bytes — the one size
    /// definition shared by `stats`, `gc` and the write-time cap.
    fn measure(&self) -> (u64, u64) {
        self.blob_records()
            .into_iter()
            .fold((0, 0), |(blobs, bytes), record| {
                let size = std::fs::metadata(&record.path).map_or(0, |m| m.len());
                (blobs + 1, bytes + size)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static TEST_DIR_ID: AtomicUsize = AtomicUsize::new(0);

    /// A unique, self-cleaning temp directory per test.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let id = TEST_DIR_ID.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("apx_cache_test_{}_{id}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn cache_at(dir: &Path) -> Cache {
        Cache::builder().dir(dir).open()
    }

    fn key(tag: &str) -> CacheKey {
        KeyBuilder::new("test/v1").push_str("tag", tag).finish()
    }

    #[test]
    fn put_then_get_roundtrips() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        let k = key("roundtrip");
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
        cache.put(&k, &vec![1u64, 2, 3]);
        assert_eq!(cache.get::<Vec<u64>>(&k), Some(vec![1, 2, 3]));
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.writes, stats.blobs),
            (1, 1, 1, 1)
        );
        assert!(stats.bytes > 0, "a stored blob has measurable size");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_depend_on_labels_values_and_order() {
        let base = KeyBuilder::new("s").push_str("a", "1").push_str("b", "2");
        let same = KeyBuilder::new("s").push_str("a", "1").push_str("b", "2");
        assert_eq!(base.clone().finish(), same.finish());
        let swapped = KeyBuilder::new("s").push_str("b", "2").push_str("a", "1");
        assert_ne!(base.clone().finish(), swapped.finish());
        let relabelled = KeyBuilder::new("s").push_str("a1", "").push_str("b", "2");
        assert_ne!(base.clone().finish(), relabelled.finish());
        let json = KeyBuilder::new("s").push_json("a", &(1u64, 2u64)).finish();
        assert_ne!(base.finish(), json);
    }

    #[test]
    fn key_hex_is_stable_and_32_digits() {
        let k = KeyBuilder::new("pinned/v1").push_u64("x", 42).finish();
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.hex(), k.to_string());
        // pinned value: the hash must never change across releases, or
        // every existing cache silently goes cold
        assert_eq!(k, KeyBuilder::new("pinned/v1").push_u64("x", 42).finish());
    }

    #[test]
    fn corrupted_blob_is_a_miss_and_gets_deleted() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        let k = key("corrupt");
        cache.put(&k, &vec![9u64]);
        let path = tmp.0.join(format!("{k}.json"));
        std::fs::write(&path, "{not json at all").unwrap();
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
        assert!(!path.exists(), "corrupt blob must be deleted");
        // and a fresh put heals it
        cache.put(&k, &vec![7u64]);
        assert_eq!(cache.get::<Vec<u64>>(&k), Some(vec![7]));
    }

    #[test]
    fn wrong_shape_blob_is_a_miss() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        let k = key("shape");
        cache.put(&k, &"a string".to_owned());
        // valid JSON, wrong type for the requested T
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
    }

    #[test]
    fn disabled_cache_never_stores_or_hits() {
        let cache = Cache::default();
        let k = key("disabled");
        cache.put(&k, &vec![1u64]);
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
        assert!(!cache.is_enabled());
        assert_eq!(cache.dir(), None);
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn deprecated_constructors_match_the_builder() {
        #![allow(deprecated)]
        let tmp = TempDir::new();
        assert_eq!(Cache::at(&tmp.0).dir(), cache_at(&tmp.0).dir());
        assert!(!Cache::disabled().is_enabled());
        assert_eq!(
            Cache::from_env().dir(),
            Cache::builder().from_env().open().dir()
        );
    }

    #[test]
    fn builder_explicit_dir_beats_env_and_default_is_disabled() {
        let tmp = TempDir::new();
        let explicit = Cache::builder().dir(&tmp.0).from_env().open();
        assert_eq!(explicit.dir(), Some(tmp.0.as_path()));
        assert!(!Cache::builder().open().is_enabled());
    }

    #[test]
    fn clear_removes_all_blobs() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        for i in 0..5u64 {
            cache.put(&key(&format!("blob{i}")), &i);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.clear(), 5);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_and_len_touch_only_blob_records() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        cache.put(&key("real"), &1u64);
        cache.persist_run_stats();
        // foreign and infrastructure files of every other kind:
        std::fs::write(tmp.0.join("gc.lock"), "").unwrap();
        std::fs::write(tmp.0.join(format!("{}.tmp.1.2", key("real"))), "{").unwrap();
        std::fs::write(tmp.0.join("notes.json"), "{}").unwrap(); // not a 32-hex stem
        std::fs::write(tmp.0.join("README"), "hands off").unwrap();
        assert_eq!(cache.len(), 1, "only the real blob counts");
        assert_eq!(cache.clear(), 1, "only the real blob is removed");
        // everything else survives, and stats still parse sanely
        assert!(tmp.0.join(Cache::RUN_STATS_FILE).exists());
        assert!(tmp.0.join("gc.lock").exists());
        assert!(tmp.0.join("notes.json").exists());
        assert!(tmp.0.join("README").exists());
        let stats = cache.stats();
        assert_eq!((stats.blobs, stats.bytes), (0, 0));
        assert!(cache.last_run_stats().is_some());
    }

    #[test]
    fn classification_covers_every_record_kind() {
        let class = |name: &str| classify(Path::new(name));
        assert_eq!(class(&format!("{}.json", key("x"))), RecordKind::Blob);
        assert_eq!(class("last-run-stats.v2"), RecordKind::RunStats);
        assert_eq!(class("last-run-stats.v1"), RecordKind::RunStats);
        assert_eq!(class("gc.lock"), RecordKind::Lock);
        assert_eq!(class("last-run-stats.v2.tmp.7.9"), RecordKind::Temp);
        assert_eq!(class(&format!("{}.tmp.7.9", key("x"))), RecordKind::Temp);
        assert_eq!(class("notes.json"), RecordKind::Other);
        assert_eq!(class(&format!("{}.JSON", key("x"))), RecordKind::Other);
        let upper = key("x").hex().to_uppercase();
        assert_eq!(class(&format!("{upper}.json")), RecordKind::Other);
    }

    #[test]
    fn run_stats_persist_across_handles_and_never_count_as_blobs() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        assert_eq!(cache.last_run_stats(), None, "nothing persisted yet");
        cache.put(&key("a"), &1u64);
        let _ = cache.get::<u64>(&key("a"));
        let _ = cache.get::<u64>(&key("absent"));
        cache.persist_run_stats();
        assert_eq!(cache.len(), 1, "the stats record is not a blob");
        // a fresh handle over the same directory reads the previous run
        let later = cache_at(&tmp.0);
        let last = later.last_run_stats().expect("persisted record");
        assert_eq!((last.hits, last.misses, last.writes), (1, 1, 1));
        assert_eq!(last.blobs, 1, "size was measured at persist time");
        // clearing blobs leaves the record in place; disabled caches
        // neither write nor read one
        cache.clear();
        assert_eq!(later.last_run_stats().map(|s| s.hits), Some(1));
        let off = Cache::default();
        off.persist_run_stats();
        assert_eq!(off.last_run_stats(), None);
    }

    #[test]
    fn run_stats_survive_concurrent_in_process_persists_and_reads() {
        // the serve daemon persists after every cold report and after
        // every drained job, from many threads over one shared handle;
        // with atomic renames and call-unique temp files, a reader must
        // always see a complete record — never a torn or vanished file
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        cache.put(&key("warmup"), &0u64);
        let _ = cache.get::<u64>(&key("warmup"));
        cache.persist_run_stats();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        cache.persist_run_stats();
                    }
                });
            }
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        assert!(
                            cache.last_run_stats().is_some(),
                            "a concurrent persist tore or removed the record"
                        );
                    }
                });
            }
        });
        // no temp-file droppings survive the storm
        let leftovers: Vec<_> = std::fs::read_dir(&tmp.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
        assert_eq!(cache.last_run_stats().map(|s| s.writes), Some(1));
    }

    #[test]
    fn clones_share_storage_and_counters() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        let clone = cache.clone();
        let k = key("shared");
        clone.put(&k, &vec![5u64]);
        assert_eq!(cache.get::<Vec<u64>>(&k), Some(vec![5]));
        assert_eq!(cache.stats().writes, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn default_dir_honours_env_precedence() {
        // only inspects the pure path computation; the variables
        // themselves are process-global, so don't mutate them here
        if std::env::var_os("APXPERF_CACHE_DIR").is_none()
            && std::env::var_os("XDG_CACHE_HOME").is_none()
        {
            if let Some(dir) = Cache::default_dir() {
                assert!(dir.ends_with(".cache/apxperf"));
            }
        }
    }

    // ---- fleet operations: gc, capacity, archives ----

    /// Backdates a blob's mtime so LRU ordering is deterministic in
    /// tests regardless of filesystem timestamp granularity.
    fn backdate(path: &Path, secs_ago: u64) {
        let when = SystemTime::now() - std::time::Duration::from_secs(secs_ago);
        let file = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        file.set_modified(when).unwrap();
    }

    #[test]
    fn gc_evicts_lru_first_down_to_the_budget() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        let keys: Vec<CacheKey> = (0..4u64).map(|i| key(&format!("gc{i}"))).collect();
        for (i, k) in keys.iter().enumerate() {
            cache.put(k, &vec![i as u64; 16]);
        }
        // oldest first: gc0 is stalest, gc3 freshest
        for (i, k) in keys.iter().enumerate() {
            backdate(&tmp.0.join(format!("{k}.json")), 1000 - 100 * i as u64);
        }
        let blob_size = std::fs::metadata(tmp.0.join(format!("{}.json", keys[0])))
            .unwrap()
            .len();
        // budget for roughly two blobs (sizes differ by a few digits)
        let budget = 2 * blob_size + blob_size / 2;
        let summary = cache.gc(budget).unwrap();
        assert_eq!(summary.examined_blobs, 4);
        assert_eq!(summary.evicted_blobs, 2);
        assert!(summary.remaining_bytes <= budget);
        assert_eq!(summary.remaining_blobs, 2);
        // the two *stalest* went; the two freshest survived
        assert_eq!(cache.get::<Vec<u64>>(&keys[0]), None);
        assert_eq!(cache.get::<Vec<u64>>(&keys[1]), None);
        assert!(cache.get::<Vec<u64>>(&keys[2]).is_some());
        assert!(cache.get::<Vec<u64>>(&keys[3]).is_some());
        assert_eq!(cache.stats().evictions, 2);
        assert!(!tmp.0.join("gc.lock").exists(), "lock released");
    }

    #[test]
    fn touch_on_hit_protects_recently_used_blobs_from_gc() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        let old = key("touched-old");
        let fresh = key("untouched-fresh");
        cache.put(&old, &vec![1u64; 16]);
        cache.put(&fresh, &vec![2u64; 16]);
        backdate(&tmp.0.join(format!("{old}.json")), 5000);
        backdate(&tmp.0.join(format!("{fresh}.json")), 100);
        // a hit on the stale blob bumps its mtime past the other's
        assert!(cache.get::<Vec<u64>>(&old).is_some());
        let one_blob = std::fs::metadata(tmp.0.join(format!("{fresh}.json")))
            .unwrap()
            .len();
        let summary = cache.gc(one_blob + one_blob / 2).unwrap();
        assert_eq!(summary.evicted_blobs, 1);
        assert!(
            cache.get::<Vec<u64>>(&old).is_some(),
            "the touched blob must survive"
        );
    }

    #[test]
    fn write_time_capacity_caps_the_directory() {
        let tmp = TempDir::new();
        let probe = cache_at(&tmp.0);
        probe.put(&key("probe"), &vec![0u64; 16]);
        let blob_size = probe.stats().bytes;
        probe.clear();
        let capped = Cache::builder()
            .dir(&tmp.0)
            .capacity_bytes(3 * blob_size)
            .open();
        for i in 0..10u64 {
            capped.put(&key(&format!("cap{i}")), &vec![i; 16]);
        }
        let stats = capped.stats();
        assert!(
            stats.bytes <= 3 * blob_size,
            "dir must stay under the cap: {} > {}",
            stats.bytes,
            3 * blob_size
        );
        assert!(stats.evictions >= 7, "evictions counted: {stats:?}");
        assert!(!tmp.0.join("gc.lock").exists(), "lock released");
    }

    #[test]
    fn gc_sweeps_stale_temps_but_not_fresh_ones() {
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        cache.put(&key("keep"), &1u64);
        let stale = tmp.0.join(format!("{}.tmp.1.1", key("a")));
        let fresh = tmp.0.join(format!("{}.tmp.1.2", key("b")));
        std::fs::write(&stale, "{").unwrap();
        std::fs::write(&fresh, "{").unwrap();
        backdate(&stale, 100_000);
        cache.gc(u64::MAX).unwrap();
        assert!(!stale.exists(), "abandoned temp swept");
        assert!(fresh.exists(), "live writer's temp untouched");
        assert_eq!(cache.len(), 1, "no blob harmed");
    }

    #[test]
    fn gc_on_disabled_cache_is_a_structured_error() {
        match Cache::default().gc(0) {
            Err(CacheError::Disabled) => {}
            other => panic!("expected Disabled, got {other:?}"),
        }
    }

    fn stamp() -> ArchiveStamp {
        ArchiveStamp {
            schema: "test/v1".to_owned(),
            library: "ab".repeat(16),
        }
    }

    #[test]
    fn pack_then_fetch_restores_byte_identical_blobs() {
        let tmp = TempDir::new();
        let src = cache_at(&tmp.0.join("src"));
        for i in 0..3u64 {
            src.put(&key(&format!("pk{i}")), &vec![i; 8]);
        }
        let archive = tmp.0.join("warm.apxcache");
        let packed = src.pack(&archive, &stamp(), None).unwrap();
        assert_eq!(packed.packed, 3);
        assert!(packed.bytes > 0);
        assert_eq!(packed.missing, 0);

        let dst = cache_at(&tmp.0.join("dst"));
        let imported = dst.import(&archive, &stamp(), ImportMode::Fetch).unwrap();
        assert_eq!(imported.imported, 3);
        assert_eq!(imported.already_present, 0);
        assert_eq!(imported.conflicts, 0);
        assert_eq!(dst.stats().imports, 3);
        // byte-identical restore, blob by blob
        for i in 0..3u64 {
            let name = format!("{}.json", key(&format!("pk{i}")));
            let a = std::fs::read(tmp.0.join("src").join(&name)).unwrap();
            let b = std::fs::read(tmp.0.join("dst").join(&name)).unwrap();
            assert_eq!(a, b, "restored blob differs: {name}");
        }
        // re-import is a no-op
        let again = dst.import(&archive, &stamp(), ImportMode::Fetch).unwrap();
        assert_eq!(again.imported, 0);
        assert_eq!(again.already_present, 3);
    }

    #[test]
    fn pack_with_key_filter_selects_and_reports_missing() {
        let tmp = TempDir::new();
        let src = cache_at(&tmp.0.join("src"));
        src.put(&key("want"), &1u64);
        src.put(&key("skip"), &2u64);
        let archive = tmp.0.join("sel.apxcache");
        let wanted = [key("want"), key("absent")];
        let packed = src.pack(&archive, &stamp(), Some(&wanted)).unwrap();
        assert_eq!(packed.packed, 1, "only the selected, present blob");
        assert_eq!(packed.missing, 1, "the absent selection is reported");
        let dst = cache_at(&tmp.0.join("dst"));
        dst.import(&archive, &stamp(), ImportMode::Fetch).unwrap();
        assert!(dst.get::<u64>(&key("want")).is_some());
        assert_eq!(dst.get::<u64>(&key("skip")), None, "unselected not packed");
    }

    #[test]
    fn packing_twice_yields_byte_identical_archives() {
        let tmp = TempDir::new();
        let src = cache_at(&tmp.0.join("src"));
        for i in 0..3u64 {
            src.put(&key(&format!("det{i}")), &vec![i; 4]);
        }
        let a = tmp.0.join("a.apxcache");
        let b = tmp.0.join("b.apxcache");
        src.pack(&a, &stamp(), None).unwrap();
        src.pack(&b, &stamp(), None).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn mismatched_archives_are_rejected_with_structured_errors() {
        let tmp = TempDir::new();
        let src = cache_at(&tmp.0.join("src"));
        src.put(&key("m"), &1u64);
        let archive = tmp.0.join("m.apxcache");
        src.pack(&archive, &stamp(), None).unwrap();

        let dst = cache_at(&tmp.0.join("dst"));
        let other_schema = ArchiveStamp {
            schema: "test/v2".to_owned(),
            ..stamp()
        };
        match dst.import(&archive, &other_schema, ImportMode::Merge) {
            Err(CacheError::SchemaMismatch { archive, local }) => {
                assert_eq!(archive, "test/v1");
                assert_eq!(local, "test/v2");
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        let other_lib = ArchiveStamp {
            library: "cd".repeat(16),
            ..stamp()
        };
        match dst.import(&archive, &other_lib, ImportMode::Fetch) {
            Err(CacheError::LibraryMismatch { .. }) => {}
            other => panic!("expected LibraryMismatch, got {other:?}"),
        }
        assert!(dst.is_empty(), "nothing imported from a rejected archive");

        // not-an-archive file
        let junk = tmp.0.join("junk.apxcache");
        std::fs::write(&junk, "{\"format\": \"something-else\"}").unwrap();
        assert!(matches!(
            dst.import(&junk, &stamp(), ImportMode::Fetch),
            Err(CacheError::CorruptArchive { .. })
        ));
    }

    #[test]
    fn corrupted_archive_blob_rejects_the_whole_import() {
        let tmp = TempDir::new();
        let src = cache_at(&tmp.0.join("src"));
        src.put(&key("c1"), &1u64);
        src.put(&key("c2"), &2u64);
        let archive = tmp.0.join("c.apxcache");
        src.pack(&archive, &stamp(), None).unwrap();
        // flip a byte inside a blob body (the stored value "1" -> "9")
        let text = std::fs::read_to_string(&archive).unwrap();
        let tampered = text.replacen("1\\n", "9\\n", 1);
        assert_ne!(text, tampered, "tamper target must exist");
        std::fs::write(&archive, tampered).unwrap();
        let dst = cache_at(&tmp.0.join("dst"));
        match dst.import(&archive, &stamp(), ImportMode::Fetch) {
            Err(CacheError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        assert!(dst.is_empty(), "validate-then-apply: nothing written");
    }

    #[test]
    fn fetch_refuses_collisions_merge_keeps_local() {
        let tmp = TempDir::new();
        let src = cache_at(&tmp.0.join("src"));
        src.put(&key("x"), &1u64);
        src.put(&key("y"), &2u64);
        let archive = tmp.0.join("x.apxcache");
        src.pack(&archive, &stamp(), None).unwrap();

        // the destination has a *different* value under the same key
        let dst = cache_at(&tmp.0.join("dst"));
        dst.put(&key("x"), &999u64);
        match dst.import(&archive, &stamp(), ImportMode::Fetch) {
            Err(CacheError::Collision { key }) => assert_eq!(key.len(), 32),
            other => panic!("expected Collision, got {other:?}"),
        }
        assert_eq!(dst.len(), 1, "strict fetch wrote nothing");

        let merged = dst.import(&archive, &stamp(), ImportMode::Merge).unwrap();
        assert_eq!(merged.conflicts, 1);
        assert_eq!(merged.imported, 1, "the non-conflicting blob lands");
        assert_eq!(dst.get::<u64>(&key("x")), Some(999), "local side wins");
        assert_eq!(dst.get::<u64>(&key("y")), Some(2));
    }

    #[test]
    fn concurrent_puts_and_gc_never_tear_or_leak() {
        // the in-process half of the concurrent-writer contract: 8
        // threads hammer put/get while gc runs repeatedly; every blob
        // read must parse, no temp survives, hit+miss accounting adds up
        let tmp = TempDir::new();
        let cache = cache_at(&tmp.0);
        std::thread::scope(|s| {
            for t in 0..6 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..40u64 {
                        let k = key(&format!("race{}", (t * 7 + i) % 25));
                        cache.put(&k, &vec![i; 8]);
                        // any Some must be a fully-parsed vector — a torn
                        // blob would deserialize to None and be deleted,
                        // which is legal, but never a panic or bad data
                        if let Some(v) = cache.get::<Vec<u64>>(&k) {
                            assert_eq!(v.len(), 8);
                        }
                    }
                });
            }
            for _ in 0..2 {
                let cache = &cache;
                s.spawn(move || {
                    for _ in 0..10 {
                        match cache.gc(2_000) {
                            Ok(_) | Err(CacheError::Busy { .. }) => {}
                            Err(e) => panic!("gc failed: {e}"),
                        }
                    }
                });
            }
        });
        let leftovers: Vec<_> = std::fs::read_dir(&tmp.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leaked temps: {leftovers:?}");
        // every surviving blob parses
        for record in cache.blob_records() {
            let text = std::fs::read_to_string(&record.path).unwrap();
            assert!(
                serde_json::from_str::<Vec<u64>>(&text).is_ok(),
                "torn blob on disk: {}",
                record.key
            );
        }
        assert!(!tmp.0.join("gc.lock").exists(), "gc lock released");
    }
}
