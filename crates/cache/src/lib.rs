//! Content-addressed, on-disk JSON blob cache for characterization
//! results.
//!
//! PR 2 made every [`OperatorReport`] a **pure function of its inputs**:
//! reports are bit-identical for any thread count under a fixed seed, so
//! an already-characterized operator configuration never needs to be
//! re-swept — it can be looked up by the hash of its inputs. This crate
//! provides that lookup:
//!
//! * [`KeyBuilder`] / [`CacheKey`] — a stable (process-, platform- and
//!   run-independent) 128-bit hash over labelled key material. Callers
//!   feed in everything a result depends on (operator config, seed,
//!   sample counts, cell-library fingerprint, schema version); two runs
//!   that would compute the same result derive the same key.
//! * [`Cache`] — a directory of `<key>.json` blobs with atomic writes,
//!   hit/miss/write counters, and graceful degradation: a missing
//!   directory, an unwritable disk or a corrupted blob never fails the
//!   caller — the worst case is always "recompute".
//!
//! The cache is wired into `apx_core::Characterizer` and the `apxperf`
//! CLI; the default location is `~/.cache/apxperf` (see
//! [`Cache::default_dir`]), overridable with `--cache-dir` or the
//! `APXPERF_CACHE_DIR` environment variable, and `--no-cache` maps to
//! [`Cache::disabled`].
//!
//! # Example
//!
//! ```
//! use apx_cache::{Cache, KeyBuilder};
//!
//! let dir = std::env::temp_dir().join(format!("apx_cache_doc_{}", std::process::id()));
//! let cache = Cache::at(&dir);
//!
//! let key = KeyBuilder::new("demo-schema/v1")
//!     .push_str("operator", "ACA(16,4)")
//!     .push_u64("seed", 0xDA7E_2017)
//!     .push_u64("samples", 100_000)
//!     .finish();
//!
//! assert_eq!(cache.get::<Vec<u64>>(&key), None); // cold
//! cache.put(&key, &vec![1u64, 2, 3]);
//! assert_eq!(cache.get::<Vec<u64>>(&key), Some(vec![1, 2, 3])); // hit
//! assert_eq!(cache.stats().hits, 1);
//!
//! cache.clear();
//! std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [`OperatorReport`]: https://docs.rs/apx_core

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a 64-bit offset basis (stream 0).
const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
/// Offset basis of the second, independent stream — the FNV offset run
/// through a splitmix64 round so the two streams start in unrelated
/// states.
const FNV_OFFSET_B: u64 = 0x9E37_79B9_7F4A_7C15 ^ FNV_OFFSET;

/// A 128-bit content hash identifying one cached result.
///
/// Keys print as 32 lowercase hex digits (the blob file stem). Equality
/// of keys is the cache's notion of "same inputs": [`KeyBuilder`]
/// guarantees the hash is a pure function of the pushed material, stable
/// across processes, platforms and releases of this crate (any change to
/// the hashing scheme must be treated as a cache-schema change).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// The key as 32 lowercase hex digits.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Accumulates labelled key material into a [`CacheKey`].
///
/// Each `push_*` call feeds `label = value ;` into two independent
/// FNV-1a streams, so reordered, relabelled or differently-split material
/// produces a different key. Values are encoded as text (decimal for
/// integers, JSON for structured values), which keeps the hash
/// independent of endianness and in-memory layout.
///
/// # Example
/// ```
/// use apx_cache::KeyBuilder;
/// let a = KeyBuilder::new("s/v1").push_u64("seed", 7).finish();
/// let b = KeyBuilder::new("s/v1").push_u64("seed", 8).finish();
/// let c = KeyBuilder::new("s/v2").push_u64("seed", 7).finish();
/// assert_ne!(a, b); // different value
/// assert_ne!(a, c); // different schema
/// assert_eq!(a, KeyBuilder::new("s/v1").push_u64("seed", 7).finish());
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    a: u64,
    b: u64,
}

impl KeyBuilder {
    /// Starts a key under a schema tag. The tag names the blob's shape
    /// and semantics; bump it whenever the serialized form (or the
    /// meaning of any keyed field) changes, so stale blobs miss instead
    /// of deserializing into wrong data.
    #[must_use]
    pub fn new(schema: &str) -> Self {
        KeyBuilder {
            a: FNV_OFFSET,
            b: FNV_OFFSET_B,
        }
        .push_str("schema", schema)
    }

    fn push_bytes(mut self, bytes: &[u8]) -> Self {
        for &byte in bytes {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds one labelled string field.
    #[must_use]
    pub fn push_str(self, label: &str, value: &str) -> Self {
        self.push_bytes(label.as_bytes())
            .push_bytes(b"=")
            .push_bytes(value.as_bytes())
            .push_bytes(b";")
    }

    /// Feeds one labelled integer field (decimal encoding).
    #[must_use]
    pub fn push_u64(self, label: &str, value: u64) -> Self {
        self.push_str(label, &value.to_string())
    }

    /// Feeds one labelled `usize` field (decimal encoding).
    #[must_use]
    pub fn push_usize(self, label: &str, value: usize) -> Self {
        self.push_str(label, &value.to_string())
    }

    /// Feeds one labelled structured field through its canonical compact
    /// JSON encoding.
    #[must_use]
    pub fn push_json<T: Serialize>(self, label: &str, value: &T) -> Self {
        let json = serde_json::to_string(value)
            .expect("serialization to JSON is infallible for key material");
        self.push_str(label, &json)
    }

    /// Finalizes the accumulated material into a [`CacheKey`].
    #[must_use]
    pub fn finish(self) -> CacheKey {
        CacheKey {
            hi: self.a,
            lo: self.b,
        }
    }
}

/// Hit/miss/write counters of one [`Cache`] handle (shared by clones).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Blobs found and successfully deserialized.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, unreadable or corrupt).
    pub misses: u64,
    /// Blobs written.
    pub writes: u64,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    counters: Counters,
}

/// A content-addressed store of JSON blobs under one directory.
///
/// * **Cheap to clone** — clones share the directory and the counters,
///   so a sweep can hand one handle to every parallel task.
/// * **Best-effort** — IO failures (missing directory, full or read-only
///   disk, corrupted blob) are never surfaced as errors; a failed read
///   counts as a miss and a failed write is dropped. The caller's
///   fallback is always "recompute", which is exactly what it would have
///   done without a cache.
/// * **Self-validating** — a blob that no longer deserializes (truncated
///   write, schema drift that slipped past the key, manual tampering) is
///   treated as a miss and deleted so the next `put` replaces it.
///
/// See the [crate docs](crate) for a usage example.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    inner: Option<Arc<Inner>>,
}

impl Cache {
    /// A cache rooted at `dir` (created on first write).
    #[must_use]
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Cache {
            inner: Some(Arc::new(Inner {
                dir: dir.into(),
                counters: Counters::default(),
            })),
        }
    }

    /// A disabled cache: every `get` misses, every `put` is dropped.
    /// This is what `--no-cache` maps to.
    #[must_use]
    pub fn disabled() -> Self {
        Cache { inner: None }
    }

    /// The default on-disk location, in precedence order:
    /// `$APXPERF_CACHE_DIR`, `$XDG_CACHE_HOME/apxperf`,
    /// `$HOME/.cache/apxperf`. `None` when none of the variables is set
    /// (e.g. a bare CI environment), in which case callers should fall
    /// back to [`Cache::disabled`].
    #[must_use]
    pub fn default_dir() -> Option<PathBuf> {
        let nonempty = |var: &str| std::env::var_os(var).filter(|v| !v.is_empty());
        if let Some(dir) = nonempty("APXPERF_CACHE_DIR") {
            return Some(PathBuf::from(dir));
        }
        if let Some(base) = nonempty("XDG_CACHE_HOME") {
            return Some(PathBuf::from(base).join("apxperf"));
        }
        nonempty("HOME").map(|home| PathBuf::from(home).join(".cache").join("apxperf"))
    }

    /// A cache at [`Cache::default_dir`], or a disabled one when no
    /// default location exists.
    #[must_use]
    pub fn from_env() -> Self {
        match Cache::default_dir() {
            Some(dir) => Cache::at(dir),
            None => Cache::disabled(),
        }
    }

    /// Whether lookups can ever hit (i.e. the cache has a directory).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing directory (`None` for a disabled cache).
    #[must_use]
    pub fn dir(&self) -> Option<&Path> {
        self.inner.as_deref().map(|inner| inner.dir.as_path())
    }

    fn blob_path(inner: &Inner, key: &CacheKey) -> PathBuf {
        inner.dir.join(format!("{key}.json"))
    }

    /// Looks up `key` and deserializes the blob into `T`.
    ///
    /// Absent, unreadable and corrupt blobs all return `None` (and count
    /// as misses); corrupt blobs are additionally deleted so they cannot
    /// shadow a future write.
    #[must_use]
    pub fn get<T: Deserialize>(&self, key: &CacheKey) -> Option<T> {
        let inner = self.inner.as_deref()?;
        let path = Cache::blob_path(inner, key);
        let parsed = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| serde_json::from_str::<T>(&text).ok());
        match parsed {
            Some(value) => {
                inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                // distinguish "nothing there" (plain miss) from "there
                // but unusable" (corrupt: delete so a put can heal it)
                if path.exists() {
                    std::fs::remove_file(&path).ok();
                }
                inner.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` under `key`, atomically (write to a temporary file
    /// in the same directory, then rename): a concurrent reader sees
    /// either the old blob or the new one, never a torn write. Failures
    /// are dropped — the cache is an accelerator, not a system of record.
    pub fn put<T: Serialize>(&self, key: &CacheKey, value: &T) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let Ok(json) = serde_json::to_string_pretty(value) else {
            return;
        };
        if std::fs::create_dir_all(&inner.dir).is_err() {
            return;
        }
        let path = Cache::blob_path(inner, key);
        // unique per process AND per call: concurrent same-key puts from
        // engine threads (e.g. every approximate adder storing the shared
        // full-width partner multiplier) must never share a temp file, or
        // one writer's truncate could tear another's in-flight blob
        static PUT_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = PUT_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = inner
            .dir
            .join(format!("{key}.tmp.{}.{seq}", std::process::id()));
        if std::fs::write(&tmp, json + "\n").is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            inner.counters.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            std::fs::remove_file(&tmp).ok();
        }
    }

    /// Number of blobs currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blob_paths().len()
    }

    /// Whether the cache holds no blobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deletes every blob; returns how many were removed.
    pub fn clear(&self) -> usize {
        self.blob_paths()
            .into_iter()
            .filter(|path| std::fs::remove_file(path).is_ok())
            .count()
    }

    fn blob_paths(&self) -> Vec<PathBuf> {
        let Some(inner) = self.inner.as_deref() else {
            return Vec::new();
        };
        let Ok(entries) = std::fs::read_dir(&inner.dir) else {
            return Vec::new();
        };
        entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
            .collect()
    }

    /// File (inside the cache directory) holding the counters of the
    /// most recent run that called [`Cache::persist_run_stats`].
    /// Deliberately **not** a `.json` file so it never counts as a blob.
    const RUN_STATS_FILE: &'static str = "last-run-stats.v1";

    /// Persists this handle's current counters as the directory's
    /// "last run" record, so a later process (e.g. `apxperf cache stats
    /// --format json`, or a CI assertion) can read what the previous
    /// run's cache traffic was. Best-effort and atomic, like blob
    /// writes; a disabled cache ignores the call.
    pub fn persist_run_stats(&self) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        let Ok(json) = serde_json::to_string_pretty(&self.stats()) else {
            return;
        };
        if std::fs::create_dir_all(&inner.dir).is_err() {
            return;
        }
        let path = inner.dir.join(Cache::RUN_STATS_FILE);
        // unique per process AND per call, exactly like `put`: the serve
        // daemon persists after every cold report and after every drained
        // job, so concurrent in-process persists must never share a temp
        // file — one writer's truncate could tear another's rename
        static PERSIST_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = PERSIST_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = inner.dir.join(format!(
            "{}.tmp.{}.{seq}",
            Cache::RUN_STATS_FILE,
            std::process::id()
        ));
        if std::fs::write(&tmp, json + "\n").is_err() || std::fs::rename(&tmp, &path).is_err() {
            std::fs::remove_file(&tmp).ok();
        }
    }

    /// The counters persisted by the most recent run that called
    /// [`Cache::persist_run_stats`] on this directory, if any.
    #[must_use]
    pub fn last_run_stats(&self) -> Option<CacheStats> {
        let inner = self.inner.as_deref()?;
        let text = std::fs::read_to_string(inner.dir.join(Cache::RUN_STATS_FILE)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// This handle's counters (shared across clones).
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        match self.inner.as_deref() {
            Some(inner) => CacheStats {
                hits: inner.counters.hits.load(Ordering::Relaxed),
                misses: inner.counters.misses.load(Ordering::Relaxed),
                writes: inner.counters.writes.load(Ordering::Relaxed),
            },
            None => CacheStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static TEST_DIR_ID: AtomicUsize = AtomicUsize::new(0);

    /// A unique, self-cleaning temp directory per test.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            let id = TEST_DIR_ID.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("apx_cache_test_{}_{id}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn key(tag: &str) -> CacheKey {
        KeyBuilder::new("test/v1").push_str("tag", tag).finish()
    }

    #[test]
    fn put_then_get_roundtrips() {
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        let k = key("roundtrip");
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
        cache.put(&k, &vec![1u64, 2, 3]);
        assert_eq!(cache.get::<Vec<u64>>(&k), Some(vec![1, 2, 3]));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                writes: 1
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_depend_on_labels_values_and_order() {
        let base = KeyBuilder::new("s").push_str("a", "1").push_str("b", "2");
        let same = KeyBuilder::new("s").push_str("a", "1").push_str("b", "2");
        assert_eq!(base.clone().finish(), same.finish());
        let swapped = KeyBuilder::new("s").push_str("b", "2").push_str("a", "1");
        assert_ne!(base.clone().finish(), swapped.finish());
        let relabelled = KeyBuilder::new("s").push_str("a1", "").push_str("b", "2");
        assert_ne!(base.clone().finish(), relabelled.finish());
        let json = KeyBuilder::new("s").push_json("a", &(1u64, 2u64)).finish();
        assert_ne!(base.finish(), json);
    }

    #[test]
    fn key_hex_is_stable_and_32_digits() {
        let k = KeyBuilder::new("pinned/v1").push_u64("x", 42).finish();
        assert_eq!(k.hex().len(), 32);
        assert_eq!(k.hex(), k.to_string());
        // pinned value: the hash must never change across releases, or
        // every existing cache silently goes cold
        assert_eq!(k, KeyBuilder::new("pinned/v1").push_u64("x", 42).finish());
    }

    #[test]
    fn corrupted_blob_is_a_miss_and_gets_deleted() {
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        let k = key("corrupt");
        cache.put(&k, &vec![9u64]);
        let path = tmp.0.join(format!("{k}.json"));
        std::fs::write(&path, "{not json at all").unwrap();
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
        assert!(!path.exists(), "corrupt blob must be deleted");
        // and a fresh put heals it
        cache.put(&k, &vec![7u64]);
        assert_eq!(cache.get::<Vec<u64>>(&k), Some(vec![7]));
    }

    #[test]
    fn wrong_shape_blob_is_a_miss() {
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        let k = key("shape");
        cache.put(&k, &"a string".to_owned());
        // valid JSON, wrong type for the requested T
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
    }

    #[test]
    fn disabled_cache_never_stores_or_hits() {
        let cache = Cache::disabled();
        let k = key("disabled");
        cache.put(&k, &vec![1u64]);
        assert_eq!(cache.get::<Vec<u64>>(&k), None);
        assert!(!cache.is_enabled());
        assert_eq!(cache.dir(), None);
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_removes_all_blobs() {
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        for i in 0..5u64 {
            cache.put(&key(&format!("blob{i}")), &i);
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.clear(), 5);
        assert!(cache.is_empty());
    }

    #[test]
    fn run_stats_persist_across_handles_and_never_count_as_blobs() {
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        assert_eq!(cache.last_run_stats(), None, "nothing persisted yet");
        cache.put(&key("a"), &1u64);
        let _ = cache.get::<u64>(&key("a"));
        let _ = cache.get::<u64>(&key("absent"));
        cache.persist_run_stats();
        assert_eq!(cache.len(), 1, "the stats record is not a blob");
        // a fresh handle over the same directory reads the previous run
        let later = Cache::at(&tmp.0);
        assert_eq!(
            later.last_run_stats(),
            Some(CacheStats {
                hits: 1,
                misses: 1,
                writes: 1
            })
        );
        // clearing blobs leaves the record in place; disabled caches
        // neither write nor read one
        cache.clear();
        assert_eq!(later.last_run_stats().map(|s| s.hits), Some(1));
        let off = Cache::disabled();
        off.persist_run_stats();
        assert_eq!(off.last_run_stats(), None);
    }

    #[test]
    fn run_stats_survive_concurrent_in_process_persists_and_reads() {
        // the serve daemon persists after every cold report and after
        // every drained job, from many threads over one shared handle;
        // with atomic renames and call-unique temp files, a reader must
        // always see a complete record — never a torn or vanished file
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        cache.put(&key("warmup"), &0u64);
        let _ = cache.get::<u64>(&key("warmup"));
        cache.persist_run_stats();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        cache.persist_run_stats();
                    }
                });
            }
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        assert!(
                            cache.last_run_stats().is_some(),
                            "a concurrent persist tore or removed the record"
                        );
                    }
                });
            }
        });
        // no temp-file droppings survive the storm
        let leftovers: Vec<_> = std::fs::read_dir(&tmp.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
        assert_eq!(cache.last_run_stats().map(|s| s.writes), Some(1));
    }

    #[test]
    fn clones_share_storage_and_counters() {
        let tmp = TempDir::new();
        let cache = Cache::at(&tmp.0);
        let clone = cache.clone();
        let k = key("shared");
        clone.put(&k, &vec![5u64]);
        assert_eq!(cache.get::<Vec<u64>>(&k), Some(vec![5]));
        assert_eq!(cache.stats().writes, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn default_dir_honours_env_precedence() {
        // only inspects the pure path computation; the variables
        // themselves are process-global, so don't mutate them here
        if std::env::var_os("APXPERF_CACHE_DIR").is_none()
            && std::env::var_os("XDG_CACHE_HOME").is_none()
        {
            if let Some(dir) = Cache::default_dir() {
                assert!(dir.ends_with(".cache/apxperf"));
            }
        }
    }
}
