//! Size-capped, LRU-first garbage collection under an advisory lock.
//!
//! The cache is an accelerator, so it must never grow without bound on
//! the machines that benefit from it most (CI runners, the `serve`
//! daemon's host). `gc` brings the directory down to a byte budget by
//! evicting the **least recently used** blobs first — "used" meaning
//! the blob file's modification time, which [`Cache::get`] bumps on
//! every hit (touch-on-hit), so warm blobs survive and stale ones go.
//!
//! Exactly one gc runs at a time per directory: a `gc.lock` file taken
//! with `O_EXCL` (`create_new`) serves as the advisory lock, with a
//! stale-steal path (a lock older than [`LOCK_STALE_SECS`] belongs to a
//! crashed process and is reclaimed). Everything gc deletes is either a
//! whole blob (readers of a deleted blob see a clean miss — the same
//! contract as a cold cache) or an abandoned temp file, so gc is safe
//! to run mid-sweep against live readers and writers.

use crate::error::CacheError;
use crate::{Cache, Inner};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::time::{Duration, SystemTime};

/// Age (seconds) past which a `gc.lock` is considered abandoned by a
/// crashed process and is stolen. A real gc pass takes milliseconds.
pub const LOCK_STALE_SECS: u64 = 300;

/// Age (seconds) past which a `*.tmp.*` file is an abandoned write (the
/// writer crashed between `write` and `rename`) and is swept by gc.
/// Live writers hold their temp for microseconds.
const TEMP_STALE_SECS: u64 = 900;

/// What one `gc` pass did, in the same size definition `cache stats`
/// reports (blob files only; stats records and locks are not counted
/// and never evicted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcSummary {
    /// Blobs present when the pass started.
    pub examined_blobs: u64,
    /// Their total size in bytes.
    pub examined_bytes: u64,
    /// Blobs evicted (LRU-first) to reach the budget.
    pub evicted_blobs: u64,
    /// Bytes reclaimed by those evictions.
    pub evicted_bytes: u64,
    /// Blobs remaining after the pass.
    pub remaining_blobs: u64,
    /// Bytes remaining after the pass (≤ the budget, unless a single
    /// blob is larger than the budget — blobs are evicted whole).
    pub remaining_bytes: u64,
}

/// Holds `gc.lock` for the duration of a pass; removed on drop.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Takes the directory's advisory gc lock with `O_EXCL` semantics.
///
/// A held lock younger than [`LOCK_STALE_SECS`] yields
/// [`CacheError::Busy`]; an older one is stolen (its holder crashed).
fn acquire_lock(dir: &Path) -> Result<LockGuard, CacheError> {
    let path = dir.join("gc.lock");
    let io_err = |op: &str, e: std::io::Error| CacheError::Io {
        op: op.to_owned(),
        path: path.display().to_string(),
        message: e.to_string(),
    };
    std::fs::create_dir_all(dir).map_err(|e| CacheError::Io {
        op: "create cache dir".to_owned(),
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    for attempt in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(_) => return Ok(LockGuard { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let held = std::fs::metadata(&path)
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                    .unwrap_or(Duration::ZERO);
                if attempt == 0 && held.as_secs() >= LOCK_STALE_SECS {
                    // the holder crashed mid-pass; reclaim and retry once
                    std::fs::remove_file(&path).ok();
                    continue;
                }
                return Err(CacheError::Busy {
                    held_secs: held.as_secs(),
                });
            }
            Err(e) => return Err(io_err("create lock", e)),
        }
    }
    unreachable!("the second attempt always returns");
}

impl Cache {
    /// Evicts least-recently-used blobs until the directory's blob bytes
    /// are ≤ `max_bytes`, under the directory's advisory lock. Also
    /// sweeps abandoned temp files (crashed writers). Blobs are evicted
    /// whole, oldest modification time first (ties broken by file name
    /// for determinism); an evicted blob is simply a future miss.
    ///
    /// # Errors
    /// [`CacheError::Disabled`] without a directory, [`CacheError::Busy`]
    /// when another process holds the lock, [`CacheError::Io`] when the
    /// lock cannot be created.
    pub fn gc(&self, max_bytes: u64) -> Result<GcSummary, CacheError> {
        let inner = self.inner().ok_or(CacheError::Disabled)?;
        let _lock = acquire_lock(&inner.dir)?;
        Ok(self.gc_locked(inner, max_bytes))
    }

    /// The gc pass itself; the caller holds the lock.
    fn gc_locked(&self, inner: &Inner, max_bytes: u64) -> GcSummary {
        self.sweep_stale_temps(inner);
        // (mtime, name, size, path) — sorting the tuple is LRU-first with
        // a deterministic name tie-break for same-mtime blobs
        let mut blobs: Vec<(SystemTime, String, u64, PathBuf)> = self
            .blob_records()
            .into_iter()
            .filter_map(|record| {
                let meta = std::fs::metadata(&record.path).ok()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((mtime, record.key, meta.len(), record.path))
            })
            .collect();
        blobs.sort();
        let mut summary = GcSummary {
            examined_blobs: blobs.len() as u64,
            examined_bytes: blobs.iter().map(|(_, _, size, _)| size).sum(),
            ..GcSummary::default()
        };
        let mut remaining = summary.examined_bytes;
        for (_, _, size, path) in &blobs {
            if remaining <= max_bytes {
                break;
            }
            if std::fs::remove_file(path).is_ok() {
                remaining -= size;
                summary.evicted_blobs += 1;
                summary.evicted_bytes += size;
                inner.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        summary.remaining_blobs = summary.examined_blobs - summary.evicted_blobs;
        summary.remaining_bytes = remaining;
        summary
    }

    /// Removes temp files whose writer evidently crashed (older than
    /// [`TEMP_STALE_SECS`]). Fresh temps belong to live writers and are
    /// left alone.
    fn sweep_stale_temps(&self, inner: &Inner) {
        let Ok(entries) = std::fs::read_dir(&inner.dir) else {
            return;
        };
        let now = SystemTime::now();
        for path in entries.filter_map(|entry| entry.ok().map(|e| e.path())) {
            if crate::classify(&path) != crate::RecordKind::Temp {
                continue;
            }
            let stale = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| now.duration_since(mtime).ok())
                .is_some_and(|age| age.as_secs() >= TEMP_STALE_SECS);
            if stale {
                std::fs::remove_file(&path).ok();
            }
        }
    }

    /// Best-effort re-cap after a write, for caches opened with a
    /// write-time capacity. Skips silently when another process holds
    /// the gc lock (that gc will do the capping) or the cache has no
    /// capacity configured.
    pub(crate) fn enforce_capacity(&self) {
        let Some(inner) = self.inner() else {
            return;
        };
        let Some(capacity) = inner.capacity_bytes else {
            return;
        };
        if let Ok(_lock) = acquire_lock(&inner.dir) {
            self.gc_locked(inner, capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_exclusive_and_released_on_drop() {
        let dir = std::env::temp_dir().join(format!("apx_gc_lock_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let guard = acquire_lock(&dir).unwrap();
        match acquire_lock(&dir) {
            Err(CacheError::Busy { held_secs }) => assert!(held_secs < LOCK_STALE_SECS),
            other => panic!("second acquire must be Busy, got {other:?}"),
        }
        drop(guard);
        let again = acquire_lock(&dir);
        assert!(again.is_ok(), "lock must be free after drop");
        drop(again);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_is_stolen() {
        let dir = std::env::temp_dir().join(format!("apx_gc_stale_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let lock = dir.join("gc.lock");
        std::fs::write(&lock, "").unwrap();
        let crashed = SystemTime::now() - Duration::from_secs(LOCK_STALE_SECS + 60);
        let file = std::fs::OpenOptions::new().write(true).open(&lock).unwrap();
        file.set_modified(crashed).unwrap();
        drop(file);
        let guard = acquire_lock(&dir);
        assert!(guard.is_ok(), "a stale lock must be reclaimed: {guard:?}");
        drop(guard);
        std::fs::remove_dir_all(&dir).ok();
    }
}
