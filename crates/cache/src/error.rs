//! The structured error type of the cache's fleet operations.
//!
//! `get`/`put` stay best-effort (a cache is an accelerator, failures
//! degrade to "recompute"), but the *fleet* operations — packing and
//! importing archives, garbage collection — move real data between
//! machines and delete files, so their failures must be loud, typed and
//! machine-readable. [`CacheError`] is that type: every variant carries
//! the concrete mismatch (archive vs. local fingerprint, the offending
//! blob key, the held lock's age), serializes to JSON for `--format
//! json` consumers, and renders a one-line human message via `Display`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed, serializable failure of a cache fleet operation
/// (pack / fetch / merge / gc).
///
/// The JSON form is the externally tagged enum — e.g.
/// `{"SchemaMismatch": {"archive": "...", "local": "..."}}` — so scripts
/// can dispatch on the variant name instead of parsing prose.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheError {
    /// The operation needs a cache directory, but this handle is
    /// disabled (no directory could be derived).
    Disabled,
    /// An IO operation failed. `op` names what was being attempted
    /// (`read archive`, `write blob`, …), `path` where.
    Io {
        /// What was being attempted.
        op: String,
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The archive file is not a well-formed cache archive (unparsable
    /// JSON, wrong `format` tag, malformed blob entry, …).
    CorruptArchive {
        /// What exactly was wrong.
        detail: String,
    },
    /// The archive was written by an incompatible archive-format
    /// version of this tool.
    UnsupportedVersion {
        /// The archive's format version.
        archive: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The archive was packed under a different cache schema (report /
    /// app-sweep schema versions) — its blobs live at addresses this
    /// build would never look up, so importing them is pure waste and
    /// likely operator error.
    SchemaMismatch {
        /// The schema stamp recorded in the archive.
        archive: String,
        /// The schema stamp of this build.
        local: String,
    },
    /// The archive was packed against a different cell-library
    /// fingerprint: its reports describe different hardware.
    LibraryMismatch {
        /// The library fingerprint recorded in the archive.
        archive: String,
        /// The local library fingerprint.
        local: String,
    },
    /// A blob entry's recomputed checksum does not match the one
    /// recorded at pack time: the archive was corrupted or tampered
    /// with in transit. Nothing is imported.
    ChecksumMismatch {
        /// The offending blob's key (32 hex digits).
        key: String,
    },
    /// A strict import (`fetch`) found a local blob under the same key
    /// with different bytes. Content addressing makes this "impossible"
    /// for honest archives — it means a hash collision, a schema drift
    /// that slipped past the key, or a manually edited file — so the
    /// import refuses rather than guessing which side is right. Use
    /// `merge` to keep the local side and continue.
    Collision {
        /// The offending blob's key (32 hex digits).
        key: String,
    },
    /// The cache's advisory lock is held by another process (a
    /// concurrent `gc`); retry once it finishes.
    Busy {
        /// How long the current holder has held the lock, in seconds.
        held_secs: u64,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Disabled => {
                write!(f, "the cache is disabled (no directory could be derived)")
            }
            CacheError::Io { op, path, message } => {
                write!(f, "cannot {op} `{path}`: {message}")
            }
            CacheError::CorruptArchive { detail } => {
                write!(f, "not a valid cache archive: {detail}")
            }
            CacheError::UnsupportedVersion { archive, supported } => write!(
                f,
                "archive format v{archive} is not supported (this build reads v{supported})"
            ),
            CacheError::SchemaMismatch { archive, local } => write!(
                f,
                "archive schema mismatch: packed under `{archive}`, this build expects `{local}`"
            ),
            CacheError::LibraryMismatch { archive, local } => write!(
                f,
                "archive library mismatch: packed against fingerprint {archive}, local library is {local}"
            ),
            CacheError::ChecksumMismatch { key } => write!(
                f,
                "blob {key} fails its checksum — the archive is corrupt; nothing was imported"
            ),
            CacheError::Collision { key } => write!(
                f,
                "blob {key} already exists locally with different content; \
                 `fetch` refuses to overwrite (use `merge` to keep the local copy)"
            ),
            CacheError::Busy { held_secs } => write!(
                f,
                "the cache is locked by another process (held for {held_secs}s); retry shortly"
            ),
        }
    }
}

impl std::error::Error for CacheError {}

impl CacheError {
    /// The error as a compact JSON object (the externally tagged enum),
    /// for `--format json` consumers and HTTP error bodies.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("error serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_payloads_and_roundtrip_json() {
        let err = CacheError::SchemaMismatch {
            archive: "report/v1+app/v1".to_owned(),
            local: "report/v2+app/v2".to_owned(),
        };
        let text = err.to_string();
        assert!(text.contains("report/v1+app/v1"), "{text}");
        assert!(text.contains("report/v2+app/v2"), "{text}");
        let json = err.to_json();
        assert!(json.contains("SchemaMismatch"), "{json}");
        let back: CacheError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, err);

        let busy = CacheError::Busy { held_secs: 3 };
        assert!(busy.to_string().contains("3s"), "{busy}");
        let collision = CacheError::Collision {
            key: "ab".repeat(16),
        };
        assert!(collision.to_string().contains(&"ab".repeat(16)));
    }
}
