//! Portable cache archives: `pack` a set of blobs into one versioned,
//! fingerprint-stamped file; `fetch`/`merge` import one back.
//!
//! A warm cache directory is single-host; a fleet (CI shards, `serve`
//! workers, many users) wants to share its warmth. An archive is the
//! transport: one self-describing JSON file holding
//!
//! * a **stamp** ([`ArchiveStamp`]) of the cache schema versions and
//!   the cell-library fingerprint it was packed under — imports reject
//!   a mismatched stamp with a structured [`CacheError`], because blobs
//!   keyed under another schema or library would never be looked up
//!   (or worse, describe different hardware);
//! * the **blobs** themselves, each as its exact on-disk bytes plus a
//!   per-blob checksum recomputed at import time, so corruption in
//!   transit is caught before anything is written.
//!
//! Imports are **validate-then-apply**: the whole archive is verified
//! (format, stamp, every key, every checksum, every local collision)
//! before the first blob is written, so a bad archive never leaves the
//! cache half-merged. Writes go through the same unique-temp + atomic
//! rename path as [`Cache::put`](crate::Cache::put), so an import can
//! run concurrently with readers, writers and even a `gc`.

use crate::error::CacheError;
use crate::{Cache, CacheKey, KeyBuilder, RecordKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::Path;

/// The archive format tag; the first thing an import checks.
pub const ARCHIVE_FORMAT: &str = "apxperf-cache-archive";

/// The archive format version this build writes and reads.
pub const ARCHIVE_VERSION: u32 = 1;

/// What a cache's contents are keyed under: the schema versions of the
/// blobs and the fingerprint of the cell library they were computed
/// against. Callers build one from their key ingredients (see
/// `apx_core::cache::archive_stamp`); `pack` records it in the archive
/// and `fetch`/`merge` refuse an archive whose stamp differs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchiveStamp {
    /// The cache schema, e.g. `report/v2+app/v2`. Bumping any schema
    /// version moves every blob's content address, so an archive packed
    /// under another schema holds only unreachable blobs.
    pub schema: String,
    /// The cell-library fingerprint (32 hex digits) the blobs were
    /// computed against.
    pub library: String,
}

/// One packed blob: its content address, its exact on-disk bytes, and a
/// checksum over both.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArchiveBlob {
    /// The blob's cache key (32 lowercase hex digits — the file stem).
    key: String,
    /// Checksum over `key` + `body`, recomputed at import time.
    check: String,
    /// The blob file's exact bytes (JSON text); imported verbatim so a
    /// restored blob is byte-identical to the packed one.
    body: String,
}

/// The archive file itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArchiveFile {
    /// Always [`ARCHIVE_FORMAT`].
    format: String,
    /// Always [`ARCHIVE_VERSION`] (for this build).
    version: u32,
    /// The schema + library stamp the blobs were packed under.
    stamp: ArchiveStamp,
    /// The packed blobs, sorted by key for deterministic output.
    blobs: Vec<ArchiveBlob>,
}

/// What one `pack` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackSummary {
    /// Blobs written into the archive.
    pub packed: u64,
    /// Their total size in bytes (the sum of blob-file sizes).
    pub bytes: u64,
    /// Selector keys that had no blob in the cache (only non-zero when
    /// packing with a key filter over a partially warm cache).
    pub missing: u64,
}

/// How an import treats a local blob whose bytes differ from the
/// archived one under the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportMode {
    /// Strict restore (`cache fetch`): a divergent local blob is a
    /// [`CacheError::Collision`] and nothing is imported.
    Fetch,
    /// Union (`cache merge`): the local blob wins, the divergence is
    /// counted in [`ImportSummary::conflicts`].
    Merge,
}

/// What one `fetch`/`merge` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportSummary {
    /// Blobs newly written into the cache.
    pub imported: u64,
    /// Blobs already present with identical bytes (skipped).
    pub already_present: u64,
    /// Divergent local blobs kept as-is (`merge` only; a `fetch` turns
    /// the first one into a [`CacheError::Collision`]).
    pub conflicts: u64,
    /// Total blob entries in the archive.
    pub total: u64,
}

/// The per-blob checksum: both FNV streams over the key and the exact
/// body bytes. Recomputed on import; a mismatch rejects the archive.
fn blob_check(key: &str, body: &str) -> String {
    KeyBuilder::new("apxperf-archive-blob/v1")
        .push_str("key", key)
        .push_str("body", body)
        .finish()
        .hex()
}

/// Whether `key` is a well-formed blob address (32 lowercase hex digits).
fn valid_key(key: &str) -> bool {
    key.len() == 32
        && key
            .bytes()
            .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
}

impl Cache {
    /// Packs blobs into a portable archive at `path`, stamped with
    /// `stamp`. With `keys`, only the selected blobs are packed (the
    /// sweep/workload selectors of `apxperf cache pack` resolve to such
    /// a key set); without, every blob in the directory is packed.
    ///
    /// The archive is written atomically (unique temp + rename in the
    /// target directory), and blobs are sorted by key, so packing the
    /// same cache twice yields byte-identical archives.
    ///
    /// # Errors
    /// [`CacheError::Disabled`] on a disabled cache, [`CacheError::Io`]
    /// when the archive cannot be written.
    pub fn pack(
        &self,
        path: &Path,
        stamp: &ArchiveStamp,
        keys: Option<&[CacheKey]>,
    ) -> Result<PackSummary, CacheError> {
        self.inner().ok_or(CacheError::Disabled)?;
        let filter: Option<BTreeSet<String>> =
            keys.map(|keys| keys.iter().map(|k| k.hex()).collect());
        let mut blobs = Vec::new();
        let mut bytes = 0u64;
        let mut found = BTreeSet::new();
        for record in self.blob_records() {
            if let Some(filter) = &filter {
                if !filter.contains(&record.key) {
                    continue;
                }
                found.insert(record.key.clone());
            }
            // a blob evicted between the scan and this read is skipped —
            // packing races a concurrent gc without failing
            let Ok(body) = std::fs::read_to_string(&record.path) else {
                continue;
            };
            bytes += body.len() as u64;
            blobs.push(ArchiveBlob {
                check: blob_check(&record.key, &body),
                key: record.key,
                body,
            });
        }
        blobs.sort_by(|a, b| a.key.cmp(&b.key));
        let missing = filter.map_or(0, |filter| (filter.len() - found.len()) as u64);
        let archive = ArchiveFile {
            format: ARCHIVE_FORMAT.to_owned(),
            version: ARCHIVE_VERSION,
            stamp: stamp.clone(),
            blobs,
        };
        let json =
            serde_json::to_string_pretty(&archive).expect("archive serialization is infallible");
        let packed = archive.blobs.len() as u64;
        let io_err = |op: &str, e: std::io::Error| CacheError::Io {
            op: op.to_owned(),
            path: path.display().to_string(),
            message: e.to_string(),
        };
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, json + "\n").map_err(|e| io_err("write archive", e))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            io_err("finalize archive", e)
        })?;
        Ok(PackSummary {
            packed,
            bytes,
            missing,
        })
    }

    /// Imports the archive at `path`, verifying it end to end **before**
    /// writing anything: format tag, format version, schema + library
    /// stamp against `local`, every blob key's shape, every blob's
    /// checksum, and — for [`ImportMode::Fetch`] — that no local blob
    /// diverges from its archived twin. Only then are the missing blobs
    /// written, each through the atomic unique-temp + rename path, so a
    /// concurrent reader, writer or `gc` never observes a torn blob.
    ///
    /// Every imported blob bumps this handle's `imports` counter. With a
    /// write-time capacity configured, the cache is re-capped after the
    /// import (LRU-first, like any other write).
    ///
    /// # Errors
    /// See [`CacheError`]; a mismatched stamp or corrupt entry rejects
    /// the whole archive — a failed import never leaves a partial merge.
    pub fn import(
        &self,
        path: &Path,
        local: &ArchiveStamp,
        mode: ImportMode,
    ) -> Result<ImportSummary, CacheError> {
        let inner = self.inner().ok_or(CacheError::Disabled)?;
        let text = std::fs::read_to_string(path).map_err(|e| CacheError::Io {
            op: "read archive".to_owned(),
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let archive: ArchiveFile =
            serde_json::from_str(&text).map_err(|e| CacheError::CorruptArchive {
                detail: format!("unparsable archive: {e}"),
            })?;
        if archive.format != ARCHIVE_FORMAT {
            return Err(CacheError::CorruptArchive {
                detail: format!("format tag is `{}`, not `{ARCHIVE_FORMAT}`", archive.format),
            });
        }
        if archive.version != ARCHIVE_VERSION {
            return Err(CacheError::UnsupportedVersion {
                archive: archive.version,
                supported: ARCHIVE_VERSION,
            });
        }
        if archive.stamp.schema != local.schema {
            return Err(CacheError::SchemaMismatch {
                archive: archive.stamp.schema,
                local: local.schema.clone(),
            });
        }
        if archive.stamp.library != local.library {
            return Err(CacheError::LibraryMismatch {
                archive: archive.stamp.library,
                local: local.library.clone(),
            });
        }

        // validation pass: every entry checked before any write
        enum Action {
            Write,
            Skip,
            Conflict,
        }
        let mut plan = Vec::with_capacity(archive.blobs.len());
        for blob in &archive.blobs {
            if !valid_key(&blob.key) {
                return Err(CacheError::CorruptArchive {
                    detail: format!("`{}` is not a valid blob key", blob.key),
                });
            }
            if blob_check(&blob.key, &blob.body) != blob.check {
                return Err(CacheError::ChecksumMismatch {
                    key: blob.key.clone(),
                });
            }
            let local_path = inner.dir.join(format!("{}.json", blob.key));
            let action = match std::fs::read_to_string(&local_path) {
                Ok(existing) if existing == blob.body => Action::Skip,
                Ok(_) => match mode {
                    ImportMode::Fetch => {
                        return Err(CacheError::Collision {
                            key: blob.key.clone(),
                        })
                    }
                    ImportMode::Merge => Action::Conflict,
                },
                Err(_) => Action::Write,
            };
            plan.push(action);
        }

        // apply pass: write-once via unique temp + atomic rename
        let mut summary = ImportSummary {
            imported: 0,
            already_present: 0,
            conflicts: 0,
            total: archive.blobs.len() as u64,
        };
        std::fs::create_dir_all(&inner.dir).map_err(|e| CacheError::Io {
            op: "create cache dir".to_owned(),
            path: inner.dir.display().to_string(),
            message: e.to_string(),
        })?;
        for (blob, action) in archive.blobs.iter().zip(plan) {
            match action {
                Action::Skip => summary.already_present += 1,
                Action::Conflict => summary.conflicts += 1,
                Action::Write => {
                    let name = format!("{}.json", blob.key);
                    if self.write_record_atomic(&name, &blob.body) {
                        summary.imported += 1;
                        inner
                            .counters
                            .imports
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    } else {
                        return Err(CacheError::Io {
                            op: "write blob".to_owned(),
                            path: inner.dir.join(name).display().to_string(),
                            message: "write or rename failed".to_owned(),
                        });
                    }
                }
            }
        }
        self.enforce_capacity();
        Ok(summary)
    }

    /// Scans the directory for blob records (key + path), classifying
    /// out stats records, locks and temp files.
    pub(crate) fn blob_records(&self) -> Vec<BlobRecord> {
        let Some(inner) = self.inner() else {
            return Vec::new();
        };
        let Ok(entries) = std::fs::read_dir(&inner.dir) else {
            return Vec::new();
        };
        entries
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter_map(|path| match crate::classify(&path) {
                RecordKind::Blob => {
                    let key = path
                        .file_stem()
                        .and_then(|stem| stem.to_str())
                        .unwrap_or_default()
                        .to_owned();
                    Some(BlobRecord { key, path })
                }
                _ => None,
            })
            .collect()
    }
}

/// One blob on disk: its key (file stem) and its path.
pub(crate) struct BlobRecord {
    pub(crate) key: String,
    pub(crate) path: std::path::PathBuf,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksums_cover_key_and_body() {
        let base = blob_check("aa", "{}");
        assert_eq!(base, blob_check("aa", "{}"));
        assert_ne!(base, blob_check("ab", "{}"));
        assert_ne!(base, blob_check("aa", "{} "));
        assert_eq!(base.len(), 32);
    }

    #[test]
    fn key_shape_is_enforced() {
        assert!(valid_key(&"0123456789abcdef".repeat(2)));
        assert!(!valid_key("short"));
        assert!(!valid_key(&"0123456789ABCDEF".repeat(2)), "uppercase");
        assert!(!valid_key(&"0123456789abcdeg".repeat(2)), "non-hex");
    }
}
