//! The `/stats` counters: lock-free atomics bumped by the request
//! handlers, snapshotted into one JSON object on demand. Every
//! `GET /report` request ends up as **exactly one** of `hits` (warm
//! cache), `misses` (this request computed) or `coalesced` (this request
//! waited on another request's computation) — the invariant the
//! thundering-herd tests assert.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic service counters (plus the in-flight gauge).
#[derive(Debug, Default)]
pub struct ServeStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    inflight: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Report requests answered from the warm cache.
    pub hits: u64,
    /// Report requests that computed (cold cache, single-flight leader).
    pub misses: u64,
    /// Report requests that waited on an identical in-flight computation
    /// and shared its result.
    pub coalesced: u64,
    /// Requests turned away with 503 (job queue full).
    pub rejected: u64,
    /// Report computations in flight right now.
    pub inflight: u64,
}

impl ServeStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        ServeStats::default()
    }

    /// One warm-cache report response.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One computed (cold) report response.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One request served by another request's computation.
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// One 503 rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one computation as started; the guard un-marks it.
    pub fn begin_inflight(&self) -> InflightGuard<'_> {
        self.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { stats: self }
    }

    /// A point-in-time copy of every counter.
    #[must_use]
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
        }
    }
}

/// RAII decrement of the in-flight gauge — panic-safe, so a failed
/// computation can never leak a permanently "busy" gauge.
#[derive(Debug)]
pub struct InflightGuard<'a> {
    stats: &'a ServeStats,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.stats.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_each_request_exactly_once() {
        let stats = ServeStats::new();
        stats.record_miss();
        stats.record_coalesced();
        stats.record_coalesced();
        stats.record_hit();
        stats.record_rejected();
        let snap = stats.snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.coalesced, 2);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.inflight, 0);
    }

    #[test]
    fn the_inflight_gauge_is_panic_safe() {
        let stats = ServeStats::new();
        {
            let _guard = stats.begin_inflight();
            assert_eq!(stats.snapshot().inflight, 1);
        }
        assert_eq!(stats.snapshot().inflight, 0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = stats.begin_inflight();
            panic!("boom");
        }));
        assert_eq!(stats.snapshot().inflight, 0, "guard ran on unwind");
    }
}
