//! A deliberately minimal HTTP/1.1 implementation over std
//! [`TcpStream`] — just enough protocol for the characterization
//! service: request line + headers + optional `Content-Length` body in,
//! status + JSON body out, `Connection: close` on every response (one
//! request per connection keeps the concurrency model trivial to reason
//! about, which is the point of a hand-rolled server).
//!
//! Hard limits keep a misbehaving client from holding memory hostage:
//! 16 KiB of request head, 1 MiB of body. Anything malformed is an
//! `Err(String)` the connection handler turns into a structured 400.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum bytes of request line + headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum bytes of request body.
const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, without the query string.
    pub path: String,
    /// Percent-decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Request body (empty without a `Content-Length`).
    pub body: String,
}

/// Percent-decodes one URL component (`%28` → `(`); invalid escapes are
/// kept literally, and `+` is left alone (operator notation never
/// contains spaces).
#[must_use]
pub fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3);
            if let Some(byte) = hex
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
            {
                out.push(byte);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(raw: &str) -> Vec<(String, String)> {
    raw.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads and parses one request from `stream`. Read timeouts, oversized
/// heads/bodies and malformed framing all come back as `Err` with a
/// user-facing message.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err("request head exceeds 16 KiB".to_owned());
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".to_owned());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_owned())?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| "request line lacks a target".to_owned())?;
    let mut content_length: usize = 0;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "invalid Content-Length".to_owned())?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err("request body exceeds 1 MiB".to_owned());
    }
    let mut body_bytes: Vec<u8> = buf[head_end + 4..].to_vec();
    while body_bytes.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("read failed: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".to_owned());
        }
        body_bytes.extend_from_slice(&chunk[..n]);
    }
    body_bytes.truncate(content_length);
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (percent_decode(p), parse_query(q)),
        None => (percent_decode(target), Vec::new()),
    };
    Ok(Request {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body_bytes).into_owned(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes it. The connection is always
/// marked `Connection: close`; the handler drops the stream afterwards.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_roundtrips_operator_notation() {
        assert_eq!(percent_decode("ACA%2816%2C4%29"), "ACA(16,4)");
        assert_eq!(percent_decode("ACA(16,4)"), "ACA(16,4)");
        assert_eq!(percent_decode("a%zz"), "a%zz", "invalid escapes survive");
    }

    #[test]
    fn query_strings_parse_in_order() {
        let pairs = parse_query("samples=2000&vectors=100&flag");
        assert_eq!(
            pairs,
            vec![
                ("samples".to_owned(), "2000".to_owned()),
                ("vectors".to_owned(), "100".to_owned()),
                ("flag".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
