//! Graceful-shutdown signal handling without a `libc` crate: on Unix, a
//! minimal `extern "C"` declaration of `signal(2)` (the symbol is
//! already linked through std) installs a handler that flips one
//! process-global [`AtomicBool`]; the server's accept loop polls it.
//! Elsewhere the installer is a no-op — `POST /shutdown` and
//! [`crate::Server::handle`] remain available everywhere.
//!
//! The handler body is async-signal-safe by construction: a single
//! relaxed-store into an atomic, nothing else.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the installed handler on SIGINT/SIGTERM.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a shutdown signal has been received since
/// [`install`] was called.
#[must_use]
pub fn shutdown_signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Test/embedding hook: raise the same flag the signal handler sets.
pub fn raise_shutdown() {
    SIGNALLED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    /// `sighandler_t` spelled as a typed function pointer, so no
    /// numeric-to-fn-pointer cast is ever needed.
    type SigHandler = extern "C" fn(i32);

    extern "C" {
        // the previous handler is returned; it may be the integral
        // pseudo-handlers SIG_DFL/SIG_IGN, so it is deliberately typed
        // as an opaque pointer and never called
        fn signal(signum: i32, handler: SigHandler) -> *mut std::ffi::c_void;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the C library function (linked through
        // std); `on_signal` matches the required `extern "C" fn(c_int)`
        // ABI and only performs an async-signal-safe atomic store. The
        // returned previous handler is discarded, never invoked.
        unsafe {
            let _ = signal(SIGINT, on_signal);
            let _ = signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handlers (no-op off Unix). Idempotent.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_shutdown_flips_the_flag_observably() {
        // NOTE: the flag is process-global by design (signal handlers
        // are), so this test only asserts the one-way transition
        install();
        raise_shutdown();
        assert!(shutdown_signalled());
    }
}
