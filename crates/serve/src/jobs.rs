//! The bounded asynchronous job queue behind `POST /sweep` and
//! `POST /pareto`: cold family sweeps take seconds to minutes, far too
//! long to hold an HTTP connection open, so they are accepted as `202 +
//! job id` and polled via `GET /job/<id>`. The queue is **bounded** —
//! when `capacity` jobs are already waiting, further submissions are
//! rejected with a 503 (and counted) instead of growing without limit.
//!
//! Shutdown semantics (the "drain" the graceful-shutdown contract asks
//! for): [`JobQueue::close`] stops accepting work, the worker finishes
//! every job that is already running or queued, and then exits — nothing
//! accepted is ever silently dropped.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// The deferred computation of one job.
pub type Job = Box<dyn FnOnce() -> Result<String, String> + Send>;

/// Lifecycle of one accepted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for the worker.
    Queued,
    /// Currently computing.
    Running,
    /// Finished successfully; the result body is available.
    Done,
    /// Finished with an error (or the job panicked).
    Failed,
}

impl JobStatus {
    /// The status as it appears in `/job/<id>` JSON.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// A point-in-time view of one job, as served by `GET /job/<id>`.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Human-readable description of what was submitted.
    pub label: String,
    /// The rendered body (only when [`JobStatus::Done`]).
    pub result: Option<String>,
    /// The failure message (only when [`JobStatus::Failed`]).
    pub error: Option<String>,
}

#[derive(Debug)]
struct Record {
    status: JobStatus,
    label: String,
    result: Option<String>,
    error: Option<String>,
}

#[derive(Default)]
struct State {
    queue: VecDeque<(u64, Job)>,
    records: HashMap<u64, Record>,
    next_id: u64,
    running: usize,
    done: u64,
    failed: u64,
    closed: bool,
}

/// Aggregate counters for `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCounts {
    /// Jobs waiting for the worker (the queue depth).
    pub queued: usize,
    /// Jobs currently computing (0 or 1 — one worker).
    pub running: usize,
    /// Jobs finished successfully since startup.
    pub done: u64,
    /// Jobs finished with an error since startup.
    pub failed: u64,
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Enqueue {
    /// Accepted under this job id.
    Accepted(u64),
    /// The queue is at capacity (or closing) — the caller turns this
    /// into a 503.
    Rejected,
}

/// The bounded queue. One [`JobQueue::worker`] thread drains it.
pub struct JobQueue {
    capacity: usize,
    state: Mutex<State>,
    wake: Condvar,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl JobQueue {
    /// A queue holding at most `capacity` waiting jobs.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity,
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Submits a job. Rejected when `capacity` jobs are already waiting
    /// or the queue is closing.
    pub fn enqueue(&self, label: String, job: Job) -> Enqueue {
        let mut state = self.state.lock().expect("job queue lock poisoned");
        if state.closed || state.queue.len() >= self.capacity {
            return Enqueue::Rejected;
        }
        let id = state.next_id;
        state.next_id += 1;
        state.records.insert(
            id,
            Record {
                status: JobStatus::Queued,
                label,
                result: None,
                error: None,
            },
        );
        state.queue.push_back((id, job));
        drop(state);
        self.wake.notify_one();
        Enqueue::Accepted(id)
    }

    /// A snapshot of one job, or `None` for an unknown id.
    #[must_use]
    pub fn snapshot(&self, id: u64) -> Option<JobSnapshot> {
        let state = self.state.lock().expect("job queue lock poisoned");
        state.records.get(&id).map(|r| JobSnapshot {
            status: r.status,
            label: r.label.clone(),
            result: r.result.clone(),
            error: r.error.clone(),
        })
    }

    /// Aggregate counters for `/stats`.
    #[must_use]
    pub fn counts(&self) -> JobCounts {
        let state = self.state.lock().expect("job queue lock poisoned");
        JobCounts {
            queued: state.queue.len(),
            running: state.running,
            done: state.done,
            failed: state.failed,
        }
    }

    /// Stops accepting submissions and wakes the worker so it can drain
    /// what remains and exit.
    pub fn close(&self) {
        self.state.lock().expect("job queue lock poisoned").closed = true;
        self.wake.notify_all();
    }

    /// The worker loop: runs jobs in submission order until the queue is
    /// closed **and** fully drained. Call from a dedicated thread.
    pub fn worker(&self) {
        loop {
            let (id, job) = {
                let mut state = self.state.lock().expect("job queue lock poisoned");
                loop {
                    if let Some(next) = state.queue.pop_front() {
                        state.running += 1;
                        if let Some(record) = state.records.get_mut(&next.0) {
                            record.status = JobStatus::Running;
                        }
                        break next;
                    }
                    if state.closed {
                        return;
                    }
                    state = self.wake.wait(state).expect("job queue lock poisoned");
                }
            };
            // panics inside a job must fail that job, not kill the worker
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                .unwrap_or_else(|_| Err("job panicked".to_owned()));
            let mut state = self.state.lock().expect("job queue lock poisoned");
            state.running -= 1;
            match outcome {
                Ok(body) => {
                    state.done += 1;
                    if let Some(record) = state.records.get_mut(&id) {
                        record.status = JobStatus::Done;
                        record.result = Some(body);
                    }
                }
                Err(message) => {
                    state.failed += 1;
                    if let Some(record) = state.records.get_mut(&id) {
                        record.status = JobStatus::Failed;
                        record.error = Some(message);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    fn job(body: &str) -> Job {
        let body = body.to_owned();
        Box::new(move || Ok(body))
    }

    #[test]
    fn jobs_run_in_order_and_results_are_polled() {
        let queue = Arc::new(JobQueue::new(8));
        let a = queue.enqueue("a".to_owned(), job("A"));
        let b = queue.enqueue("b".to_owned(), job("B"));
        let (Enqueue::Accepted(a), Enqueue::Accepted(b)) = (a, b) else {
            panic!("both must be accepted");
        };
        queue.close();
        queue.worker();
        assert_eq!(queue.snapshot(a).unwrap().result.as_deref(), Some("A"));
        assert_eq!(queue.snapshot(b).unwrap().result.as_deref(), Some("B"));
        assert_eq!(queue.snapshot(a).unwrap().status, JobStatus::Done);
        assert_eq!(queue.counts().done, 2);
        assert!(queue.snapshot(99).is_none());
    }

    #[test]
    fn the_queue_is_bounded_and_rejections_do_not_block() {
        let queue = JobQueue::new(2);
        assert!(matches!(
            queue.enqueue("1".to_owned(), job("1")),
            Enqueue::Accepted(_)
        ));
        assert!(matches!(
            queue.enqueue("2".to_owned(), job("2")),
            Enqueue::Accepted(_)
        ));
        assert_eq!(queue.enqueue("3".to_owned(), job("3")), Enqueue::Rejected);
        assert_eq!(queue.counts().queued, 2);
    }

    #[test]
    fn close_drains_queued_jobs_before_the_worker_exits() {
        let queue = Arc::new(JobQueue::new(8));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            let accepted = queue.enqueue(
                "drain".to_owned(),
                Box::new(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    ran.fetch_add(1, Ordering::SeqCst);
                    Ok(String::new())
                }),
            );
            assert!(matches!(accepted, Enqueue::Accepted(_)));
        }
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.worker())
        };
        queue.close();
        assert_eq!(
            queue.enqueue("late".to_owned(), job("x")),
            Enqueue::Rejected
        );
        worker.join().unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 5, "every accepted job ran");
    }

    #[test]
    fn failures_and_panics_are_contained() {
        let queue = JobQueue::new(8);
        let Enqueue::Accepted(bad) =
            queue.enqueue("bad".to_owned(), Box::new(|| Err("boom".to_owned())))
        else {
            panic!("accepted");
        };
        let Enqueue::Accepted(worse) =
            queue.enqueue("worse".to_owned(), Box::new(|| panic!("kaboom")))
        else {
            panic!("accepted");
        };
        let Enqueue::Accepted(fine) = queue.enqueue("fine".to_owned(), job("ok")) else {
            panic!("accepted");
        };
        queue.close();
        queue.worker();
        assert_eq!(queue.snapshot(bad).unwrap().status, JobStatus::Failed);
        assert_eq!(queue.snapshot(bad).unwrap().error.as_deref(), Some("boom"));
        assert_eq!(queue.snapshot(worse).unwrap().status, JobStatus::Failed);
        assert_eq!(queue.snapshot(fine).unwrap().status, JobStatus::Done);
        assert_eq!(queue.counts().failed, 2);
        assert_eq!(queue.counts().done, 1);
    }
}
