//! The daemon proper: bind, accept loop, request routing and the
//! endpoint handlers. One thread per connection (requests are
//! short-lived: either a cache lookup, a single-flight wait, or a job
//! submission), the engine's work-stealing pool underneath each
//! computation, and a scoped-thread barrier as the graceful-shutdown
//! drain — `run` returns only after every in-flight connection and every
//! accepted job has finished.

use crate::http::{self, Request};
use crate::jobs::{Enqueue, JobQueue, JobStatus};
use crate::signal;
use crate::singleflight::{Join, SingleFlight};
use crate::stats::ServeStats;
use apx_cache::Cache;
use apx_cells::Library;
use apx_core::query::{self, QueryParams};
use apx_core::{cache as core_cache, output::Format, sweeps};
use apx_engine::Engine;
use apx_operators::OperatorConfig;
use serde::Value;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Soft cap on concurrently handled connections; beyond it new requests
/// get an immediate 503 instead of a thread.
const MAX_CONNECTIONS: usize = 256;

/// How the daemon is set up — the `apxperf serve` flags, as a struct.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`HOST:PORT`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Bounded job-queue capacity for `POST /sweep` / `POST /pareto`.
    pub queue_capacity: usize,
    /// When set, the actual bound address is written here (atomically)
    /// once listening — how tests and scripts avoid racing on a port.
    pub port_file: Option<PathBuf>,
    /// The report cache every query goes through.
    pub cache: Cache,
    /// The execution engine every computation runs on.
    pub engine: Engine,
    /// Server-side default query parameters; requests override fields
    /// individually.
    pub defaults: QueryParams,
    /// Whether the accept loop also honours SIGINT/SIGTERM (via
    /// [`signal::install`]); embedded test servers turn this off so an
    /// unrelated signal test cannot stop them.
    pub watch_signals: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".to_owned(),
            queue_capacity: 32,
            port_file: None,
            cache: Cache::default(),
            engine: Engine::from_env(),
            defaults: QueryParams::default(),
            watch_signals: false,
        }
    }
}

/// Everything the request handlers share.
#[derive(Debug)]
struct ServeState {
    lib: Library,
    engine: Engine,
    cache: Cache,
    defaults: QueryParams,
    stats: ServeStats,
    flights: Arc<SingleFlight>,
    jobs: JobQueue,
    shutdown: AtomicBool,
    watch_signals: bool,
    active_connections: AtomicUsize,
}

impl ServeState {
    fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (self.watch_signals && signal::shutdown_signalled())
    }
}

/// A handle for requesting shutdown programmatically (tests, embedders).
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServeState>,
}

impl ServerHandle {
    /// Asks the accept loop to stop; `run` then drains and returns.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound (but not yet serving) daemon.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServeState>,
}

impl Server {
    /// Binds the listen socket, writes the port file (when configured)
    /// and prepares the shared state. Serving starts with [`Server::run`].
    ///
    /// # Errors
    /// An unbindable address or an unwritable port file, as a
    /// user-facing message.
    pub fn bind(config: ServerConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot configure listener: {e}"))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        if let Some(path) = &config.port_file {
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, format!("{local_addr}\n"))
                .and_then(|()| std::fs::rename(&tmp, path))
                .map_err(|e| format!("cannot write port file {}: {e}", path.display()))?;
        }
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServeState {
                lib: Library::fdsoi28(),
                engine: config.engine,
                cache: config.cache,
                defaults: config.defaults,
                stats: ServeStats::new(),
                flights: Arc::new(SingleFlight::new()),
                jobs: JobQueue::new(config.queue_capacity),
                shutdown: AtomicBool::new(false),
                watch_signals: config.watch_signals,
                active_connections: AtomicUsize::new(0),
            }),
        })
    }

    /// The actually bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A clonable shutdown handle.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shutdown is requested (signal, `POST /shutdown` or
    /// [`ServerHandle::request_shutdown`]), then drains: stops
    /// accepting, lets every in-flight connection finish, runs every
    /// already-accepted job to completion, and persists the cache
    /// counters. Returns only when the drain is complete.
    pub fn run(self) {
        let state = self.state;
        let listener = self.listener;
        std::thread::scope(|scope| {
            let worker_state = Arc::clone(&state);
            scope.spawn(move || worker_state.jobs.worker());
            loop {
                if state.shutdown_requested() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let conn_state = Arc::clone(&state);
                        scope.spawn(move || handle_connection(stream, &conn_state));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            // no more submissions; the worker drains what was accepted
            state.jobs.close();
            // the scope exit is the drain barrier: it joins the worker
            // and every connection handler before run() can return
        });
        state.cache.persist_run_stats();
    }
}

/// RAII connection-count guard.
struct ConnectionPermit<'a> {
    state: &'a ServeState,
}

impl Drop for ConnectionPermit<'_> {
    fn drop(&mut self) {
        self.state
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<ServeState>) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(30))).ok();
    stream.set_nodelay(true).ok();
    let occupied = state.active_connections.fetch_add(1, Ordering::Relaxed);
    let _permit = ConnectionPermit { state };
    if occupied >= MAX_CONNECTIONS {
        let _ = http::write_response(&mut stream, 503, &error_json("too many connections"));
        return;
    }
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(message) => {
            let _ = http::write_response(&mut stream, 400, &error_json(&message));
            return;
        }
    };
    let (status, body) = route(state, &request);
    let _ = http::write_response(&mut stream, status, &body);
}

fn route(state: &Arc<ServeState>, request: &Request) -> (u16, String) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (200, compact(&[("status", Value::String("ok".to_owned()))])),
        ("GET", ["stats"]) => (200, stats_json(state)),
        ("GET", ["cache", "stats"]) => (200, cache_stats_json(state)),
        ("POST", ["cache", "gc"]) => cache_gc(state, &request.body),
        ("GET", ["report", spec]) => report(state, spec, &request.query),
        ("POST", ["sweep"]) => submit_sweep(state, &request.body),
        ("POST", ["pareto"]) => submit_pareto(state, &request.body),
        ("GET", ["job", id]) => job_status(state, id),
        ("GET", ["job", id, "result"]) => job_result(state, id),
        ("POST", ["shutdown"]) => {
            state.shutdown.store(true, Ordering::SeqCst);
            (
                200,
                compact(&[("status", Value::String("draining".to_owned()))]),
            )
        }
        (
            _,
            ["healthz"]
            | ["stats"]
            | ["cache", "stats" | "gc"]
            | ["report", _]
            | ["sweep"]
            | ["pareto"]
            | ["job", ..]
            | ["shutdown"],
        ) => (405, error_json("method not allowed for this endpoint")),
        _ => (
            404,
            error_json(
                "unknown endpoint — see GET /healthz, GET /stats, GET /cache/stats, \
                 POST /cache/gc, GET /report/<CONFIG>, POST /sweep, POST /pareto, \
                 GET /job/<id>, POST /shutdown",
            ),
        ),
    }
}

/// `GET /report/<CONFIG>` — the single-flight endpoint. Every request
/// is classified as exactly one of hit / miss / coalesced.
fn report(state: &Arc<ServeState>, spec: &str, query_pairs: &[(String, String)]) -> (u16, String) {
    let params = match params_from_query(state.defaults, query_pairs) {
        Ok(params) => params,
        Err(message) => return (400, error_json(&message)),
    };
    let config: OperatorConfig = match spec.parse() {
        Ok(config) => config,
        Err(e) => return (400, error_json(&format!("{e}"))),
    };
    let key = core_cache::report_cache_key(&state.lib, &params.settings(), &config);
    match state.flights.join(key) {
        Join::Follower(flight) => {
            state.stats.record_coalesced();
            match flight.wait() {
                Ok(body) => (200, body.as_ref().clone()),
                Err(message) => (500, error_json(&message)),
            }
        }
        Join::Leader(guard) => {
            let _inflight = state.stats.begin_inflight();
            let (report, hit) = query::cached_report(
                &state.lib,
                params.settings(),
                &config,
                &state.engine,
                &state.cache,
            );
            if hit {
                state.stats.record_hit();
            } else {
                state.stats.record_miss();
                state.cache.persist_run_stats();
            }
            match report
                .to_json()
                .map_err(|e| format!("report serialization failed: {e}"))
            {
                Ok(json) => {
                    let body = Arc::new(format!("{json}\n"));
                    let response = body.as_ref().clone();
                    guard.publish(Ok(body));
                    (200, response)
                }
                Err(message) => {
                    guard.publish(Err(message.clone()));
                    (500, error_json(&message))
                }
            }
        }
    }
}

/// `POST /sweep` — validate, then enqueue; the body mirrors the CLI
/// flags (`family`, `workload`, `format`, `samples`, …).
fn submit_sweep(state: &Arc<ServeState>, body: &str) -> (u16, String) {
    if state.shutdown_requested() {
        return (503, error_json("shutting down"));
    }
    let fields = match parse_body(body) {
        Ok(fields) => fields,
        Err(message) => return (400, error_json(&message)),
    };
    let sweep = match sweep_request(state.defaults, &fields) {
        Ok(sweep) => sweep,
        Err(message) => return (400, error_json(&message)),
    };
    let label = match &sweep.workload {
        Some(workload) => format!("sweep --family {} --workload {workload}", sweep.family),
        None => format!("sweep --family {}", sweep.family),
    };
    let job_state = Arc::clone(state);
    enqueue(
        state,
        label,
        Box::new(move || {
            let text = query::sweep_text(
                &job_state.lib,
                &sweep.params,
                &sweep.family,
                sweep.workload.as_deref(),
                sweep.format,
                &job_state.engine,
                &job_state.cache,
            );
            job_state.cache.persist_run_stats();
            text
        }),
    )
}

/// `POST /pareto` — validate, then enqueue; the body mirrors the CLI
/// flags (`workload` required, `family`/`all` mutually exclusive).
fn submit_pareto(state: &Arc<ServeState>, body: &str) -> (u16, String) {
    if state.shutdown_requested() {
        return (503, error_json("shutting down"));
    }
    let fields = match parse_body(body) {
        Ok(fields) => fields,
        Err(message) => return (400, error_json(&message)),
    };
    let pareto = match pareto_request(state.defaults, &fields) {
        Ok(pareto) => pareto,
        Err(message) => return (400, error_json(&message)),
    };
    let label = format!(
        "pareto --workload {}{}",
        pareto.workload,
        match (&pareto.family, pareto.all) {
            (Some(family), _) => format!(" --family {family}"),
            (None, true) => " --all".to_owned(),
            (None, false) => String::new(),
        }
    );
    let job_state = Arc::clone(state);
    enqueue(
        state,
        label,
        Box::new(move || {
            let text = query::pareto_text(
                &job_state.lib,
                &pareto.params,
                &pareto.workload,
                pareto.family.as_deref(),
                pareto.all,
                pareto.format,
                &job_state.engine,
                &job_state.cache,
            );
            job_state.cache.persist_run_stats();
            text
        }),
    )
}

fn enqueue(state: &Arc<ServeState>, label: String, job: crate::jobs::Job) -> (u16, String) {
    match state.jobs.enqueue(label, job) {
        Enqueue::Accepted(id) => (
            202,
            compact(&[
                ("job", Value::UInt(u128::from(id))),
                ("status", Value::String("queued".to_owned())),
                ("poll", Value::String(format!("/job/{id}"))),
            ]),
        ),
        Enqueue::Rejected => {
            state.stats.record_rejected();
            (
                503,
                compact(&[
                    (
                        "error",
                        Value::String(format!(
                            "job queue full ({} jobs waiting)",
                            state.jobs.capacity()
                        )),
                    ),
                    ("capacity", Value::UInt(state.jobs.capacity() as u128)),
                ]),
            )
        }
    }
}

/// `GET /job/<id>` — 202 while pending, 200 once settled.
fn job_status(state: &Arc<ServeState>, id: &str) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        return (400, error_json("job ids are integers"));
    };
    let Some(snapshot) = state.jobs.snapshot(id) else {
        return (404, error_json("unknown job id"));
    };
    let mut fields = vec![
        ("job", Value::UInt(u128::from(id))),
        ("status", Value::String(snapshot.status.as_str().to_owned())),
        ("label", Value::String(snapshot.label)),
    ];
    let status = match snapshot.status {
        JobStatus::Queued | JobStatus::Running => 202,
        JobStatus::Done => {
            fields.push(("result", Value::String(format!("/job/{id}/result"))));
            200
        }
        JobStatus::Failed => {
            fields.push(("error", Value::String(snapshot.error.unwrap_or_default())));
            200
        }
    };
    (status, compact(&fields))
}

/// `GET /job/<id>/result` — the raw rendered body once done (exactly
/// the bytes the corresponding CLI invocation prints on stdout).
fn job_result(state: &Arc<ServeState>, id: &str) -> (u16, String) {
    let Ok(id) = id.parse::<u64>() else {
        return (400, error_json("job ids are integers"));
    };
    let Some(snapshot) = state.jobs.snapshot(id) else {
        return (404, error_json("unknown job id"));
    };
    match snapshot.status {
        JobStatus::Done => (200, snapshot.result.unwrap_or_default()),
        JobStatus::Failed => (500, error_json(&snapshot.error.unwrap_or_default())),
        JobStatus::Queued | JobStatus::Running => (
            202,
            compact(&[("status", Value::String(snapshot.status.as_str().to_owned()))]),
        ),
    }
}

fn stats_json(state: &Arc<ServeState>) -> String {
    let stats = state.stats.snapshot();
    let jobs = state.jobs.counts();
    let cache = state.cache.stats();
    let object = Value::Object(vec![
        ("hits".to_owned(), Value::UInt(u128::from(stats.hits))),
        ("misses".to_owned(), Value::UInt(u128::from(stats.misses))),
        (
            "coalesced".to_owned(),
            Value::UInt(u128::from(stats.coalesced)),
        ),
        (
            "inflight".to_owned(),
            Value::UInt(u128::from(stats.inflight) + jobs.running as u128),
        ),
        ("queue_depth".to_owned(), Value::UInt(jobs.queued as u128)),
        (
            "rejected".to_owned(),
            Value::UInt(u128::from(stats.rejected)),
        ),
        (
            "jobs".to_owned(),
            Value::Object(vec![
                ("queued".to_owned(), Value::UInt(jobs.queued as u128)),
                ("running".to_owned(), Value::UInt(jobs.running as u128)),
                ("done".to_owned(), Value::UInt(u128::from(jobs.done))),
                ("failed".to_owned(), Value::UInt(u128::from(jobs.failed))),
            ]),
        ),
        (
            "cache".to_owned(),
            Value::Object(vec![
                ("enabled".to_owned(), Value::Bool(state.cache.is_enabled())),
                ("hits".to_owned(), Value::UInt(u128::from(cache.hits))),
                ("misses".to_owned(), Value::UInt(u128::from(cache.misses))),
                ("writes".to_owned(), Value::UInt(u128::from(cache.writes))),
                (
                    "evictions".to_owned(),
                    Value::UInt(u128::from(cache.evictions)),
                ),
                ("imports".to_owned(), Value::UInt(u128::from(cache.imports))),
                ("blobs".to_owned(), Value::UInt(u128::from(cache.blobs))),
                ("bytes".to_owned(), Value::UInt(u128::from(cache.bytes))),
            ]),
        ),
    ]);
    let mut text = serde_json::to_string_pretty(&object).expect("JSON rendering is infallible");
    text.push('\n');
    text
}

/// `GET /cache/stats` — the report cache alone, measured now: location,
/// on-disk blob count and byte size (the same definition `gc` budgets
/// against) plus this process's traffic counters.
fn cache_stats_json(state: &Arc<ServeState>) -> String {
    let cache = state.cache.stats();
    let dir = match state.cache.dir() {
        Some(dir) => Value::String(dir.display().to_string()),
        None => Value::Null,
    };
    let mut text = serde_json::to_string_pretty(&Value::Object(vec![
        ("enabled".to_owned(), Value::Bool(state.cache.is_enabled())),
        ("dir".to_owned(), dir),
        ("blobs".to_owned(), Value::UInt(u128::from(cache.blobs))),
        ("bytes".to_owned(), Value::UInt(u128::from(cache.bytes))),
        ("hits".to_owned(), Value::UInt(u128::from(cache.hits))),
        ("misses".to_owned(), Value::UInt(u128::from(cache.misses))),
        ("writes".to_owned(), Value::UInt(u128::from(cache.writes))),
        (
            "evictions".to_owned(),
            Value::UInt(u128::from(cache.evictions)),
        ),
        ("imports".to_owned(), Value::UInt(u128::from(cache.imports))),
    ]))
    .expect("JSON rendering is infallible");
    text.push('\n');
    text
}

/// `POST /cache/gc` — evict LRU-first down to the `max_bytes` budget
/// from the request body. A held gc lock is a 409 (another writer is
/// collecting; retry later), a disabled cache a 400; both carry the
/// structured [`apx_cache::CacheError`] JSON so clients can dispatch on
/// the variant.
fn cache_gc(state: &Arc<ServeState>, body: &str) -> (u16, String) {
    let fields = match parse_body(body) {
        Ok(fields) => fields,
        Err(message) => return (400, error_json(&message)),
    };
    if let Some((key, _)) = fields.iter().find(|(key, _)| key != "max_bytes") {
        return (
            400,
            error_json(&format!("unknown field `{key}` (allowed: max_bytes)")),
        );
    }
    let Some(max_bytes) = (match field_u64(&fields, "max_bytes") {
        Ok(value) => value,
        Err(message) => return (400, error_json(&message)),
    }) else {
        return (400, error_json("gc needs a `max_bytes` field (bytes)"));
    };
    match state.cache.gc(max_bytes) {
        Ok(summary) => (
            200,
            compact(&[
                (
                    "examined_blobs",
                    Value::UInt(u128::from(summary.examined_blobs)),
                ),
                (
                    "examined_bytes",
                    Value::UInt(u128::from(summary.examined_bytes)),
                ),
                (
                    "evicted_blobs",
                    Value::UInt(u128::from(summary.evicted_blobs)),
                ),
                (
                    "evicted_bytes",
                    Value::UInt(u128::from(summary.evicted_bytes)),
                ),
                (
                    "remaining_blobs",
                    Value::UInt(u128::from(summary.remaining_blobs)),
                ),
                (
                    "remaining_bytes",
                    Value::UInt(u128::from(summary.remaining_bytes)),
                ),
            ]),
        ),
        Err(err @ apx_cache::CacheError::Busy { .. }) => (409, err.to_json() + "\n"),
        Err(err) => (400, err.to_json() + "\n"),
    }
}

// ---------------------------------------------------------------------
// request parsing

fn error_json(message: &str) -> String {
    compact(&[("error", Value::String(message.to_owned()))])
}

fn compact(fields: &[(&str, Value)]) -> String {
    let object = Value::Object(
        fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    );
    let mut text = serde_json::to_string(&object).expect("JSON rendering is infallible");
    text.push('\n');
    text
}

fn parse_uint(name: &str, value: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16)
    } else {
        value.parse::<u64>()
    };
    parsed.map_err(|_| format!("{name}: `{value}` is not an integer"))
}

fn parse_positive(name: &str, value: &str) -> Result<u64, String> {
    match parse_uint(name, value)? {
        0 => Err(format!("{name}: must be at least 1")),
        n => Ok(n),
    }
}

/// Applies `?samples=&vectors=&seed=` query parameters on top of the
/// server defaults; unknown keys are a 400 (typos must not silently
/// characterize something else).
fn params_from_query(
    defaults: QueryParams,
    pairs: &[(String, String)],
) -> Result<QueryParams, String> {
    let mut params = defaults;
    for (key, value) in pairs {
        match key.as_str() {
            "samples" => params.samples = parse_positive(key, value)? as usize,
            "vectors" => params.vectors = parse_positive(key, value)? as usize,
            "seed" => params.seed = Some(parse_uint(key, value)?),
            other => {
                return Err(format!(
                    "unknown query parameter `{other}` (samples, vectors, seed)"
                ))
            }
        }
    }
    Ok(params)
}

fn parse_body(body: &str) -> Result<Vec<(String, Value)>, String> {
    if body.trim().is_empty() {
        return Ok(Vec::new());
    }
    let value: Value =
        serde_json::from_str(body).map_err(|e| format!("request body is not JSON: {e}"))?;
    match value {
        Value::Object(fields) => Ok(fields),
        _ => Err("request body must be a JSON object".to_owned()),
    }
}

fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn field_string(fields: &[(String, Value)], name: &str) -> Result<Option<String>, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!("{name}: expected a string, got {other:?}")),
    }
}

fn field_bool(fields: &[(String, Value)], name: &str) -> Result<bool, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(other) => Err(format!("{name}: expected a boolean, got {other:?}")),
    }
}

fn field_u64(fields: &[(String, Value)], name: &str) -> Result<Option<u64>, String> {
    match field(fields, name) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(u)) => u64::try_from(*u)
            .map(Some)
            .map_err(|_| format!("{name}: value out of range")),
        Some(Value::Int(i)) => u64::try_from(*i)
            .map(Some)
            .map_err(|_| format!("{name}: value out of range")),
        Some(Value::String(s)) => parse_uint(name, s).map(Some),
        Some(other) => Err(format!("{name}: expected an integer, got {other:?}")),
    }
}

/// Shared body fields: the numeric knobs plus `format`.
fn body_params(
    defaults: QueryParams,
    fields: &[(String, Value)],
    allowed: &[&str],
) -> Result<(QueryParams, Format), String> {
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown field `{key}` (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    let mut params = defaults;
    if let Some(samples) = field_u64(fields, "samples")? {
        if samples == 0 {
            return Err("samples: must be at least 1".to_owned());
        }
        params.samples = samples as usize;
    }
    if let Some(vectors) = field_u64(fields, "vectors")? {
        if vectors == 0 {
            return Err("vectors: must be at least 1".to_owned());
        }
        params.vectors = vectors as usize;
    }
    if let Some(seed) = field_u64(fields, "seed")? {
        params.seed = Some(seed);
    }
    if let Some(size) = field_u64(fields, "size")? {
        params.size = size as usize;
    }
    if let Some(sets) = field_u64(fields, "sets")? {
        params.sets = sets as usize;
    }
    if let Some(points) = field_u64(fields, "points")? {
        params.points = points as usize;
    }
    let format = match field_string(fields, "format")? {
        Some(value) => Format::parse(&value)?,
        None => Format::Tty,
    };
    Ok((params, format))
}

#[derive(Debug)]
struct SweepRequest {
    family: String,
    workload: Option<String>,
    params: QueryParams,
    format: Format,
}

fn sweep_request(
    defaults: QueryParams,
    fields: &[(String, Value)],
) -> Result<SweepRequest, String> {
    let (params, format) = body_params(
        defaults,
        fields,
        &[
            "family", "workload", "format", "samples", "vectors", "seed", "size", "sets", "points",
        ],
    )?;
    let family = field_string(fields, "family")?.unwrap_or_else(|| "adders".to_owned());
    if sweeps::find_family(&family).is_none() {
        let names: Vec<&str> = sweeps::FAMILIES.iter().map(|f| f.name).collect();
        return Err(format!(
            "--family: `{family}` is not one of {}",
            names.join(", ")
        ));
    }
    let workload = field_string(fields, "workload")?;
    if let Some(name) = &workload {
        if apx_apps::workload::find(name).is_none() {
            return Err(format!("unknown workload `{name}` — see `apxperf list`"));
        }
    }
    Ok(SweepRequest {
        family,
        workload,
        params,
        format,
    })
}

#[derive(Debug)]
struct ParetoRequest {
    workload: String,
    family: Option<String>,
    all: bool,
    params: QueryParams,
    format: Format,
}

fn pareto_request(
    defaults: QueryParams,
    fields: &[(String, Value)],
) -> Result<ParetoRequest, String> {
    let (params, format) = body_params(
        defaults,
        fields,
        &[
            "workload", "family", "all", "format", "samples", "vectors", "seed", "size", "sets",
            "points",
        ],
    )?;
    let workload = field_string(fields, "workload")?
        .ok_or_else(|| "pareto needs a `workload` field — see `apxperf list`".to_owned())?;
    if apx_apps::workload::find(&workload).is_none() {
        return Err(format!(
            "unknown workload `{workload}` — see `apxperf list`"
        ));
    }
    let family = field_string(fields, "family")?;
    let all = field_bool(fields, "all")?;
    if all && family.is_some() {
        return Err("--family and --all are mutually exclusive".to_owned());
    }
    if let Some(name) = &family {
        if sweeps::find_family(name).is_none() {
            return Err(format!(
                "--family: `{name}` is not a registered family — see `apxperf list`"
            ));
        }
    }
    Ok(ParetoRequest {
        workload,
        family,
        all,
        params,
        format,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_params_apply_on_top_of_defaults_and_reject_typos() {
        let defaults = QueryParams::default();
        let pairs = vec![
            ("samples".to_owned(), "2000".to_owned()),
            ("seed".to_owned(), "0xBEEF".to_owned()),
        ];
        let params = params_from_query(defaults, &pairs).unwrap();
        assert_eq!(params.samples, 2000);
        assert_eq!(params.seed, Some(0xBEEF));
        assert_eq!(params.vectors, defaults.vectors);
        let err =
            params_from_query(defaults, &[("sample".to_owned(), "1".to_owned())]).unwrap_err();
        assert!(err.contains("unknown query parameter"), "{err}");
        let err =
            params_from_query(defaults, &[("samples".to_owned(), "0".to_owned())]).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn sweep_bodies_validate_names_up_front() {
        let defaults = QueryParams::default();
        let fields = parse_body(r#"{"family":"points","workload":"fir","samples":500}"#).unwrap();
        let sweep = sweep_request(defaults, &fields).unwrap();
        assert_eq!(sweep.family, "points");
        assert_eq!(sweep.workload.as_deref(), Some("fir"));
        assert_eq!(sweep.params.samples, 500);
        let fields = parse_body(r#"{"family":"nope"}"#).unwrap();
        let err = sweep_request(defaults, &fields).unwrap_err();
        assert!(err.contains("is not one of"), "{err}");
        let fields = parse_body(r#"{"workload":"nope"}"#).unwrap();
        let err = sweep_request(defaults, &fields).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        let fields = parse_body(r#"{"familly":"points"}"#).unwrap();
        let err = sweep_request(defaults, &fields).unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
    }

    #[test]
    fn pareto_bodies_enforce_the_cli_exclusions() {
        let defaults = QueryParams::default();
        let err = pareto_request(defaults, &parse_body("{}").unwrap()).unwrap_err();
        assert!(err.contains("workload"), "{err}");
        let fields = parse_body(r#"{"workload":"fir","family":"points","all":true}"#).unwrap();
        let err = pareto_request(defaults, &fields).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let fields = parse_body(r#"{"workload":"fir","all":true,"format":"json"}"#).unwrap();
        let pareto = pareto_request(defaults, &fields).unwrap();
        assert!(pareto.all);
        assert_eq!(pareto.format, Format::Json);
    }

    #[test]
    fn empty_bodies_mean_all_defaults() {
        let fields = parse_body("").unwrap();
        let sweep = sweep_request(QueryParams::default(), &fields).unwrap();
        assert_eq!(sweep.family, "adders");
        assert_eq!(sweep.workload, None);
        assert_eq!(sweep.format, Format::Tty);
    }
}
