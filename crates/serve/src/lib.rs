//! Characterization-as-a-service: `apxperf serve` exposes the library
//! over a hand-rolled HTTP/1.1 + JSON protocol on a plain
//! [`std::net::TcpListener`] — no async runtime, no HTTP framework.
//!
//! The protocol mirrors the CLI one-to-one, and the contract is
//! **byte-identity**: a `GET /report/<CONFIG>` body is exactly the
//! stdout of `apxperf report <CONFIG> --format json`, and a finished
//! `POST /sweep` / `POST /pareto` job result is exactly the stdout of
//! the corresponding CLI invocation. Both sides render through the same
//! [`apx_core::query`] layer, so the identity holds by construction.
//!
//! | Endpoint | Semantics |
//! |---|---|
//! | `GET /healthz` | liveness probe |
//! | `GET /stats` | service counters (hits / misses / coalesced / …) |
//! | `GET /report/<CONFIG>` | one operator report, single-flighted |
//! | `POST /sweep` | enqueue a family sweep → `202` + job id |
//! | `POST /pareto` | enqueue a Pareto query → `202` + job id |
//! | `GET /job/<id>` | poll a job |
//! | `GET /job/<id>/result` | fetch a finished job's body |
//! | `POST /shutdown` | request a graceful drain |
//!
//! Concurrency machinery, each piece its own module:
//! [`singleflight`] coalesces identical in-flight reports (keyed by the
//! content-addressed cache keys), [`jobs`] is the bounded queue behind
//! the `202` endpoints, [`stats`] holds the lock-free counters, and
//! [`signal`] turns SIGINT/SIGTERM into a graceful drain.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod jobs;
pub mod server;
pub mod signal;
pub mod singleflight;
pub mod stats;

pub use server::{Server, ServerConfig, ServerHandle};
