//! Single-flight request coalescing: when N identical cold queries
//! arrive concurrently, exactly one (the *leader*) computes while the
//! other N−1 (*followers*) block on the leader's flight and receive the
//! published result — one cache miss, one computation, N identical
//! bodies. Flights are keyed by the same content-addressed 128-bit
//! [`CacheKey`]s the report cache uses, so "identical query" means
//! exactly "identical cache key".

use apx_cache::CacheKey;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The shared slot one leader publishes into and followers wait on.
#[derive(Debug, Default)]
pub struct Flight {
    slot: Mutex<Option<Result<Arc<String>, String>>>,
    ready: Condvar,
}

impl Flight {
    /// Blocks until the leader publishes, then returns the shared
    /// result.
    pub fn wait(&self) -> Result<Arc<String>, String> {
        let mut slot = self.slot.lock().expect("flight lock poisoned");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("flight lock poisoned");
        }
        slot.clone().expect("loop exits only when published")
    }

    fn publish(&self, result: Result<Arc<String>, String>) {
        let mut slot = self.slot.lock().expect("flight lock poisoned");
        *slot = Some(result);
        self.ready.notify_all();
    }
}

/// How a caller joined a flight: first-comer leads and must publish
/// through the [`LeaderGuard`]; everyone else follows and waits.
pub enum Join {
    /// This caller computes; dropping the guard without publishing
    /// (e.g. a panic) publishes an error so followers never hang.
    Leader(LeaderGuard),
    /// This caller waits for the leader's published result.
    Follower(Arc<Flight>),
}

/// The in-flight table.
#[derive(Debug, Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

impl SingleFlight {
    /// A fresh, empty table.
    #[must_use]
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Joins the flight for `key`, creating it (and leading) when none
    /// is in progress.
    pub fn join(self: &Arc<Self>, key: CacheKey) -> Join {
        let mut flights = self.flights.lock().expect("singleflight lock poisoned");
        if let Some(flight) = flights.get(&key) {
            return Join::Follower(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::default());
        flights.insert(key, Arc::clone(&flight));
        Join::Leader(LeaderGuard {
            table: Arc::clone(self),
            key,
            flight,
            published: false,
        })
    }

    /// Number of flights currently in progress (leaders still
    /// computing).
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.flights
            .lock()
            .expect("singleflight lock poisoned")
            .len()
    }

    fn finish(&self, key: &CacheKey) {
        self.flights
            .lock()
            .expect("singleflight lock poisoned")
            .remove(key);
    }
}

/// The leader's obligation: publish a result exactly once. The entry is
/// removed from the table **before** followers are woken, so a request
/// arriving after publication starts a fresh flight (and, with a warm
/// cache, scores a plain hit).
#[derive(Debug)]
pub struct LeaderGuard {
    table: Arc<SingleFlight>,
    key: CacheKey,
    flight: Arc<Flight>,
    published: bool,
}

impl LeaderGuard {
    /// Publishes the computed result to every follower and retires the
    /// flight.
    pub fn publish(mut self, result: Result<Arc<String>, String>) {
        self.published = true;
        self.table.finish(&self.key);
        self.flight.publish(result);
    }
}

impl Drop for LeaderGuard {
    fn drop(&mut self) {
        if !self.published {
            // the leader died (panic / early return): fail the flight
            // instead of stranding followers on the condvar forever
            self.table.finish(&self.key);
            self.flight
                .publish(Err("leader aborted before publishing".to_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_cache::KeyBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn key(tag: &str) -> CacheKey {
        KeyBuilder::new("sf-test").push_str("tag", tag).finish()
    }

    #[test]
    fn thundering_herd_computes_once() {
        let table = Arc::new(SingleFlight::new());
        let computations = AtomicUsize::new(0);
        let followers = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    barrier.wait();
                    match table.join(key("herd")) {
                        Join::Leader(guard) => {
                            // hold the flight open long enough that the
                            // barrier-released peers all join as followers
                            std::thread::sleep(std::time::Duration::from_millis(100));
                            computations.fetch_add(1, Ordering::SeqCst);
                            guard.publish(Ok(Arc::new("body".to_owned())));
                        }
                        Join::Follower(flight) => {
                            followers.fetch_add(1, Ordering::SeqCst);
                            assert_eq!(flight.wait().unwrap().as_str(), "body");
                        }
                    }
                });
            }
        });
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(followers.load(Ordering::SeqCst), 7);
        assert_eq!(table.inflight(), 0, "flight retired after publication");
    }

    #[test]
    fn a_dropped_leader_fails_followers_instead_of_hanging_them() {
        let table = Arc::new(SingleFlight::new());
        let Join::Leader(guard) = table.join(key("abort")) else {
            panic!("first joiner must lead");
        };
        let Join::Follower(flight) = table.join(key("abort")) else {
            panic!("second joiner must follow");
        };
        drop(guard);
        let err = flight.wait().unwrap_err();
        assert!(err.contains("leader aborted"), "{err}");
        assert_eq!(table.inflight(), 0);
    }

    #[test]
    fn sequential_joins_lead_fresh_flights() {
        let table = Arc::new(SingleFlight::new());
        for _ in 0..3 {
            match table.join(key("seq")) {
                Join::Leader(guard) => guard.publish(Ok(Arc::new("x".to_owned()))),
                Join::Follower(_) => panic!("no concurrent flight exists"),
            }
        }
    }
}
