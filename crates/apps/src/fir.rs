//! FIR low-pass filtering through swappable arithmetic — the first
//! workload added purely via the [`Workload`]
//! abstraction (one trait impl, one registry entry, no bespoke wiring).
//!
//! A 31-tap Hamming-windowed sinc low-pass filter over a seeded random
//! Q15 signal. Every multiply-accumulate of the convolution runs through
//! the [`ArithContext`]; the exact-arithmetic output is the reference and
//! the score is the output **SNR** (signal power over error power — the
//! natural metric for a filter, where PSNR's peak normalization would
//! flatter quiet signals).

use crate::workload::{Workload, WorkloadRun};
use crate::{ArithContext, ExactCtx};
use apx_fixture::signal;
use apx_metrics::QualityScore;
use apx_operators::{SiteOps, SiteSpec};

/// Q15 fractional bits of the filter taps.
const TAP_FRAC: u32 = 15;

/// Call-site tag of the multiply-accumulate kernel.
pub const SITE_MAC: &str = "fir.mac";

/// Declared call-sites of the FIR workload.
pub const SITES: &[SiteSpec] = &[SiteSpec {
    tag: SITE_MAC,
    ops: SiteOps::AddMul,
    summary: "tap product and running accumulate of the convolution",
}];

/// Hamming-windowed sinc low-pass taps in Q15 (`cutoff` in cycles per
/// sample, `0 < cutoff < 0.5`), normalized to unit DC gain before
/// quantization.
///
/// # Panics
/// Panics if `taps` is even or below 3 (a 1-tap "filter" has no window
/// to compute), or `cutoff` is out of range.
#[must_use]
pub fn lowpass_taps_q15(taps: usize, cutoff: f64) -> Vec<i64> {
    assert!(taps % 2 == 1 && taps >= 3, "odd tap count >= 3 required");
    assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff out of (0, 0.5)");
    let mid = (taps / 2) as f64;
    let ideal: Vec<f64> = (0..taps)
        .map(|i| {
            let t = i as f64 - mid;
            let sinc = if t == 0.0 {
                2.0 * cutoff
            } else {
                (std::f64::consts::TAU * cutoff * t).sin() / (std::f64::consts::PI * t)
            };
            let window = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / (taps - 1) as f64).cos();
            sinc * window
        })
        .collect();
    let gain: f64 = ideal.iter().sum();
    ideal
        .iter()
        .map(|&h| ((h / gain) * f64::from(1 << TAP_FRAC)).round() as i64)
        .collect()
}

/// Convolves `input` with `taps` through `ctx` (zero-padded edges): one
/// multiply per tap and one accumulate per partial product, products
/// rescaled out of Q15 by wiring shifts.
pub fn fir_filter<C: ArithContext + ?Sized>(input: &[i64], taps: &[i64], ctx: &mut C) -> Vec<i64> {
    let half = (taps.len() / 2) as isize;
    (0..input.len() as isize)
        .map(|i| {
            let mut acc: Option<i64> = None;
            for (k, &t) in taps.iter().enumerate() {
                let j = i + k as isize - half;
                if j < 0 || j >= input.len() as isize || t == 0 {
                    continue;
                }
                let p = ctx.mul_at(SITE_MAC, t, input[j as usize]) >> TAP_FRAC;
                acc = Some(match acc {
                    None => p,
                    Some(a) => ctx.add_at(SITE_MAC, a, p),
                });
            }
            acc.unwrap_or(0)
        })
        .collect()
}

/// The registered FIR workload: a fixed 31-tap low-pass filter (cutoff
/// 0.2 cycles/sample) over a seeded 512-sample random Q15 signal, scored
/// by output SNR against the exact-arithmetic filtering.
#[derive(Debug, Clone, Copy)]
pub struct FirWorkload {
    taps: usize,
    len: usize,
}

impl FirWorkload {
    /// Workload with an explicit odd tap count and signal length.
    ///
    /// # Panics
    /// Panics if `taps` is even or below 3, or `len` is zero.
    #[must_use]
    pub fn new(taps: usize, len: usize) -> Self {
        assert!(taps % 2 == 1 && taps >= 3, "odd tap count >= 3 required");
        assert!(len > 0, "empty signal");
        FirWorkload { taps, len }
    }
}

impl Default for FirWorkload {
    /// The registered configuration: 31 taps over 512 samples.
    fn default() -> Self {
        FirWorkload::new(31, 512)
    }
}

/// Pass-band cutoff of the registered low-pass, in cycles per sample.
const CUTOFF: f64 = 0.2;

impl Workload for FirWorkload {
    fn name(&self) -> &'static str {
        "fir"
    }

    fn default_seed(&self) -> u64 {
        0xF1C
    }

    fn fingerprint(&self) -> String {
        format!("fir/v1:taps={},len={},cutoff={CUTOFF}", self.taps, self.len)
    }

    fn sites(&self) -> &'static [SiteSpec] {
        SITES
    }

    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun {
        let (input, _) = signal::random_q15(self.len, 8_191, seed);
        let taps = lowpass_taps_q15(self.taps, CUTOFF);
        let mut exact = ExactCtx::new();
        let reference = fir_filter(&input, &taps, &mut exact);
        ctx.reset_counts();
        let output = fir_filter(&input, &taps, ctx);
        WorkloadRun {
            score: QualityScore::snr(&reference, &output),
            counts: ctx.counts(),
            aux: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::{OperatorConfig, OperatorCtx};

    #[test]
    fn taps_are_unit_gain_lowpass() {
        let taps = lowpass_taps_q15(31, 0.2);
        assert_eq!(taps.len(), 31);
        // DC gain ≈ 1.0 in Q15 after normalization (quantization slack)
        let dc: i64 = taps.iter().sum();
        assert!((dc - (1 << TAP_FRAC)).abs() <= 31, "DC gain {dc}");
        // symmetric (linear phase)
        for k in 0..taps.len() / 2 {
            assert_eq!(taps[k], taps[taps.len() - 1 - k]);
        }
    }

    #[test]
    fn dc_signal_passes_through() {
        let taps = lowpass_taps_q15(31, 0.2);
        let input = vec![8_000i64; 128];
        let mut ctx = ExactCtx::new();
        let out = fir_filter(&input, &taps, &mut ctx);
        // away from the zero-padded edges the DC level is preserved
        for &v in &out[31..out.len() - 31] {
            assert!((v - 8_000).abs() <= 40, "DC drifted to {v}");
        }
    }

    #[test]
    fn lowpass_attenuates_a_stop_band_tone() {
        let taps = lowpass_taps_q15(63, 0.1);
        let n = 256;
        let (pass, _) = signal::tone_mix_q15(n, &[(8.0, 10_000)]); // 8/256 ≈ 0.03
        let (stop, _) = signal::tone_mix_q15(n, &[(110.0, 10_000)]); // 110/256 ≈ 0.43
        let mut ctx = ExactCtx::new();
        let power = |x: &[i64]| x.iter().map(|&v| (v as f64).powi(2)).sum::<f64>();
        let passed = power(&fir_filter(&pass, &taps, &mut ctx));
        let stopped = power(&fir_filter(&stop, &taps, &mut ctx));
        assert!(
            passed > 100.0 * stopped,
            "pass {passed:.0} vs stop {stopped:.0}"
        );
    }

    #[test]
    fn exact_run_scores_infinite_snr_and_counts_macs() {
        let workload = FirWorkload::default();
        let mut ctx = ExactCtx::new();
        let run = workload.run(3, &mut ctx);
        assert_eq!(run.score, QualityScore::SnrDb(f64::INFINITY));
        // interior samples: 31 muls and 30 adds each; edges fewer
        assert!(run.counts.muls > run.counts.adds);
        assert!(run.counts.muls <= 31 * 512);
    }

    #[test]
    fn approximation_degrades_snr_monotonically() {
        let workload = FirWorkload::default();
        let snr_of = |q: u32| {
            let mut ctx = OperatorCtx::for_config(&OperatorConfig::AddTrunc { n: 16, q });
            workload.run(3, &mut ctx).score.value()
        };
        let (hi, lo) = (snr_of(14), snr_of(6));
        assert!(hi > lo, "SNR {hi} must beat {lo}");
        assert!(hi > 30.0, "near-exact sizing keeps SNR high: {hi}");
    }
}
