//! K-means clustering with approximate distance computation (§V-D,
//! Tables V/VI).
//!
//! Lloyd's algorithm over 2-D 16-bit fixed-point points. Only the
//! distance computation runs through the [`ArithContext`] — two
//! subtractions, two squarings (fixed-width: the upper 16 product bits)
//! and one addition per point/centroid pair, exactly the data-path the
//! paper characterizes. Centroid updates and comparisons are exact.

use crate::workload::{Workload, WorkloadRun};
use crate::{ArithContext, ExactCtx, OpCounts};
use apx_fixture::clusters::PointCloud;
use apx_metrics::QualityScore;
use apx_operators::{SiteOps, SiteSpec};

/// Scale shift applied after squaring: the fixed-width multiplier keeps
/// the upper 16 of 32 product bits, so both branches of the comparison
/// live at the same Q-format.
const SQUARE_SHIFT: u32 = 16;

/// Call-site tag of the coordinate differences.
pub const SITE_DIST_DIFF: &str = "kmeans.dist_diff";

/// Call-site tag of the squared-distance accumulation.
pub const SITE_DIST_ACC: &str = "kmeans.dist_acc";

/// Declared call-sites of the K-means workload.
pub const SITES: &[SiteSpec] = &[
    SiteSpec {
        tag: SITE_DIST_DIFF,
        ops: SiteOps::Add,
        summary: "coordinate differences dx/dy per point-centroid pair",
    },
    SiteSpec {
        tag: SITE_DIST_ACC,
        ops: SiteOps::AddMul,
        summary: "fixed-width squarings and the dx2+dy2 accumulate",
    },
];

/// Squared distance through the context, at the fixed-width product
/// scale.
fn distance2<C: ArithContext + ?Sized>(p: [i64; 2], c: [i64; 2], ctx: &mut C) -> i64 {
    let dx = ctx.sub_at(SITE_DIST_DIFF, p[0], c[0]);
    let dy = ctx.sub_at(SITE_DIST_DIFF, p[1], c[1]);
    let dx2 = ctx.mul_at(SITE_DIST_ACC, dx, dx) >> SQUARE_SHIFT;
    let dy2 = ctx.mul_at(SITE_DIST_ACC, dy, dy) >> SQUARE_SHIFT;
    ctx.add_at(SITE_DIST_ACC, dx2, dy2)
}

/// Result of one clustering run.
#[derive(Debug, Clone)]
pub struct KmeansResult {
    /// Final assignment per point.
    pub labels: Vec<usize>,
    /// Final centroid positions.
    pub centroids: Vec<[i64; 2]>,
    /// Classification success against the ground-truth labels.
    pub score: QualityScore,
    /// Operations executed through the context (distance computation
    /// only).
    pub counts: OpCounts,
}

/// The paper's K-means workload: Gaussian blobs in 16-bit coordinates
/// with known ground truth.
#[derive(Debug, Clone)]
pub struct KmeansFixture {
    cloud: PointCloud,
    iterations: usize,
}

impl KmeansFixture {
    /// One paper-style data set: `clusters` Gaussian blobs of
    /// `points_per_cluster` points (the paper uses 10 blobs, 5·10³ points
    /// per set, 5 sets — see `apx-core::sweeps` for the 5-set driver).
    ///
    /// Coordinates are kept within ±16 000 so that differences fit the
    /// 16-bit data-path (the "careful data sizing" prerequisite).
    #[must_use]
    pub fn synthetic(clusters: usize, points_per_cluster: usize, seed: u64) -> Self {
        // centers within ±12 000 and spread 1 200 keep every point inside
        // ±16 000, so all subtractions fit the 16-bit data-path
        let cloud = apx_fixture::clusters::gaussian_clusters_with_range(
            clusters,
            points_per_cluster,
            900.0,
            12_000.0,
            seed,
        );
        KmeansFixture {
            cloud,
            iterations: 10,
        }
    }

    /// The underlying point cloud.
    #[must_use]
    pub fn cloud(&self) -> &PointCloud {
        &self.cloud
    }

    /// Overrides the Lloyd iteration count (default 10).
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Runs Lloyd's algorithm through `ctx`.
    ///
    /// Centroids are seeded from the ground-truth centers perturbed by a
    /// fixed offset, so the label indices of exact and approximate runs
    /// are directly comparable (no permutation matching needed) — the
    /// paper's success rate is the fraction of points landing in their
    /// true cluster.
    pub fn run<C: ArithContext + ?Sized>(&self, ctx: &mut C) -> KmeansResult {
        // count by delta rather than resetting, so a multi-set driver
        // (KmeansWorkload) keeps its cumulative per-site ledger intact
        let start = ctx.counts();
        let k = self.cloud.centers.len();
        let mut centroids: Vec<[i64; 2]> = self
            .cloud
            .centers
            .iter()
            .map(|c| [c[0] + 900, c[1] - 900])
            .collect();
        let mut labels = vec![0usize; self.cloud.points.len()];
        for _ in 0..self.iterations {
            // assignment step (through ctx)
            for (point, label) in self.cloud.points.iter().zip(labels.iter_mut()) {
                let mut best = 0usize;
                let mut best_d = i64::MAX;
                for (ci, &centroid) in centroids.iter().enumerate() {
                    let d = distance2(*point, centroid, ctx);
                    if d < best_d {
                        best_d = d;
                        best = ci;
                    }
                }
                *label = best;
            }
            // update step (exact)
            let mut sums = vec![[0i64; 2]; k];
            let mut counts = vec![0i64; k];
            for (point, &label) in self.cloud.points.iter().zip(&labels) {
                sums[label][0] += point[0];
                sums[label][1] += point[1];
                counts[label] += 1;
            }
            for ((centroid, sum), &count) in centroids.iter_mut().zip(&sums).zip(&counts) {
                if count > 0 {
                    *centroid = [sum[0] / count, sum[1] / count];
                }
            }
        }
        let end = ctx.counts();
        KmeansResult {
            score: QualityScore::success(&self.cloud.labels, &labels),
            labels,
            centroids,
            counts: OpCounts {
                adds: end.adds - start.adds,
                muls: end.muls - start.muls,
            },
        }
    }

    /// Convenience: the exact-arithmetic baseline run.
    #[must_use]
    pub fn run_exact(&self) -> KmeansResult {
        let mut ctx = ExactCtx::new();
        self.run(&mut ctx)
    }
}

/// The registered K-means workload: `sets` seeded Gaussian data sets of
/// 10 clusters clustered through the context, scored by the **average**
/// classification success against the ground truth (the Tables V/VI
/// protocol).
#[derive(Debug, Clone, Copy)]
pub struct KmeansWorkload {
    sets: usize,
    points: usize,
}

impl KmeansWorkload {
    /// Workload over `sets` data sets of `points` points per cluster.
    #[must_use]
    pub fn new(sets: usize, points: usize) -> Self {
        assert!(sets > 0, "at least one data set");
        assert!(points > 0, "at least one point per cluster");
        KmeansWorkload { sets, points }
    }
}

impl Workload for KmeansWorkload {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    /// Base fixture seed of the `table5`/`table6` binaries (set `s` uses
    /// `seed + s`).
    fn default_seed(&self) -> u64 {
        100
    }

    fn fingerprint(&self) -> String {
        format!("kmeans/v1:sets={},points={}", self.sets, self.points)
    }

    fn sites(&self) -> &'static [SiteSpec] {
        SITES
    }

    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun {
        ctx.reset_counts();
        let mut success = 0.0;
        let mut counts = OpCounts::default();
        for s in 0..self.sets {
            let fixture = KmeansFixture::synthetic(10, self.points, seed.wrapping_add(s as u64));
            let result = fixture.run(ctx);
            success += result.score.value();
            counts.adds += result.counts.adds;
            counts.muls += result.counts.muls;
        }
        WorkloadRun {
            score: QualityScore::SuccessRate(success / self.sets as f64),
            counts,
            aux: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apx_operators::{OperatorConfig, OperatorCtx};

    #[test]
    fn exact_clustering_recovers_the_ground_truth() {
        let fixture = KmeansFixture::synthetic(10, 200, 21);
        let result = fixture.run_exact();
        assert!(
            result.score.value() > 0.97,
            "well-separated blobs: {}",
            result.score
        );
    }

    #[test]
    fn distance_ops_are_counted_per_pair() {
        let fixture = KmeansFixture::synthetic(4, 50, 3).with_iterations(2);
        let result = fixture.run_exact();
        // per pair: 3 adds (2 subs + 1 add) and 2 muls
        let pairs = (4 * 50 * 4 * 2) as u64;
        assert_eq!(result.counts.muls, 2 * pairs);
        assert_eq!(result.counts.adds, 3 * pairs);
    }

    #[test]
    fn moderately_sized_adders_keep_high_success() {
        // Table V: ADDt(16,11) ≈ 99 %.
        let fixture = KmeansFixture::synthetic(10, 200, 21);
        let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q: 11 }.build());
        let result = fixture.run(&mut ctx);
        assert!(result.score.value() > 0.9, "got {}", result.score);
    }

    #[test]
    fn aggressive_truncation_degrades_success() {
        let fixture = KmeansFixture::synthetic(10, 200, 21);
        let run_q = |q: u32| {
            let mut ctx = OperatorCtx::with_adder(OperatorConfig::AddTrunc { n: 16, q }.build());
            fixture.run(&mut ctx).score.value()
        };
        let (hi, lo) = (run_q(11), run_q(4));
        assert!(hi > lo, "q=11 ({hi}) must beat q=4 ({lo})");
    }

    #[test]
    fn uncorrected_abm_collapses_clustering() {
        // Table VI: ABM success ≈ 10 % (vs ≈ 99 % for MULt/AAM).
        let fixture = KmeansFixture::synthetic(10, 100, 21);
        let mut good =
            OperatorCtx::with_multiplier(OperatorConfig::MulTrunc { n: 16, q: 16 }.build());
        let mut bad =
            OperatorCtx::with_multiplier(OperatorConfig::AbmUncorrected { n: 16 }.build());
        let good_rate = fixture.run(&mut good).score.value();
        let bad_rate = fixture.run(&mut bad).score.value();
        assert!(good_rate > 0.95, "MULt: {good_rate}");
        assert!(bad_rate < 0.6, "ABMu should collapse: {bad_rate}");
    }
}
