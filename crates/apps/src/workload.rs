//! The `Workload` subsystem: every application case study behind one
//! trait and one registry.
//!
//! A [`Workload`] is a deterministic, seeded application run through a
//! swappable [`ArithContext`], scored against its own exact-arithmetic
//! reference with the unified [`QualityScore`]. The registry
//! ([`WORKLOADS`]) makes workloads addressable by name, exactly like the
//! operator families of the characterization sweeps — new case studies
//! are one trait impl plus one registry entry, and they inherit the
//! engine-parallel, cache-aware sweep driver of `apx_core::appenergy`
//! and the `apxperf app <name>` CLI for free.

use crate::{ArithContext, OpCounts};
use apx_metrics::QualityScore;
use apx_operators::SiteSpec;
use serde::{Deserialize, Serialize};

/// Tuning knobs shared by workload constructors — the CLI flags map onto
/// this one struct so every registry entry builds from the same input.
/// Workloads read only the fields that apply to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Image edge length (JPEG/HEVC/Sobel).
    pub size: usize,
    /// Number of data sets (K-means).
    pub sets: usize,
    /// Points per cluster (K-means).
    pub points: usize,
}

impl Default for WorkloadParams {
    /// The defaults of the former standalone binaries (128-pixel images,
    /// 5 K-means sets of 500 points per cluster).
    fn default() -> Self {
        WorkloadParams {
            size: 128,
            sets: 5,
            points: 500,
        }
    }
}

/// One scored workload run: the unified quality score against the
/// exact-arithmetic reference, the operations executed through the
/// context, and optional workload-specific side channels (e.g. the JPEG
/// stream length). Serializable, so application sweeps are cacheable
/// exactly like characterization reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRun {
    /// Quality against the exact-arithmetic reference run.
    pub score: QualityScore,
    /// Operations executed through the context over the whole run.
    pub counts: OpCounts,
    /// Named auxiliary outputs (workload-specific, may be empty).
    pub aux: Vec<(String, f64)>,
}

impl WorkloadRun {
    /// Looks up an auxiliary output by name.
    #[must_use]
    pub fn aux(&self, name: &str) -> Option<f64> {
        self.aux
            .iter()
            .find(|(key, _)| key == name)
            .map(|&(_, value)| value)
    }
}

/// One application case study: deterministic seeded input generation,
/// a run through any [`ArithContext`], and a unified [`QualityScore`]
/// against the workload's own exact-arithmetic reference.
///
/// Implementations must be pure functions of `(self, seed)` up to the
/// supplied context: the same seed must generate bit-identical inputs
/// and references on every call, which is what makes application sweeps
/// engine-parallel and content-addressable.
pub trait Workload: std::fmt::Debug + Send + Sync {
    /// Registry name (`apxperf app <name>`).
    fn name(&self) -> &'static str;

    /// The fixture seed the paper-table CLI aliases use by default —
    /// kept per workload so historical outputs stay comparable run over
    /// run and PR over PR.
    fn default_seed(&self) -> u64;

    /// Stable content fingerprint of this workload instance: name, an
    /// algorithm version (bump on any change that alters results), and
    /// every constructor parameter. Part of the app-sweep cache key, so
    /// stale cells miss instead of resurfacing.
    fn fingerprint(&self) -> String;

    /// The call-sites this workload's arithmetic is tagged with — the
    /// assignment targets of the heterogeneous `tune` search. Every
    /// tagged call in [`Workload::run`] must use one of these tags, and
    /// no arithmetic may reach the untagged default site.
    fn sites(&self) -> &'static [SiteSpec];

    /// Generates the seeded input, runs the application through `ctx`
    /// and scores it against the exact-arithmetic reference.
    fn run(&self, seed: u64, ctx: &mut dyn ArithContext) -> WorkloadRun;
}

/// One registry entry: the addressable name, a one-line description (for
/// `apxperf list` and the README table) and the fallible constructor
/// from shared [`WorkloadParams`] — parameters arrive from the command
/// line, so constraint violations come back as user-facing errors, never
/// panics.
pub struct WorkloadEntry {
    /// Registry name, as typed on the command line.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Builds the workload instance from the shared parameters, or
    /// explains which parameter violates the workload's constraints.
    pub build: fn(&WorkloadParams) -> Result<Box<dyn Workload>, String>,
}

/// Every registered workload, in `apxperf list` order.
pub const WORKLOADS: &[WorkloadEntry] = &[
    WorkloadEntry {
        name: "fft",
        summary: "32-point fixed-point FFT scored by output PSNR (Fig. 5, Table II)",
        build: |_| Ok(Box::new(crate::fft::FftWorkload::default())),
    },
    WorkloadEntry {
        name: "jpeg",
        summary: "JPEG encoder (q=90) scored by decoded-image MSSIM (Fig. 6)",
        build: |p| {
            if p.size == 0 || p.size % 8 != 0 {
                return Err(format!(
                    "jpeg: --size must be a positive multiple of 8, got {}",
                    p.size
                ));
            }
            Ok(Box::new(crate::jpeg::JpegWorkload::new(p.size, 90)))
        },
    },
    WorkloadEntry {
        name: "hevc",
        summary: "HEVC fractional motion compensation scored by MSSIM (Tables III/IV)",
        build: |p| {
            if p.size == 0 || p.size % 16 != 0 {
                return Err(format!(
                    "hevc: --size must be a positive multiple of 16, got {}",
                    p.size
                ));
            }
            Ok(Box::new(crate::hevc::McWorkload::new(p.size)))
        },
    },
    WorkloadEntry {
        name: "kmeans",
        summary: "K-means clustering scored by classification success (Tables V/VI)",
        build: |p| {
            if p.sets == 0 || p.points == 0 {
                return Err(format!(
                    "kmeans: --sets and --points must be positive, got {} and {}",
                    p.sets, p.points
                ));
            }
            Ok(Box::new(crate::kmeans::KmeansWorkload::new(
                p.sets, p.points,
            )))
        },
    },
    WorkloadEntry {
        name: "fir",
        summary: "31-tap low-pass FIR filter scored by output SNR",
        build: |_| Ok(Box::new(crate::fir::FirWorkload::default())),
    },
    WorkloadEntry {
        name: "sobel",
        summary: "2-D Sobel edge detection scored by edge-map MSSIM",
        build: |p| {
            if p.size < 8 {
                return Err(format!(
                    "sobel: --size must be at least the 8-pixel SSIM window, got {}",
                    p.size
                ));
            }
            Ok(Box::new(crate::sobel::SobelWorkload::new(p.size)))
        },
    },
];

/// Looks a workload up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static WorkloadEntry> {
    WORKLOADS.iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactCtx;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for entry in WORKLOADS {
            assert!(!entry.summary.is_empty(), "{}", entry.name);
            let found = find(entry.name).expect("registered name must resolve");
            assert_eq!(found.name, entry.name);
        }
        let mut names: Vec<&str> = WORKLOADS.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WORKLOADS.len(), "duplicate registry name");
    }

    #[test]
    fn built_workloads_report_their_registry_name() {
        let params = WorkloadParams {
            size: 16,
            sets: 1,
            points: 20,
        };
        for entry in WORKLOADS {
            let workload = (entry.build)(&params).expect(entry.name);
            assert_eq!(workload.name(), entry.name);
            assert!(
                workload.fingerprint().starts_with(entry.name),
                "{}: fingerprint should lead with the name: {}",
                entry.name,
                workload.fingerprint()
            );
        }
    }

    #[test]
    fn every_workload_scores_exact_arithmetic_as_undegraded_or_best() {
        let params = WorkloadParams {
            size: 16,
            sets: 1,
            points: 20,
        };
        for entry in WORKLOADS {
            let workload = (entry.build)(&params).expect(entry.name);
            let mut ctx = ExactCtx::new();
            let run = workload.run(workload.default_seed(), &mut ctx);
            match run.score {
                // K-means scores against the ground-truth labels, not the
                // exact run itself — exact recovers nearly all of them
                QualityScore::SuccessRate(v) => {
                    assert!(v > 0.9, "{}: exact success {v}", entry.name);
                }
                // every exact-reference metric is perfectly undegraded
                _ => assert!(
                    run.score.degradation() <= 1e-9,
                    "{}: exact run must be undegraded, got {:?}",
                    entry.name,
                    run.score
                ),
            }
            assert!(run.counts.total() > 0, "{}: no ops counted", entry.name);
        }
    }

    #[test]
    fn runs_are_bit_identical_for_a_fixed_seed() {
        for entry in WORKLOADS {
            let workload = (entry.build)(&WorkloadParams {
                size: 16,
                sets: 1,
                points: 20,
            })
            .expect(entry.name);
            let mut a = ExactCtx::new();
            let mut b = ExactCtx::new();
            assert_eq!(
                workload.run(7, &mut a),
                workload.run(7, &mut b),
                "{}",
                entry.name
            );
        }
    }

    #[test]
    fn constructors_reject_invalid_parameters_with_messages_not_panics() {
        let bad_size = WorkloadParams {
            size: 100, // not a multiple of 16
            sets: 1,
            points: 20,
        };
        let err = (find("hevc").unwrap().build)(&bad_size).unwrap_err();
        assert!(err.contains("multiple of 16"), "{err}");
        let err = (find("jpeg").unwrap().build)(&WorkloadParams {
            size: 30,
            sets: 1,
            points: 20,
        })
        .unwrap_err();
        assert!(err.contains("multiple of 8"), "{err}");
        let err = (find("kmeans").unwrap().build)(&WorkloadParams {
            size: 16,
            sets: 0,
            points: 20,
        })
        .unwrap_err();
        assert!(err.contains("--sets"), "{err}");
        let err = (find("sobel").unwrap().build)(&WorkloadParams {
            size: 4,
            sets: 1,
            points: 20,
        })
        .unwrap_err();
        assert!(err.contains("SSIM window"), "{err}");
    }

    #[test]
    fn every_workload_declares_sites_matching_its_recorded_traffic() {
        let params = WorkloadParams {
            size: 16,
            sets: 1,
            points: 20,
        };
        for entry in WORKLOADS {
            let workload = (entry.build)(&params).expect(entry.name);
            let sites = workload.sites();
            assert!(!sites.is_empty(), "{}: no sites declared", entry.name);
            for spec in sites {
                assert!(
                    spec.tag.starts_with(&format!("{}.", entry.name)),
                    "{}: site tag `{}` must follow <workload>.<kernel>",
                    entry.name,
                    spec.tag
                );
                assert!(!spec.summary.is_empty(), "{}: {}", entry.name, spec.tag);
            }
            // run through a site-recording context and reconcile the ledger
            let mut ctx = crate::OperatorCtx::exact();
            let run = workload.run(workload.default_seed(), &mut ctx);
            let recorded = ctx.site_counts();
            assert_eq!(
                recorded.total(),
                run.counts,
                "{}: per-site ledger must cover every counted op",
                entry.name
            );
            assert_eq!(
                recorded.get(apx_operators::DEFAULT_SITE),
                OpCounts::default(),
                "{}: arithmetic leaked to the untagged default site",
                entry.name
            );
            for (site, counts) in recorded.iter() {
                let spec = sites
                    .iter()
                    .find(|s| s.tag == site)
                    .unwrap_or_else(|| panic!("{}: undeclared site `{site}`", entry.name));
                assert!(
                    counts.adds == 0 || spec.ops.uses_add(),
                    "{}: adds at mul-only site `{site}`",
                    entry.name
                );
                assert!(
                    counts.muls == 0 || spec.ops.uses_mul(),
                    "{}: muls at add-only site `{site}`",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn aux_lookup_finds_named_outputs() {
        let run = WorkloadRun {
            score: QualityScore::Mssim(1.0),
            counts: OpCounts::default(),
            aux: vec![("stream_bytes".to_owned(), 42.0)],
        };
        assert_eq!(run.aux("stream_bytes"), Some(42.0));
        assert_eq!(run.aux("missing"), None);
    }
}
